"""The concurrent socket serving layer: identity vs serial, warm restarts."""

import json
import os
import socket
import subprocess
import sys

import pytest

import repro
from repro.service.loadtest import (
    build_corpus,
    check_identity,
    client_script,
    run_once,
    serial_expectations,
    stats_gate_view,
)
from repro.service.protocol import PROTOCOL_VERSION, make_request

PROGRAMS = ("allroots", "fixoutput")
CLIENTS = 3
REQUESTS = 6
WORKERS = 2


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(PROGRAMS)


@pytest.fixture(scope="module")
def scripts(corpus):
    return [client_script(index, corpus, REQUESTS)
            for index in range(CLIENTS)]


@pytest.fixture(scope="module")
def oracle(corpus, scripts):
    return serial_expectations(corpus, scripts)


class TestConcurrentIdentity:
    def test_socket_answers_match_serial_session(self, corpus, scripts,
                                                 oracle):
        expected, serial_stats = oracle
        result = run_once(corpus, scripts, WORKERS, None)
        identity = check_identity(result, expected)
        assert identity["mismatches"] == 0, identity["first_mismatches"]
        # Sanity: the run exercised every client script plus the loads.
        assert identity["checked"] == \
            len(corpus) + CLIENTS * REQUESTS
        # The deterministic stats subset is interleaving-independent: the
        # sharded, coalescing front end must land on the serial counters.
        for program in corpus:
            assert stats_gate_view(result.stats[program.name]) == \
                stats_gate_view(serial_stats[program.name])

    def test_single_worker_single_client_is_also_identical(self, corpus,
                                                           oracle):
        expected, _ = oracle
        script = client_script(0, corpus, REQUESTS)
        result = run_once(corpus, [script], 1, None)
        assert check_identity(result, expected)["mismatches"] == 0


class TestWarmRestart:
    def test_restarted_server_answers_from_the_store(self, corpus, scripts,
                                                     oracle, tmp_path):
        expected, _ = oracle
        root = str(tmp_path / "store")
        cold = run_once(corpus, scripts, WORKERS, root)
        assert check_identity(cold, expected)["mismatches"] == 0
        # A brand-new server (fresh pool, fresh worker sessions) on the
        # same store: the warmth must never change an answer...
        warm = run_once(corpus, scripts, WORKERS, root)
        assert check_identity(warm, expected)["mismatches"] == 0
        # ...and must fully absorb the work: no module compiled, no solver
        # step run, no store miss anywhere.
        for program in corpus:
            record = warm.stats[program.name]
            assert record["materialized"] is False, program.name
            assert record["solver_steps"] == 0
            assert record["store"]["misses"] == 0
            assert record["store"]["corrupt_entries"] == 0
        assert any(warm.stats[p.name]["store"]["hits"] > 0 for p in corpus)


class _RawClient:
    """A line-delimited JSON conversation with a spawned server process."""

    def __init__(self, workers=1):
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--port", "0", "--workers", str(workers)],
            stdout=subprocess.PIPE, text=True, env=env)
        banner = self.process.stdout.readline()
        port = int(banner.rsplit(":", 1)[1].split()[0])
        self.connection = socket.create_connection(("127.0.0.1", port),
                                                   timeout=120)
        self.stream = self.connection.makefile("rw", encoding="utf-8",
                                               newline="\n")

    def send_raw(self, line):
        self.stream.write(line + "\n")
        self.stream.flush()
        return json.loads(self.stream.readline())

    def call(self, payload):
        return self.send_raw(json.dumps(payload))

    def close(self):
        try:
            self.call(make_request("shutdown"))
        finally:
            self.connection.close()
            self.process.wait(timeout=30)


class TestRawSocketEnvelopes:
    def test_error_envelopes_and_id_echo_over_the_wire(self):
        client = _RawClient()
        try:
            assert client.call(make_request("ping", id="p1"))["pong"] is True

            malformed = client.send_raw("this is { not json")
            assert malformed["ok"] is False
            assert malformed["error_code"] == "bad_request"
            assert malformed["v"] == PROTOCOL_VERSION

            mismatch = client.call({"op": "ping", "v": 99, "id": "v1"})
            assert mismatch["ok"] is False
            assert mismatch["error_code"] == "protocol_mismatch"
            assert mismatch["id"] == "v1"

            unknown = client.call(make_request("frobnicate", id="u1"))
            assert unknown["error_code"] == "unknown_op"
            assert unknown["id"] == "u1"
            assert "error" in unknown  # deprecated legacy string, one release

            ghost = client.call(make_request(
                "query", id="g1", module="ghost", analysis="rbaa",
                function="main", a="x", b="y"))
            assert ghost["error_code"] == "unknown_module"
            assert ghost["id"] == "g1"

            # The transport survived four failures in a row.
            assert client.call(make_request("ping", id="p2"))["id"] == "p2"
        finally:
            client.close()
