"""The concurrent socket serving layer: identity vs serial, warm restarts."""

import json
import os
import socket
import subprocess
import sys

import pytest

import repro
from repro.benchgen import build_program, edit_scenario, stable_seed
from repro.benchgen.suites import SUITE_PROGRAMS
from repro.service.loadtest import (
    build_corpus,
    check_identity,
    client_script,
    run_once,
    serial_expectations,
    stats_gate_view,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    handle_payload,
    make_request,
)
from repro.service.session import AnalysisSession

PROGRAMS = ("allroots", "fixoutput")
CLIENTS = 3
REQUESTS = 6
WORKERS = 2


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(PROGRAMS)


@pytest.fixture(scope="module")
def scripts(corpus):
    return [client_script(index, corpus, REQUESTS)
            for index in range(CLIENTS)]


@pytest.fixture(scope="module")
def oracle(corpus, scripts):
    return serial_expectations(corpus, scripts)


class TestConcurrentIdentity:
    def test_socket_answers_match_serial_session(self, corpus, scripts,
                                                 oracle):
        expected, serial_stats = oracle
        result = run_once(corpus, scripts, WORKERS, None)
        identity = check_identity(result, expected)
        assert identity["mismatches"] == 0, identity["first_mismatches"]
        # Sanity: the run exercised every client script plus the loads.
        assert identity["checked"] == \
            len(corpus) + CLIENTS * REQUESTS
        # The deterministic stats subset is interleaving-independent: the
        # sharded, coalescing front end must land on the serial counters.
        for program in corpus:
            assert stats_gate_view(result.stats[program.name]) == \
                stats_gate_view(serial_stats[program.name])

    def test_single_worker_single_client_is_also_identical(self, corpus,
                                                           oracle):
        expected, _ = oracle
        script = client_script(0, corpus, REQUESTS)
        result = run_once(corpus, [script], 1, None)
        assert check_identity(result, expected)["mismatches"] == 0


class TestWarmRestart:
    def test_restarted_server_answers_from_the_store(self, corpus, scripts,
                                                     oracle, tmp_path):
        expected, _ = oracle
        root = str(tmp_path / "store")
        cold = run_once(corpus, scripts, WORKERS, root)
        assert check_identity(cold, expected)["mismatches"] == 0
        # A brand-new server (fresh pool, fresh worker sessions) on the
        # same store: the warmth must never change an answer...
        warm = run_once(corpus, scripts, WORKERS, root)
        assert check_identity(warm, expected)["mismatches"] == 0
        # ...and must fully absorb the work: no module compiled, no solver
        # step run, no store miss anywhere.
        for program in corpus:
            record = warm.stats[program.name]
            assert record["materialized"] is False, program.name
            assert record["solver_steps"] == 0
            assert record["store"]["misses"] == 0
            assert record["store"]["corrupt_entries"] == 0
        assert any(warm.stats[p.name]["store"]["hits"] > 0 for p in corpus)


class _RawClient:
    """A line-delimited JSON conversation with a spawned server process."""

    def __init__(self, workers=1, store=None):
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        command = [sys.executable, "-m", "repro.service.server",
                   "--port", "0", "--workers", str(workers)]
        if store is not None:
            command += ["--store", str(store)]
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, text=True, env=env)
        banner = self.process.stdout.readline()
        port = int(banner.rsplit(":", 1)[1].split()[0])
        self.connection = socket.create_connection(("127.0.0.1", port),
                                                   timeout=120)
        self.stream = self.connection.makefile("rw", encoding="utf-8",
                                               newline="\n")

    def send_raw(self, line):
        self.stream.write(line + "\n")
        self.stream.flush()
        return json.loads(self.stream.readline())

    def call(self, payload):
        return self.send_raw(json.dumps(payload))

    def close(self):
        try:
            self.call(make_request("shutdown"))
        finally:
            self.connection.close()
            self.process.wait(timeout=30)


class TestRawSocketEnvelopes:
    def test_error_envelopes_and_id_echo_over_the_wire(self):
        client = _RawClient()
        try:
            assert client.call(make_request("ping", id="p1"))["pong"] is True

            malformed = client.send_raw("this is { not json")
            assert malformed["ok"] is False
            assert malformed["error_code"] == "bad_request"
            assert malformed["v"] == PROTOCOL_VERSION

            mismatch = client.call({"op": "ping", "v": 99, "id": "v1"})
            assert mismatch["ok"] is False
            assert mismatch["error_code"] == "protocol_mismatch"
            assert mismatch["id"] == "v1"

            unversioned = client.call({"op": "ping", "id": "v2"})
            assert unversioned["ok"] is False
            assert unversioned["error_code"] == "protocol_mismatch"
            assert unversioned["id"] == "v2"

            unknown = client.call(make_request("frobnicate", id="u1"))
            assert unknown["error_code"] == "unknown_op"
            assert unknown["id"] == "u1"
            assert "error" not in unknown  # pre-v1 legacy string is gone

            ghost = client.call(make_request(
                "query", id="g1", module="ghost", analysis="rbaa",
                function="main", a="x", b="y"))
            assert ghost["error_code"] == "unknown_module"
            assert ghost["id"] == "g1"

            # The transport survived five failures in a row.
            assert client.call(make_request("ping", id="p2"))["id"] == "p2"
        finally:
            client.close()


def _names_on_distinct_shards(workers):
    """Two module names the unpinned name-hash places on different shards."""
    picked = {}
    for index in range(64):
        name = f"edit-shard-{index}"
        picked.setdefault(stable_seed(f"service/shard/{name}", workers), name)
        if len(picked) == workers:
            return picked[0], picked[1]
    raise AssertionError("hash never covered both shards")


class TestSocketEdits:
    """Function-granular edits through the concurrent server + store."""

    def test_edit_invalidates_one_shard_and_keeps_others_warm(self, tmp_path):
        config = next(p for p in SUITE_PROGRAMS
                      if p.name == "allroots").config()
        scenario = edit_scenario(config, edits=1, seed=0)
        before, after = scenario.steps
        other_source = build_program("fixoutput").source
        name_a, name_b = _names_on_distinct_shards(WORKERS)

        def script(source_a):
            return [
                make_request("load", id="load.a", name=name_a,
                             source=source_a),
                make_request("load", id="load.b", name=name_b,
                             source=other_source),
                make_request("query_function", id="sweep.a", module=name_a,
                             analysis="rbaa", max_pairs=60),
                make_request("query_function", id="sweep.b", module=name_b,
                             analysis="rbaa", max_pairs=60),
            ]
        edit_payload = make_request("edit", id="edit.a", name=name_a,
                                    source=after.source)

        root = str(tmp_path / "store")
        client = _RawClient(workers=WORKERS, store=root)
        transcript = {}
        try:
            for payload in script(before.source):
                transcript[payload["id"]] = client.call(payload)
            stats_before = {name: client.call(make_request("stats",
                                                           module=name))
                            for name in (name_a, name_b)}

            edited = client.call(edit_payload)
            assert edited["ok"] is True
            assert edited["reloaded"] is False
            assert edited["changed"] == [after.function]
            assert edited["impacts"], "edit produced no incremental impacts"
            transcript["edit.a"] = edited

            for payload in script(before.source)[2:]:  # re-run both sweeps
                transcript[payload["id"] + ".post"] = client.call(payload)
            stats_after = {name: client.call(make_request("stats",
                                                          module=name))
                          for name in (name_a, name_b)}
        finally:
            client.close()

        # The edited module took the incremental path on its own shard...
        assert stats_after[name_a]["edits"] == 1
        assert stats_after[name_a]["solver_steps"] > \
            stats_before[name_a]["solver_steps"]
        # ...and wrote the post-edit answers under the new source digest.
        assert stats_after[name_a]["store"]["writes"] > \
            stats_before[name_a]["store"]["writes"]
        # The other shard never saw the edit: no new analysis work at all.
        assert stats_after[name_b]["edits"] == 0
        assert stats_after[name_b]["solver_steps"] == \
            stats_before[name_b]["solver_steps"]

        # Answer identity vs a serial in-process session, through the edit.
        session = AnalysisSession()
        for payload in script(before.source):
            expected = handle_payload(session, payload)
            assert transcript[payload["id"]] == expected, payload["id"]
        assert handle_payload(session, edit_payload) == transcript["edit.a"]
        for payload in script(before.source)[2:]:
            expected = handle_payload(session, payload)
            assert transcript[payload["id"] + ".post"] == expected, \
                payload["id"]

        # A restarted server on the same store serves the *edited* module
        # warm — proof the post-edit entries are keyed by the new digest.
        warm = _RawClient(workers=WORKERS, store=root)
        try:
            for payload in script(after.source):
                response = warm.call(payload)
                if payload["id"].startswith("sweep"):
                    key = payload["id"] + ".post"
                    assert response == transcript[key], payload["id"]
            for name in (name_a, name_b):
                record = warm.call(make_request("stats", module=name))
                assert record["materialized"] is False, name
                assert record["solver_steps"] == 0
                assert record["store"]["misses"] == 0
                assert record["store"]["hits"] > 0
        finally:
            warm.close()
