"""Service-layer determinism: warm ≡ cold, across processes and hash seeds.

The serving layer may never trade correctness for warmth: replaying an edit
script against a resident session must produce exactly the answers (and
exactly the Figure-14 counters) a cold rebuild produces at every step, and
the whole record must be independent of ``PYTHONHASHSEED``.  This is also
where the incremental win is gated: on a quick-corpus program the warm
path must re-run strictly fewer solver steps than a cold rebuild after
every single-function edit.
"""

import json
import os
import subprocess
import sys

import repro
from repro.benchgen import edit_scenario
from repro.benchgen.suites import SUITE_PROGRAMS
from repro.evaluation.parallel import strip_volatile
from repro.service import AnalysisSession
from repro.service.bench import bench_program, check_record

PROGRAM = "fixoutput"
EDITS = 2
MAX_PAIRS = 100
ANALYSES = ("rbaa", "basic", "andersen", "steensgaard")


def _config(name):
    return next(p for p in SUITE_PROGRAMS if p.name == name).config()


def test_warm_incremental_beats_cold_rebuild_with_identical_answers():
    """The acceptance gate: after each single-function edit the warm path
    re-runs strictly fewer solver steps than a cold rebuild while the query
    outcomes stay byte-identical."""
    record = bench_program(PROGRAM, edits=EDITS, max_pairs=MAX_PAIRS)
    assert record["totals"]["identical"] is True
    assert check_record({"programs": [record]}) == []
    for step in record["steps"]:
        if step["index"] > 0:
            assert step["warm_solver_steps"] < step["cold_solver_steps"]


def test_figure14_counters_match_cold_rebuild_sums():
    """Every query is counted exactly once, warm or cold: the resident
    session's cumulative Figure-14 counters equal the sum of the per-step
    counters of fresh cold sessions replaying the same script."""
    scenario = edit_scenario(_config(PROGRAM), edits=EDITS)
    warm = AnalysisSession()
    warm.load_source(PROGRAM, scenario.steps[0].source)
    cold_totals = {}
    for step in scenario.steps:
        if step.index > 0:
            edited = warm.edit_source(PROGRAM, step.source)
            assert edited["reloaded"] is False
        warm.query_function(PROGRAM, "rbaa", max_pairs=MAX_PAIRS)

        cold = AnalysisSession()
        cold.load_source(PROGRAM, step.source)
        cold.query_function(PROGRAM, "rbaa", max_pairs=MAX_PAIRS)
        for key, value in cold.stats(PROGRAM)["figure14"].items():
            cold_totals[key] = cold_totals.get(key, 0) + value

    assert warm.stats(PROGRAM)["figure14"] == cold_totals


def test_record_is_hash_seed_independent():
    """The full bench record (modulo wall-time fields) is byte-identical
    under different ``PYTHONHASHSEED`` values — resident state and the edit
    scripts introduce no hash-order dependence."""
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    script = (
        "import json\n"
        "from repro.service.bench import bench_program\n"
        "from repro.evaluation.parallel import strip_volatile\n"
        f"record = bench_program({PROGRAM!r}, edits={EDITS}, "
        f"max_pairs={MAX_PAIRS})\n"
        "print(json.dumps(strip_volatile(record), sort_keys=True))\n"
    )
    outputs = []
    for seed in ("1", "2"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, env=env,
                                timeout=300)
        assert result.returncode == 0, result.stderr
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    record = json.loads(outputs[0])
    assert record["totals"]["identical"] is True
    # strip_volatile removed every wall-time key from the nested record.
    flat = json.dumps(record)
    assert "_seconds" not in flat


def test_daemon_replay_matches_in_process_record():
    """The stdin/stdout daemon and the in-process session are the same
    service: identical deterministic records for the same edit script."""
    in_process = strip_volatile(bench_program(PROGRAM, edits=1,
                                              max_pairs=MAX_PAIRS))
    daemon = strip_volatile(bench_program(PROGRAM, edits=1,
                                          max_pairs=MAX_PAIRS, daemon=True))
    assert in_process == daemon
