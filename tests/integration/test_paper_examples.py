"""Integration tests reproducing the paper's motivating examples end to end.

Every test here checks a claim the paper makes about a specific figure:

* Figure 1/2/7 — the two stores of ``prepare`` touch disjoint regions of the
  same buffer and only the range-based analysis proves it (global test);
* Figure 3/4   — ``p[i]`` and ``p[i + 1]`` in ``accelerate`` are separated by
  the local test while the global ranges overlap;
* Figure 10    — the φ-joined pointer's derived addresses need the local test;
* Figure 12    — the fixed point is reached through a starting state, a
  widening phase and a descending sequence of length two.
"""

import pytest

from repro.aliases import AliasResult, BasicAliasAnalysis, SCEVAliasAnalysis
from repro.benchgen import compile_figure1, compile_figure3, compile_figure10
from repro.core import (
    DisambiguationReason,
    GlobalAnalysisOptions,
    GlobalRangeAnalysis,
    LocationKind,
    RBAAAliasAnalysis,
)
from repro.ir.instructions import StoreInst
from repro.symbolic import SymbolicInterval


def stores_in(module, function_name):
    fn = module.get_function(function_name)
    return [inst for inst in fn.instructions() if isinstance(inst, StoreInst)]


class TestFigure1:
    """The message-serialisation example (Figures 1, 2 and 7)."""

    @pytest.fixture(scope="class")
    def module(self):
        return compile_figure1()

    @pytest.fixture(scope="class")
    def rbaa(self, module):
        return RBAAAliasAnalysis(module)

    def test_header_and_payload_stores_do_not_alias(self, module, rbaa):
        header_store, _, payload_store = stores_in(module, "prepare")
        outcome = rbaa.query(
            rbaa_access(header_store), rbaa_access(payload_store))
        assert outcome.no_alias
        assert outcome.reason is DisambiguationReason.GLOBAL_DISJOINT_RANGES

    def test_ranges_match_the_papers_abstract_states(self, module, rbaa):
        header_store, _, payload_store = stores_in(module, "prepare")
        header_state = rbaa.global_state(header_store.pointer)
        payload_state = rbaa.global_state(payload_store.pointer)
        # Both pointers reference the same single heap location (loc17 / loc0).
        assert header_state.support() == payload_state.support()
        location = header_state.support()[0]
        assert location.kind is LocationKind.HEAP
        # GR(i at line 6) = loc0 + [0, N-1]: symbolic upper bound mentioning N.
        header_interval = header_state.range_for(location)
        assert header_interval.lower.constant_value() == 0
        assert any("N" in symbol for symbol in header_interval.upper.symbols())
        # GR(i at line 10) starts at (or above) N.
        payload_interval = payload_state.range_for(location)
        assert any("N" in symbol for symbol in payload_interval.lower.symbols())

    def test_llvm_style_baselines_fail_on_this_idiom(self, module):
        header_store, _, payload_store = stores_in(module, "prepare")
        basic = BasicAliasAnalysis(module)
        scev = SCEVAliasAnalysis(module)
        assert basic.alias_pointers(header_store.pointer, payload_store.pointer) \
            is AliasResult.MAY_ALIAS
        assert scev.alias_pointers(header_store.pointer, payload_store.pointer) \
            is AliasResult.MAY_ALIAS

    def test_interprocedural_binding_reaches_the_callee(self, module, rbaa):
        prepare = module.get_function("prepare")
        state = rbaa.global_state(prepare.args[0])
        assert any(location.kind is LocationKind.HEAP for location in state.support())

    def test_adjacent_stores_in_first_loop_use_local_test(self, module, rbaa):
        first, second, _ = stores_in(module, "prepare")
        outcome = rbaa.query(rbaa_access(first), rbaa_access(second))
        assert outcome.no_alias
        assert outcome.reason is DisambiguationReason.LOCAL_DISJOINT_RANGES


class TestFigure3:
    """The strided loop whose accesses only the local test separates."""

    @pytest.fixture(scope="class")
    def module(self):
        return compile_figure3()

    @pytest.fixture(scope="class")
    def rbaa(self, module):
        return RBAAAliasAnalysis(module)

    def test_global_ranges_overlap(self, module, rbaa):
        first, second = stores_in(module, "accelerate")
        from repro.core import global_test
        outcome = global_test(rbaa.global_state(first.pointer),
                              rbaa.global_state(second.pointer), 4, 4)
        assert not outcome.no_alias

    def test_local_test_disambiguates(self, module, rbaa):
        first, second = stores_in(module, "accelerate")
        outcome = rbaa.query(rbaa_access(first), rbaa_access(second))
        assert outcome.no_alias
        assert outcome.reason is DisambiguationReason.LOCAL_DISJOINT_RANGES

    def test_local_states_share_one_base_with_disjoint_offsets(self, module, rbaa):
        first, second = stores_in(module, "accelerate")
        lr_first = rbaa.local_state(first.pointer)
        lr_second = rbaa.local_state(second.pointer)
        assert lr_first.location is lr_second.location
        assert lr_first.interval == SymbolicInterval(0, 0)
        assert lr_second.interval == SymbolicInterval(4, 4)

    def test_scev_also_handles_this_loop(self, module):
        # scev-aa is designed exactly for this shape, so it should agree.
        first, second = stores_in(module, "accelerate")
        scev = SCEVAliasAnalysis(module)
        assert scev.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS

    def test_basic_cannot_disambiguate(self, module):
        first, second = stores_in(module, "accelerate")
        basic = BasicAliasAnalysis(module)
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.MAY_ALIAS


class TestFigure10:
    """Path-insensitive global analysis vs. the local test."""

    def test_derived_arguments_are_separated_locally(self):
        module = compile_figure10()
        rbaa = RBAAAliasAnalysis(module)
        main = module.get_function("main")
        # The two arguments of the call to pick are a3 + 1 and a3 + 2.
        call = next(inst for inst in main.instructions() if inst.opcode == "call"
                    and inst.callee_name() == "pick")
        a4, a5 = call.args[0], call.args[1]
        outcome = rbaa.query(rbaa_access_ptr(a4, 1), rbaa_access_ptr(a5, 1))
        assert outcome.no_alias
        assert outcome.reason is DisambiguationReason.LOCAL_DISJOINT_RANGES

    def test_global_ranges_of_derived_arguments_overlap(self):
        module = compile_figure10()
        analysis = GlobalRangeAnalysis(module)
        main = module.get_function("main")
        call = next(inst for inst in main.instructions() if inst.opcode == "call"
                    and inst.callee_name() == "pick")
        a4, a5 = call.args[0], call.args[1]
        from repro.core import global_test
        assert not global_test(analysis.value_of(a4), analysis.value_of(a5), 1, 1).no_alias


class TestFigure12Schedule:
    """The fixed-point schedule: start, widen, two descending steps."""

    def test_trace_phases_are_recorded_in_order(self):
        module = compile_figure1()
        analysis = GlobalRangeAnalysis(
            module, options=GlobalAnalysisOptions(track_trace=True))
        labels = [label for label, _ in analysis.trace()]
        assert labels[0] == "starting state"
        assert "after widening" in labels
        assert labels[-2:] == ["descending step 1", "descending step 2"]

    def test_descending_steps_recover_finite_bounds(self):
        module = compile_figure1()
        analysis = GlobalRangeAnalysis(
            module, options=GlobalAnalysisOptions(track_trace=True))
        trace = dict(analysis.trace())
        widened = trace["after widening"]
        final = trace["descending step 2"]
        prepare = module.get_function("prepare")
        from repro.ir.instructions import PhiInst
        # The φ of the first loop (i1 in Figure 7) is the widening point: its
        # upper bound blows up to +inf and the descending sequence pulls it
        # back to a finite symbolic bound (Figure 12's i1 = [0, N]).
        loop_phi = next(inst for inst in prepare.instructions()
                        if isinstance(inst, PhiInst) and inst.type.is_pointer()
                        and inst.name.startswith("i."))
        location = final[loop_phi].support()[0]
        assert widened[loop_phi].range_for(location).upper.is_infinite()
        assert not final[loop_phi].range_for(location).upper.is_infinite()


# -- small helpers -------------------------------------------------------------

def rbaa_access(store):
    from repro.aliases import MemoryAccess
    return MemoryAccess.of(store.pointer)


def rbaa_access_ptr(pointer, size):
    from repro.aliases import MemoryAccess
    return MemoryAccess.of(pointer, size)
