"""Fault tolerance of the serving layer: crash failover with journal
replay, deadlines (cooperative + backstop), backpressure shedding, client
misbehaviour isolation, and SIGTERM's orderly-stop path."""

import asyncio
import glob
import json
import os
import signal
import socket
import subprocess
import sys
import time

import repro
from repro.service.pool import WorkerPool
from repro.service.protocol import make_request
from repro.service.server import ServiceServer

SRC = """
int main(int argc, char** argv) {
  char* a = (char*)malloc(8);
  char* b = a + 1;
  *a = 0;
  *b = 1;
  return 0;
}
"""

# A body-only edit (incremental path): replayed state is distinguishable
# from a bare reload by the session's edit counter.
SRC_EDITED = SRC.replace("malloc(8)", "malloc(16)")


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


async def _send(reader, writer, payload):
    writer.write((json.dumps(payload, sort_keys=True) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


async def _start(workers=1, store=None, chaos=None, max_inflight=None,
                 deadline_grace=0.25):
    pool = WorkerPool(workers=workers, store_root=store, chaos=chaos)
    server = ServiceServer(pool, max_inflight=max_inflight,
                           deadline_grace=deadline_grace)
    await server.start()
    return pool, server


async def _connect(server):
    return await asyncio.open_connection(server.host, server.port)


class TestCrashFailover:
    def test_kill_respawns_and_replays_the_journal_including_edits(self):
        async def scenario():
            pool, server = await _start(workers=1)
            try:
                reader, writer = await _connect(server)
                loaded = await _send(reader, writer, make_request(
                    "load", id="l", name="m", source=SRC))
                assert loaded["ok"] is True
                edited = await _send(reader, writer, make_request(
                    "edit", id="e", name="m", source=SRC_EDITED))
                assert edited["ok"] is True
                pool.worker(0).process.kill()
                # The very next request must neither hang nor observe
                # pre-edit state: the respawned worker replays the journal
                # (load, then edit) before serving anything.
                values = await _send(reader, writer, make_request(
                    "values", id="v", module="m", function="main"))
                assert values["ok"] is True, values
                stats = await _send(reader, writer, make_request(
                    "stats", id="s", module="m"))
                assert stats["ok"] is True
                # A bare reload would report 0: the counter proves the
                # journal replayed the edit, not just the load.
                assert stats["edits"] == 1
                faults = server.fault_stats()
                assert faults["respawns"] == 1
                assert faults["worker_deaths"] == 1
                assert faults["replayed_payloads"] == 2  # load + edit
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_in_flight_edit_fails_structured_and_is_not_half_applied(self):
        async def scenario():
            chaos = {0: {"latency_by_id": {"e1": 0.6}}}
            pool, server = await _start(workers=1, chaos=chaos)
            try:
                reader, writer = await _connect(server)
                loaded = await _send(reader, writer, make_request(
                    "load", id="l", name="m", source=SRC))
                assert loaded["ok"] is True
                edit_task = asyncio.create_task(_send(
                    reader, writer, make_request(
                        "edit", id="e1", name="m", source=SRC_EDITED)))
                await asyncio.sleep(0.25)  # the worker is asleep on e1
                pool.worker(0).process.kill()
                envelope = await edit_task
                # A mutating request is never transparently retried: its
                # effect on the dead worker is unknowable, so the client
                # gets the structured verdict and owns the resend.
                assert envelope["ok"] is False
                assert envelope["error_code"] == "worker_unavailable"
                assert envelope["id"] == "e1"
                # The unacknowledged edit is absent from the replayed
                # state (exactly-once journal): resending applies it once.
                resent = await _send(reader, writer, make_request(
                    "edit", id="e2", name="m", source=SRC_EDITED))
                assert resent["ok"] is True
                stats = await _send(reader, writer, make_request(
                    "stats", id="s", module="m"))
                assert stats["edits"] == 1
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_respawned_shard_answers_warm_with_zero_bootstrap(self, tmp_path):
        root = str(tmp_path / "store")

        async def warm_the_store():
            pool, server = await _start(workers=1, store=root)
            try:
                reader, writer = await _connect(server)
                await _send(reader, writer, make_request(
                    "load", id="l", name="m", source=SRC))
                values = await _send(reader, writer, make_request(
                    "values", id="v", module="m", function="main"))
                names = [v["name"] for v in values["values"] if v["pointer"]]
                query = make_request("query", id="q", module="m",
                                     analysis="rbaa", function="main",
                                     a=names[0], b=names[1])
                assert (await _send(reader, writer, query))["ok"] is True
                writer.close()
                return query
            finally:
                await server.stop()

        async def crash_and_requery(query):
            pool, server = await _start(workers=1, store=root)
            try:
                reader, writer = await _connect(server)
                await _send(reader, writer, make_request(
                    "load", id="l2", name="m", source=SRC))
                pool.worker(0).process.kill()
                requery = dict(query, id="q2")
                answer = await _send(reader, writer, requery)
                assert answer["ok"] is True
                stats = await _send(reader, writer, make_request(
                    "stats", id="s2", module="m"))
                # The respawned worker answered out of the warm store: the
                # module never compiled, the solver never stepped.
                assert stats["materialized"] is False
                assert stats["solver_steps"] == 0
                assert server.fault_stats()["respawns"] == 1
                writer.close()
            finally:
                await server.stop()

        query = _run(warm_the_store())
        _run(crash_and_requery(query))


class TestDeadlines:
    def test_backstop_answers_even_when_the_worker_is_wedged(self):
        async def scenario():
            chaos = {0: {"latency_by_id": {"slow": 2.0}}}
            pool, server = await _start(workers=1, chaos=chaos,
                                        deadline_grace=0.25)
            try:
                reader, writer = await _connect(server)
                await _send(reader, writer, make_request(
                    "load", id="l", name="m", source=SRC))
                started = time.perf_counter()
                wedged = await _send(reader, writer, make_request(
                    "query", id="slow", module="m", analysis="rbaa",
                    function="main", a="x", b="y", timeout_ms=100))
                elapsed = time.perf_counter() - started
                assert wedged["ok"] is False
                assert wedged["error_code"] == "deadline_exceeded"
                assert wedged["id"] == "slow"
                assert elapsed < 1.5  # well inside the 2 s wedge
                assert server.fault_stats()["backstops"] == 1
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_zero_budget_is_answered_cooperatively_by_the_worker(self):
        async def scenario():
            pool, server = await _start(workers=1)
            try:
                reader, writer = await _connect(server)
                await _send(reader, writer, make_request(
                    "load", id="l", name="m", source=SRC))
                probe = await _send(reader, writer, make_request(
                    "query", id="z", module="m", analysis="rbaa",
                    function="main", a="x", b="y", timeout_ms=0))
                assert probe["error_code"] == "deadline_exceeded"
                # Cooperative (worker-side) wording, not the backstop's.
                assert "expired before evaluation" in probe["message"]
                assert server.fault_stats()["backstops"] == 0
                writer.close()
            finally:
                await server.stop()
        _run(scenario())


class TestBackpressure:
    def test_admissions_beyond_the_bound_are_shed_with_overloaded(self):
        async def scenario():
            chaos = {0: {"latency_by_id": {"slow": 1.0}}}
            pool, server = await _start(workers=1, chaos=chaos,
                                        max_inflight=1)
            try:
                reader_a, writer_a = await _connect(server)
                await _send(reader_a, writer_a, make_request(
                    "load", id="l", name="m", source=SRC))
                slow_task = asyncio.create_task(_send(
                    reader_a, writer_a, make_request(
                        "query", id="slow", module="m", analysis="rbaa",
                        function="main", a="x", b="y")))
                await asyncio.sleep(0.2)  # the shard is at max in-flight
                reader_b, writer_b = await _connect(server)
                shed = await _send(reader_b, writer_b, make_request(
                    "query", id="q2", module="m", analysis="rbaa",
                    function="main", a="x", b="y"))
                assert shed["ok"] is False
                assert shed["error_code"] == "overloaded"
                assert shed["id"] == "q2"
                assert server.fault_stats()["shed"] == 1
                # The wedged request still terminates (with its own
                # deterministic answer), and afterwards admission reopens.
                slow = await slow_task
                assert slow["error_code"] == "unknown_value"
                retried = await _send(reader_b, writer_b, make_request(
                    "query", id="q3", module="m", analysis="rbaa",
                    function="main", a="x", b="y"))
                assert retried["error_code"] == "unknown_value"
                writer_a.close()
                writer_b.close()
            finally:
                await server.stop()
        _run(scenario())


class TestClientMisbehaviour:
    def test_partial_json_and_abrupt_close_do_not_affect_others(self):
        async def scenario():
            chaos = {0: {"latency_by_id": {"goner": 0.4}}}
            pool, server = await _start(workers=1, chaos=chaos)
            try:
                healthy_r, healthy_w = await _connect(server)
                await _send(healthy_r, healthy_w, make_request(
                    "load", id="l", name="m", source=SRC))
                # A client torn mid-line: half a JSON object, no newline,
                # then a hard close.
                torn_r, torn_w = await _connect(server)
                line = json.dumps(make_request("query", id="torn",
                                               module="m", analysis="rbaa",
                                               function="main", a="x",
                                               b="y"))
                torn_w.write(line[:len(line) // 2].encode())
                await torn_w.drain()
                torn_w.close()
                # A client that departs while its request is in flight.
                goner_r, goner_w = await _connect(server)
                goner_w.write((json.dumps(make_request(
                    "query", id="goner", module="m", analysis="rbaa",
                    function="main", a="x", b="y")) + "\n").encode())
                await goner_w.drain()
                goner_w.close()
                # The healthy connection sees none of it.
                pong = await _send(healthy_r, healthy_w,
                                   make_request("ping", id="p"))
                assert pong["pong"] is True
                answer = await _send(healthy_r, healthy_w, make_request(
                    "query", id="q", module="m", analysis="rbaa",
                    function="main", a="x", b="y"))
                assert answer["error_code"] == "unknown_value"
                assert server.fault_stats()["respawns"] == 0
                healthy_w.close()
            finally:
                await server.stop()
        _run(scenario())


class TestSignals:
    def test_sigterm_runs_the_orderly_stop_path(self, tmp_path):
        store = str(tmp_path / "store")
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--port", "0", "--workers", "1", "--store", store],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            banner = process.stdout.readline()
            port = int(banner.rsplit(":", 1)[1].split()[0])
            connection = socket.create_connection(("127.0.0.1", port),
                                                  timeout=120)
            stream = connection.makefile("rw", encoding="utf-8",
                                         newline="\n")
            stream.write(json.dumps(make_request(
                "load", id="l", name="m", source=SRC)) + "\n")
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True
            entries_before = glob.glob(os.path.join(store, "*", "*.json"))
            assert entries_before  # the load wrote store entries
            process.send_signal(signal.SIGTERM)
            # Orderly stop: exit code 0 (not -SIGTERM), workers reaped.
            assert process.wait(timeout=60) == 0
            connection.close()
            # The store survived the shutdown byte-for-byte addressable.
            assert set(glob.glob(os.path.join(store, "*", "*.json"))) \
                == set(entries_before)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=30)
