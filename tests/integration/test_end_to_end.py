"""End-to-end integration tests over the synthetic evaluation machinery.

These tests exercise the same pipeline the benchmarks use — generate a
program, compile it, run every analysis, answer every query — and check the
*relations* the paper's evaluation depends on (precision ordering,
complementarity, linearity bookkeeping) rather than exact numbers.
"""

import pytest

from repro.aliases import (
    AliasResult,
    AndersenAliasAnalysis,
    BasicAliasAnalysis,
    SCEVAliasAnalysis,
    SteensgaardAliasAnalysis,
)
from repro.benchgen import GeneratorConfig, build_program, generate_module
from repro.core import RBAAAliasAnalysis
from repro.evaluation import (
    census_for_module,
    enumerate_query_pairs,
    run_ablation,
    run_precision_experiment,
    run_queries,
    run_scalability_experiment,
    standard_factories,
)
from repro.ir import verify_module


@pytest.fixture(scope="module")
def medium_program():
    return generate_module(GeneratorConfig(name="e2e", instances=14, seed=21))


class TestGeneratedProgramAnalyses:
    def test_all_analyses_answer_every_query_without_crashing(self, medium_program):
        module = medium_program.module
        verify_module(module)
        analyses = [
            RBAAAliasAnalysis(module),
            BasicAliasAnalysis(module),
            SCEVAliasAnalysis(module),
            AndersenAliasAnalysis(module),
            SteensgaardAliasAnalysis(module),
        ]
        pairs = list(enumerate_query_pairs(module, max_pairs_per_function=400))
        assert pairs
        for analysis in analyses:
            for pair in pairs:
                assert analysis.alias(pair.a, pair.b) in AliasResult

    def test_alias_relation_is_symmetric(self, medium_program):
        module = medium_program.module
        rbaa = RBAAAliasAnalysis(module)
        basic = BasicAliasAnalysis(module)
        pairs = list(enumerate_query_pairs(module, max_pairs_per_function=150))
        for analysis in (rbaa, basic):
            for pair in pairs[:300]:
                forward = analysis.alias(pair.a, pair.b)
                backward = analysis.alias(pair.b, pair.a)
                assert (forward is AliasResult.NO_ALIAS) == (backward is AliasResult.NO_ALIAS)

    def test_precision_ordering_matches_the_paper(self, medium_program):
        """rbaa disambiguates more than basic, which beats scev (Figure 13's shape)."""
        module = medium_program.module
        result = run_queries("e2e", module, standard_factories(),
                             max_pairs_per_function=1500)
        assert result.no_alias["rbaa"] > result.no_alias["basic"] > result.no_alias["scev"]
        assert result.no_alias["r+b"] >= result.no_alias["rbaa"]

    def test_rbaa_and_basic_are_complementary(self, medium_program):
        """The combination answers queries neither analysis answers alone."""
        module = medium_program.module
        result = run_queries("e2e", module, standard_factories(),
                             max_pairs_per_function=1500)
        assert result.no_alias["r+b"] > result.no_alias["basic"]

    def test_census_finds_symbolic_pointers(self, medium_program):
        census = census_for_module("e2e", medium_program.module)
        assert census.symbolic > 0
        assert 0.0 < census.symbolic_percentage() < 100.0


class TestSuitePrograms:
    @pytest.mark.parametrize("name", ["allroots", "anagram", "fixoutput"])
    def test_small_suite_programs_compile_and_analyse(self, name):
        program = build_program(name)
        verify_module(program.module)
        rbaa = RBAAAliasAnalysis(program.module)
        pairs = list(enumerate_query_pairs(program.module, max_pairs_per_function=200))
        answered = sum(rbaa.alias(pair.a, pair.b) is AliasResult.NO_ALIAS for pair in pairs)
        assert answered > 0


class TestExperimentDrivers:
    def test_precision_experiment_on_a_slice(self):
        report = run_precision_experiment(program_names=["allroots", "anagram"],
                                          max_pairs_per_function=800)
        assert len(report.results) == 2
        totals = report.totals()
        assert totals.queries > 0
        assert totals.no_alias["rbaa"] >= totals.no_alias["basic"]
        assert 0.0 <= report.global_test_fraction() <= 1.0
        assert report.improvement_over_basic() >= 1.0

    def test_scalability_experiment_scales_linearly_enough(self):
        report = run_scalability_experiment(program_count=8, smallest=2, largest=24)
        assert len(report.points) == 8
        sizes = [point.instructions for point in report.points]
        assert sizes == sorted(sizes)
        correlation = report.correlation_time_vs_instructions()
        assert correlation > 0.5  # loose: timing noise on tiny programs
        assert report.instructions_per_second() > 0

    def test_ablation_full_configuration_dominates_its_own_pieces(self):
        totals = run_ablation(program_names=["allroots", "anagram", "ft"],
                              max_pairs_per_function=500)
        queries_full, no_alias_full = totals["full"]
        # Running both tests over the same abstract states can only answer
        # more queries than running either one alone (the complementarity
        # argument of Section 2).  Other variants (intraprocedural, no e-SSA)
        # change the abstract states themselves, so they are reported but not
        # ordered here.
        assert totals["global-only"][0] == queries_full
        assert totals["local-only"][0] == queries_full
        assert 0 < totals["global-only"][1] <= no_alias_full
        assert 0 < totals["local-only"][1] <= no_alias_full
        assert totals["global-only"][1] + totals["local-only"][1] >= no_alias_full
        for name in ("no-narrowing", "intraproc", "no-essa"):
            assert totals[name][1] > 0
