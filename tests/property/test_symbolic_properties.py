"""Property-based tests (hypothesis) for the symbolic substrate.

The key property throughout is *soundness by over-approximation*: whatever
the abstract operators claim must hold for every concrete instantiation of
the kernel symbols.  Concrete instantiation is provided by
:func:`repro.symbolic.evaluate`.
"""


from hypothesis import given, settings, strategies as st

from repro.symbolic import (
    EMPTY_INTERVAL,
    NEG_INF,
    Ordering,
    POS_INF,
    SymbolicInterval,
    compare,
    evaluate,
    limit_expr,
    limit_interval,
    sym,
    sym_add,
    sym_max,
    sym_min,
    sym_mul,
    sym_neg,
    sym_sub,
)

SYMBOL_NAMES = ("N", "M", "k")

# -- strategies -------------------------------------------------------------

small_ints = st.integers(min_value=-50, max_value=50)


@st.composite
def symbolic_expressions(draw, depth=2):
    """Random symbolic expressions over a small kernel."""
    if depth == 0:
        choice = draw(st.integers(0, 1))
        if choice == 0:
            return sym_add(0, draw(small_ints))
        return sym(draw(st.sampled_from(SYMBOL_NAMES)))
    left = draw(symbolic_expressions(depth=depth - 1))
    right = draw(symbolic_expressions(depth=depth - 1))
    operator = draw(st.sampled_from(["add", "sub", "min", "max", "mulc"]))
    if operator == "add":
        return sym_add(left, right)
    if operator == "sub":
        return sym_sub(left, right)
    if operator == "min":
        return sym_min(left, right)
    if operator == "max":
        return sym_max(left, right)
    return sym_mul(left, draw(st.integers(min_value=-4, max_value=4)))


environments = st.fixed_dictionaries({name: small_ints for name in SYMBOL_NAMES})


@st.composite
def intervals(draw):
    """Random non-empty symbolic intervals [min(a,b), max(a,b)]."""
    a = draw(symbolic_expressions())
    b = draw(symbolic_expressions())
    return SymbolicInterval(sym_min(a, b), sym_max(a, b))


@st.composite
def maybe_empty_intervals(draw):
    """Like :func:`intervals`, but ``∅`` appears with real probability."""
    if draw(st.integers(0, 4)) == 0:
        return EMPTY_INTERVAL
    return draw(intervals())


# -- expression properties ----------------------------------------------------

@given(symbolic_expressions(), symbolic_expressions(), environments)
@settings(max_examples=150, deadline=None)
def test_addition_matches_concrete_semantics(a, b, env):
    assert evaluate(sym_add(a, b), env) == evaluate(a, env) + evaluate(b, env)


@given(symbolic_expressions(), symbolic_expressions(), environments)
@settings(max_examples=150, deadline=None)
def test_subtraction_matches_concrete_semantics(a, b, env):
    assert evaluate(sym_sub(a, b), env) == evaluate(a, env) - evaluate(b, env)


@given(symbolic_expressions(), environments)
@settings(max_examples=100, deadline=None)
def test_negation_matches_concrete_semantics(a, env):
    assert evaluate(sym_neg(a), env) == -evaluate(a, env)


@given(symbolic_expressions(), symbolic_expressions(), environments)
@settings(max_examples=150, deadline=None)
def test_min_max_match_concrete_semantics(a, b, env):
    assert evaluate(sym_min(a, b), env) == min(evaluate(a, env), evaluate(b, env))
    assert evaluate(sym_max(a, b), env) == max(evaluate(a, env), evaluate(b, env))


@given(symbolic_expressions(), symbolic_expressions(), environments)
@settings(max_examples=200, deadline=None)
def test_compare_claims_hold_concretely(a, b, env):
    """Whatever `compare` claims must hold for every concrete valuation."""
    claim = compare(a, b)
    concrete_a, concrete_b = evaluate(a, env), evaluate(b, env)
    if claim is Ordering.LESS:
        assert concrete_a < concrete_b
    elif claim is Ordering.LESS_EQUAL:
        assert concrete_a <= concrete_b
    elif claim is Ordering.EQUAL:
        assert concrete_a == concrete_b
    elif claim is Ordering.GREATER_EQUAL:
        assert concrete_a >= concrete_b
    elif claim is Ordering.GREATER:
        assert concrete_a > concrete_b


@given(symbolic_expressions(), symbolic_expressions())
@settings(max_examples=100, deadline=None)
def test_compare_is_antisymmetric_in_its_claims(a, b):
    forward = compare(a, b)
    backward = compare(b, a)
    mirrored = {
        Ordering.LESS: Ordering.GREATER,
        Ordering.LESS_EQUAL: Ordering.GREATER_EQUAL,
        Ordering.EQUAL: Ordering.EQUAL,
        Ordering.GREATER_EQUAL: Ordering.LESS_EQUAL,
        Ordering.GREATER: Ordering.LESS,
        Ordering.UNKNOWN: Ordering.UNKNOWN,
    }
    if forward is not Ordering.UNKNOWN and backward is not Ordering.UNKNOWN:
        assert mirrored[forward] is backward or {forward, backward} <= {
            Ordering.LESS_EQUAL, Ordering.GREATER_EQUAL, Ordering.EQUAL}


# -- interval properties ---------------------------------------------------------

def _contains(interval, env, value):
    return (evaluate(interval.lower, env) <= value <= evaluate(interval.upper, env))


@given(intervals(), intervals(), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_join_over_approximates_both_operands(a, b, env, probe):
    joined = a.join(b)
    for interval in (a, b):
        if _contains(interval, env, probe):
            assert _contains(joined, env, probe)


@given(intervals(), intervals(), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_meet_under_approximates_the_intersection(a, b, env, probe):
    met = a.meet(b)
    if met.is_empty:
        # Provably disjoint: no value may be in both operands.
        assert not (_contains(a, env, probe) and _contains(b, env, probe))
    elif _contains(a, env, probe) and _contains(b, env, probe):
        assert _contains(met, env, probe)


@given(intervals(), intervals(), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_widen_over_approximates_join(a, b, env, probe):
    widened = a.widen(b)
    if _contains(a, env, probe) or _contains(b, env, probe):
        lower = evaluate(widened.lower, env)
        upper = evaluate(widened.upper, env)
        assert lower <= probe <= upper


@given(intervals(), intervals(), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_definitely_disjoint_is_sound(a, b, env, probe):
    if a.definitely_disjoint(b):
        assert not (_contains(a, env, probe) and _contains(b, env, probe))


@given(intervals(), small_ints, environments, small_ints)
@settings(max_examples=100, deadline=None)
def test_shift_translates_membership(interval, delta, env, probe):
    shifted = interval.shift(delta)
    if _contains(interval, env, probe):
        assert _contains(shifted, env, probe + delta)


@given(intervals(), environments, small_ints)
@settings(max_examples=100, deadline=None)
def test_join_with_empty_is_identity(interval, env, probe):
    assert interval.join(EMPTY_INTERVAL) == interval
    assert EMPTY_INTERVAL.join(interval) == interval


@given(intervals(), intervals())
@settings(max_examples=100, deadline=None)
def test_join_is_commutative_up_to_equality(a, b):
    assert a.join(b) == b.join(a)


@given(intervals())
@settings(max_examples=100, deadline=None)
def test_join_is_idempotent(a):
    assert a.join(a) == a


# -- widening / narrowing properties ------------------------------------------

@given(intervals(), intervals(), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_widening_is_increasing_in_both_arguments(a, b, env, probe):
    """``a ⊑ a∇b`` and ``b ⊑ a∇b``: widening only ever loses precision."""
    widened = a.widen(b)
    for operand in (a, b):
        if _contains(operand, env, probe):
            assert _contains(widened, env, probe)


@given(intervals(), intervals())
@settings(max_examples=150, deadline=None)
def test_widening_stabilises_after_one_application(a, b):
    """``(a∇b)∇b = a∇b`` — the ascending sequence cannot oscillate, which
    is what bounds the solver's widening phase."""
    once = a.widen(b)
    assert once.widen(b) == once


@given(intervals(), intervals())
@settings(max_examples=150, deadline=None)
def test_widening_only_moves_bounds_to_infinity(a, b):
    """Each widened bound is either the old bound or an infinity — the
    paper's ∇ never invents new finite bounds."""
    widened = a.widen(b)
    if a.is_empty or b.is_empty:
        return
    assert widened.lower == a.lower or widened.lower == NEG_INF
    assert widened.upper == a.upper or widened.upper == POS_INF


@given(intervals(), intervals(), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_narrowing_stays_above_the_refinement(a, b, env, probe):
    """``narrow`` may only replace infinite bounds of ``a`` by bounds of
    ``b``: anything inside both operands survives narrowing."""
    narrowed = a.widen(b).narrow(b)
    if _contains(a, env, probe) and _contains(b, env, probe):
        assert _contains(narrowed, env, probe)


@given(intervals(), intervals())
@settings(max_examples=150, deadline=None)
def test_narrowing_is_monotone_never_widens_bounds(a, b):
    """Narrowing refines: every finite bound of ``a`` is kept verbatim."""
    narrowed = a.narrow(b)
    if a.is_empty or b.is_empty:
        return
    if a.lower != NEG_INF:
        assert narrowed.lower == a.lower
    if a.upper != POS_INF:
        assert narrowed.upper == a.upper


@given(intervals(), intervals())
@settings(max_examples=100, deadline=None)
def test_narrowing_is_idempotent(a, b):
    narrowed = a.narrow(b)
    assert narrowed.narrow(b) == narrowed


@given(maybe_empty_intervals(), maybe_empty_intervals())
@settings(max_examples=200, deadline=None)
def test_narrowing_never_enlarges(a, b):
    """``a.narrow(b) ⊑ a`` over the *whole* lattice, ∅ included.

    ``narrow(∅, other)`` used to return ``other``, letting a descending
    sweep grow a state that had stabilised at the least element; the
    containment check fails on exactly that behaviour."""
    assert a.contains_interval(a.narrow(b))


@given(maybe_empty_intervals())
@settings(max_examples=50, deadline=None)
def test_narrowing_keeps_empty_states_empty(a):
    assert EMPTY_INTERVAL.narrow(a).is_empty
    assert a.narrow(EMPTY_INTERVAL).is_empty


# -- simplification / canonicalisation properties ------------------------------

@given(symbolic_expressions())
@settings(max_examples=150, deadline=None)
def test_canonicalisation_is_idempotent_under_identities(a):
    """Rebuilding an expression through identity operations is a no-op:
    canonical forms are fixed points of the builder functions."""
    assert sym_add(a, 0) == a
    assert sym_sub(a, 0) == a
    assert sym_mul(a, 1) == a
    assert sym_min(a, a) == a
    assert sym_max(a, a) == a
    assert sym_neg(sym_neg(a)) == a


@given(symbolic_expressions(), symbolic_expressions())
@settings(max_examples=150, deadline=None)
def test_canonicalisation_merges_like_terms(a, b):
    """``(a + b) - b`` cancels exactly — the linear fragment is canonical."""
    assert sym_sub(sym_add(a, b), b) == a


@given(symbolic_expressions(), st.integers(min_value=1, max_value=64))
@settings(max_examples=150, deadline=None)
def test_limit_expr_is_idempotent(a, budget):
    limited = limit_expr(a, budget=budget, toward_upper=True)
    assert limit_expr(limited, budget=budget, toward_upper=True) == limited
    limited_low = limit_expr(a, budget=budget, toward_upper=False)
    assert limit_expr(limited_low, budget=budget, toward_upper=False) == limited_low


@given(intervals(), st.integers(min_value=1, max_value=64), environments, small_ints)
@settings(max_examples=150, deadline=None)
def test_limit_interval_is_idempotent_and_sound(interval, budget, env, probe):
    limited = limit_interval(interval, budget=budget)
    assert limit_interval(limited, budget=budget) == limited
    # Budgeting must only ever enlarge the interval (sound direction).
    if _contains(interval, env, probe):
        assert _contains(limited, env, probe)
