"""Deliberately broken analyses must be caught by the oracle.

The zero-violation corpus sweep only means something if the oracle can
actually falsify wrong claims.  Each mutant here injects a specific,
realistic bug class — claim-everything, an off-by-access-size constant
offset rule, and an interval that forgets widening — and the oracle must
flag every one of them on programs whose executions disprove the claim.
"""

from repro.aliases.basic import BasicAliasAnalysis
from repro.aliases.base import AliasAnalysis
from repro.aliases.results import AliasResult, MemoryAccess
from repro.benchgen import GeneratedProgram, GeneratorConfig, build_program
from repro.core import RBAAAliasAnalysis
from repro.engine import keys
from repro.engine.manager import AnalysisManager
from repro.evaluation.soundness import check_program
from repro.frontend import compile_source
from repro.symbolic import SymbolicInterval


def crafted(name, source):
    config = GeneratorConfig(name=name, instances=1, seed=0)
    return GeneratedProgram(config=config, source=source,
                            module=compile_source(source, name))


class AlwaysNoAliasAnalysis(AliasAnalysis):
    """The maximally unsound analysis: every pair is declared disjoint."""

    name = "always-no-alias"

    def alias(self, a, b):
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        return AliasResult.NO_ALIAS


class OffBySizeBasicAnalysis(BasicAliasAnalysis):
    """basicaa with the constant-offset overlap test off by an access size.

    ``low + low_size <= high`` becomes ``low <= high``: two accesses at
    overlapping constant offsets from the same base are wrongly declared
    disjoint — exactly the class of bug the same-base instance pairing
    must catch.
    """

    name = "basic-off-by-size"

    def classify(self, a, b):
        result, claim = super().classify(a, b)
        if result is AliasResult.PARTIAL_ALIAS and claim.scope == "same-base":
            return AliasResult.NO_ALIAS, claim
        return result, claim


class CollapsedRangeOracle:
    """A range analysis that forgot to widen: every interval is [0, 0]."""

    def __init__(self, real):
        self._real = real

    def kernel_bindings(self):
        return self._real.kernel_bindings()

    def integer_values(self, function):
        return self._real.integer_values(function)

    def range_of(self, value):
        return SymbolicInterval.point(0)


class UnknownSizeAsByteRBAA(RBAAAliasAnalysis):
    """RBAA with the pre-fix unknown-size behaviour: ``None`` sizes run the
    range tests as one-byte accesses.

    This is the exact bug ``MemoryAccess.bounded_size()`` used to bake in:
    two pointers one byte apart were "provably disjoint" even for queries
    about accesses of unbounded extent.  The oracle's unknown-size query
    augmentation must falsify it.
    """

    name = "rbaa-unknown-as-byte"

    def _run_tests(self, a, b):
        return super()._run_tests(
            MemoryAccess(a.pointer, a.size if a.size is not None else 1),
            MemoryAccess(b.pointer, b.size if b.size is not None else 1))


def test_always_no_alias_mutant_is_caught_on_corpus_program():
    check = check_program(build_program("allroots"),
                          factories=[("always-no-alias", AlwaysNoAliasAnalysis)])
    violations = [v for v in check.violations if v.kind == "no-alias"]
    assert violations, "oracle failed to falsify an always-no-alias analysis"
    assert all(v.analysis == "always-no-alias" for v in violations)
    # Replay triple: enough to regenerate the program and re-ask the query.
    replay = violations[0].replay
    assert replay["program"] == "allroots"
    assert "seed" in replay and "argv" in replay
    assert violations[0].query


def test_off_by_size_constant_offset_rule_is_caught():
    source = """
    int main(int argc, char** argv) {
      int* data = (int*)malloc(32);
      char* raw = (char*)data;
      int* skewed = (int*)(raw + 2);
      *data = 5;
      *skewed = 7;
      return *data;
    }
    """
    program = crafted("offsets", source)
    healthy = check_program(program, factories=[("basic", BasicAliasAnalysis)])
    assert healthy.violations == []
    broken = check_program(program,
                           factories=[("basic-off-by-size", OffBySizeBasicAnalysis)])
    violations = [v for v in broken.violations if v.kind == "no-alias"]
    assert violations, "off-by-size constant-offset rule escaped the oracle"
    assert any("same base instance" in v.detail for v in violations)


def test_unknown_size_as_one_byte_mutant_is_caught():
    """The registered oracle case for the unknown-size soundness fix.

    ``head`` and ``tail`` are provably 1-byte-disjoint (offsets 0 and 1 of
    one allocation), and both are concretely held during execution, so any
    no-alias claim about their *unknown-size* accesses is falsifiable: an
    unbounded access through ``head`` reaches ``tail``'s byte.
    """
    source = """
    int main(int argc, char** argv) {
      int n = atoi(argv[1]);
      char* buf = (char*)malloc(n);
      char* head = buf;
      char* tail = buf + 1;
      *head = 1;
      *tail = 2;
      return *head;
    }
    """
    program = crafted("unknown_size", source)
    healthy = check_program(program, factories=[("rbaa", RBAAAliasAnalysis)])
    assert healthy.violations == []
    broken = check_program(
        program, factories=[("rbaa-unknown-as-byte", UnknownSizeAsByteRBAA)])
    violations = [v for v in broken.violations if v.kind == "no-alias"]
    assert violations, "unknown-size-as-1-byte escaped the oracle"
    assert all(v.analysis == "rbaa-unknown-as-byte" for v in violations)


def test_collapsed_range_mutant_is_caught():
    program = build_program("fixoutput")
    real = AnalysisManager(program.module).get(keys.RANGES)
    check = check_program(program, range_oracle=CollapsedRangeOracle(real))
    violations = [v for v in check.violations if v.kind == "range"]
    assert violations, "oracle failed to falsify collapsed intervals"
    assert all(v.analysis == "symbolic-ra" for v in violations)
    assert any("observed" in v.detail for v in violations)


def test_healthy_analyses_survive_the_crafted_program():
    source = """
    void mix(int* data, int n) {
      int* lo = data;
      int* hi = data + n;
      int i;
      for (i = 0; i < n; i++) {
        lo[i] = i;
        hi[i] = 0 - i;
      }
    }
    int main(int argc, char** argv) {
      int n = atoi(argv[1]);
      int* xs = (int*)malloc(n * 8);
      mix(xs, n);
      return 0;
    }
    """
    check = check_program(crafted("halves", source))
    assert check.executed
    assert check.violations == []
    assert check.claims_checked > 0
