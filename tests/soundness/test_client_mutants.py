"""Deliberately broken client analyses must be caught by the validator.

The zero-violation client sweep only means something if the differential
validator can actually falsify wrong verdicts.  Two mutants inject the
canonical bug class of each client — a bounds detector that calls every
access safe, and a parallelization checker that calls every loop
parallelizable — and the validator must flag both, on crafted programs
and on the quick corpus's client-heavy fuzz slice.
"""

from dataclasses import replace

from repro.benchgen import GeneratedProgram, GeneratorConfig, generate_module
from repro.clients.bounds import BoundsCheckAnalysis, SAFE
from repro.clients.parallelize import LoopParallelismAnalysis
from repro.evaluation.clients import check_clients_program, clients_corpus
from repro.frontend import compile_source


def crafted(name, source):
    config = GeneratorConfig(name=name, instances=1, seed=0)
    return GeneratedProgram(config=config, source=source,
                            module=compile_source(source, name))


class AlwaysSafeDetector(BoundsCheckAnalysis):
    """The maximally unsound detector: every access is declared in bounds."""

    def classify_access(self, function, index, inst):
        return SAFE, "mutant"


class AlwaysParallelChecker(LoopParallelismAnalysis):
    """The maximally unsound checker: every loop is declared parallelizable."""

    def loop_verdict(self, function, loop, accesses):
        return True, "mutant"


class WidthSwappedLockstepChecker(LoopParallelismAnalysis):
    """Reintroduces the reviewed lockstep bug: the residue condition tested
    the access widths in the wrong positions (``wa <= r <= s - wb`` instead
    of ``wb <= r <= s - wa``), wrongly proving mixed-width strided pairs
    independent."""

    def _lockstep_independent(self, a, b, loop):
        return super()._lockstep_independent(
            replace(a, width=b.width), replace(b, width=a.width), loop)


OFF_BY_ONE = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* buf = (int*)malloc(n * 4);
  int i;
  for (i = 0; i < n; i++) {
    buf[i] = i;
  }
  buf[n] = 7;
  free(buf);
  return 0;
}
"""

SHIFT = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* a = (int*)malloc(n * 4 + 4);
  int i;
  for (i = 0; i < n; i++) {
    a[i] = i;
  }
  a[n] = 0;
  for (i = 0; i < n; i++) {
    a[i] = a[i + 1];
  }
  free(a);
  return 0;
}
"""


MIXED_WIDTH = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* buf = (char*)malloc(n * 8 + 16);
  int i;
  for (i = 0; i < n * 8; i = i + 8) {
    *(int*)(buf + i) = 7;
    buf[i + 10] = 1;
  }
  free(buf);
  return 0;
}
"""


def safe_detector(module, manager):
    return AlwaysSafeDetector(module, manager=manager)


def parallel_checker(module, manager):
    return AlwaysParallelChecker(module, manager=manager)


def width_swapped_checker(module, manager):
    return WidthSwappedLockstepChecker(module, manager=manager)


class TestCraftedPrograms:
    def test_always_safe_detector_caught_on_off_by_one(self):
        check = check_clients_program(crafted("offbyone", OFF_BY_ONE),
                                      detector_factory=safe_detector)
        assert check.executed
        assert check.oob_events_observed >= 1
        kinds = {violation.kind for violation in check.violations}
        assert "oob" in kinds
        violation = next(v for v in check.violations if v.kind == "oob")
        assert violation.replay["program"] == "offbyone"
        assert violation.replay["seed"] == 0
        assert violation.replay["access"]["function"] == "main"

    def test_always_parallel_checker_caught_on_shift(self):
        check = check_clients_program(crafted("shift", SHIFT),
                                      checker_factory=parallel_checker)
        assert check.executed
        kinds = {violation.kind for violation in check.violations}
        assert "parallel" in kinds
        violation = next(v for v in check.violations if v.kind == "parallel")
        assert violation.replay["program"] == "shift"
        assert "iterations" in violation.replay["access"]

    def test_width_swapped_lockstep_caught_on_mixed_width(self):
        check = check_clients_program(crafted("mixedwidth", MIXED_WIDTH),
                                      checker_factory=width_swapped_checker)
        assert check.executed
        kinds = {violation.kind for violation in check.violations}
        assert "parallel" in kinds

    def test_true_clients_are_clean_on_crafted_programs(self):
        sources = [("offbyone", OFF_BY_ONE), ("shift", SHIFT),
                   ("mixedwidth", MIXED_WIDTH)]
        for name, source in sources:
            check = check_clients_program(crafted(name, source))
            assert check.executed
            assert check.violations == []


class TestQuickCorpus:
    """Both mutants must be caught on the quick corpus's fuzz slice.

    The client-heavy mix makes off-by-one windows and overlapping shifts
    near-certain within a few programs; scanning a fixed prefix keeps the
    test fast while still exercising generated (not crafted) shapes.
    """

    def corpus_prefix(self, count=6):
        return [config for config in clients_corpus()
                if config.name.startswith("client_")][:count]

    def test_always_safe_detector_caught_on_corpus(self):
        caught = 0
        for config in self.corpus_prefix():
            program = generate_module(config)
            check = check_clients_program(program,
                                          detector_factory=safe_detector)
            caught += sum(1 for v in check.violations if v.kind == "oob")
        assert caught >= 1

    def test_always_parallel_checker_caught_on_corpus(self):
        caught = 0
        for config in self.corpus_prefix():
            program = generate_module(config)
            check = check_clients_program(program,
                                          checker_factory=parallel_checker)
            caught += sum(1 for v in check.violations if v.kind == "parallel")
        assert caught >= 1

    def test_width_swapped_lockstep_caught_on_corpus(self):
        # The mixed_width_stride idiom guarantees corpus programs carrying
        # it contain a loop whose byte store overlaps the next iteration's
        # int store — exactly what the width-swapped rule misproves.
        caught = 0
        for config in self.corpus_prefix():
            program = generate_module(config)
            check = check_clients_program(
                program, checker_factory=width_swapped_checker)
            caught += sum(1 for v in check.violations if v.kind == "parallel")
        assert caught >= 1

    def test_true_clients_clean_on_corpus_prefix(self):
        for config in self.corpus_prefix(4):
            program = generate_module(config)
            check = check_clients_program(program)
            assert check.violations == []
