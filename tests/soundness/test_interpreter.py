"""Unit tests of the concrete IR interpreter (tests/soundness substrate)."""

import pytest

from repro.benchgen import build_program, execution_inputs
from repro.frontend import compile_source
from repro.interp import (
    Interpreter,
    InterpreterLimits,
    Pointer,
    StepBudgetExceeded,
)


def run(source, argv=("prog", "8", "hello")):
    module = compile_source(source, "test")
    interpreter = Interpreter(module)
    trace = interpreter.run_main(list(argv))
    return interpreter, trace


def main_frame(trace):
    return next(frame for frame in trace.frames if frame.function.name == "main")


class TestBasicExecution:
    def test_returns_and_arithmetic(self):
        source = """
        int compute(int a, int b) { return a * b + 3; }
        int main(int argc, char** argv) { return compute(6, 7); }
        """
        interpreter, trace = run(source)
        assert trace.completed
        assert len(trace.frames) == 2

    def test_truncating_division_matches_c(self):
        source = """
        int main(int argc, char** argv) {
          int a = 0 - atoi(argv[1]);
          int q = a / 2;
          int r = a % 2;
          int* sink = (int*)malloc(8);
          sink[0] = q;
          sink[1] = r;
          return 0;
        }
        """
        interpreter, trace = run(source, ("prog", "7", "x"))
        frame = main_frame(trace)
        observed = {value.name: frame.observed(value)
                    for value in frame.events if value.name}
        flattened = [v for values in observed.values() for v in values]
        assert -3 in flattened  # -7 / 2 truncates toward zero
        assert -1 in flattened  # -7 % 2 keeps the dividend's sign

    def test_loop_termination_and_store_load(self):
        source = """
        int main(int argc, char** argv) {
          int n = atoi(argv[1]);
          int* data = (int*)malloc(n * 4);
          int i;
          int total = 0;
          for (i = 0; i < n; i++) { data[i] = i; }
          for (i = 0; i < n; i++) { total += data[i]; }
          return total;
        }
        """
        interpreter, trace = run(source, ("prog", "5", "x"))
        assert trace.completed
        stores = [a for a in trace.accesses if a.opcode == "store"]
        loads = [a for a in trace.accesses if a.opcode == "load"]
        assert len(stores) >= 5 and len(loads) >= 5

    def test_argv_strings_have_provenance(self):
        source = """
        int main(int argc, char** argv) {
          char* text = argv[2];
          int len = strlen(text);
          return len;
        }
        """
        interpreter, trace = run(source, ("prog", "8", "hello"))
        frame = main_frame(trace)
        pointers = [concrete for events in frame.events.values()
                    for _, concrete in events if isinstance(concrete, Pointer)]
        labels = {pointer.obj.label for pointer in pointers}
        assert "argv[2]" in labels

    def test_distinct_allocations_never_share_objects(self):
        source = """
        int main(int argc, char** argv) {
          char* a = (char*)malloc(16);
          char* b = (char*)malloc(16);
          a[0] = 1;
          b[0] = 2;
          return 0;
        }
        """
        interpreter, trace = run(source)
        heap_objects = [obj for obj in interpreter.heap.objects()
                        if obj.kind == "heap"]
        assert len(heap_objects) == 2
        assert heap_objects[0] is not heap_objects[1]
        assert heap_objects[0].base != heap_objects[1].base

    def test_free_marks_object_dead(self):
        source = """
        int main(int argc, char** argv) {
          char* a = (char*)malloc(16);
          free(a);
          return 0;
        }
        """
        interpreter, trace = run(source)
        heap_objects = [obj for obj in interpreter.heap.objects()
                        if obj.kind == "heap"]
        assert len(heap_objects) == 1
        assert not heap_objects[0].alive
        assert heap_objects[0].freed_at is not None

    def test_pointer_difference_through_ptrtoint(self):
        source = """
        int main(int argc, char** argv) {
          int* data = (int*)malloc(40);
          int* hi = data + 5;
          int delta = hi - data;
          return delta;
        }
        """
        interpreter, trace = run(source)
        frame = main_frame(trace)
        flattened = [v for events in frame.events.values()
                     for _, v in events if isinstance(v, int)]
        assert 5 in flattened

    def test_struct_field_offsets(self):
        source = """
        struct pair { int x; int y; };
        int main(int argc, char** argv) {
          struct pair p;
          p.x = 11;
          p.y = 22;
          return p.x + p.y;
        }
        """
        interpreter, trace = run(source)
        stores = [a for a in trace.accesses if a.opcode == "store"]
        offsets = {a.offset for a in stores if a.object_label.endswith(".p")}
        assert {0, 4} <= offsets


class TestLimitsAndWindows:
    def test_step_budget_stops_infinite_loops(self):
        source = """
        int main(int argc, char** argv) {
          int i = 0;
          while (1) { i = i + 1; }
          return i;
        }
        """
        module = compile_source(source, "loop")
        interpreter = Interpreter(module, limits=InterpreterLimits(max_steps=2_000))
        trace = interpreter.run_main(["prog"])
        assert not trace.completed
        assert trace.stop_reason == "step-budget"

    def test_call_depth_limit(self):
        source = """
        int recurse(int n) { return recurse(n + 1); }
        int main(int argc, char** argv) { return recurse(0); }
        """
        module = compile_source(source, "rec")
        interpreter = Interpreter(module, limits=InterpreterLimits(max_call_depth=8))
        trace = interpreter.run_main(["prog"])
        assert not trace.completed
        assert "runtime-error" in trace.stop_reason

    def test_windows_partition_a_loop_pointer(self):
        source = """
        int main(int argc, char** argv) {
          int n = atoi(argv[1]);
          char* buf = (char*)malloc(n);
          char* cursor = buf;
          int i;
          for (i = 0; i < n; i++) {
            *cursor = i;
            cursor = cursor + 1;
          }
          return 0;
        }
        """
        interpreter, trace = run(source, ("prog", "4", "x"))
        frame = main_frame(trace)
        loop_values = [frame.windows(value) for value in frame.events
                       if len(frame.windows(value)) >= 4
                       and all(isinstance(w[2], Pointer) for w in frame.windows(value))]
        assert loop_values, "expected a multi-window loop pointer"
        windows = loop_values[0]
        # Windows are disjoint, orderd and cover increasing offsets.
        for (s1, e1, p1), (s2, e2, p2) in zip(windows, windows[1:]):
            assert e1 == s2
            assert p2.offset >= p1.offset

    def test_step_budget_exception_type(self):
        assert issubclass(StepBudgetExceeded, Exception)

    def test_huge_int_to_float_overflow_is_reported_not_raised(self):
        source = """
        int main(int argc, char** argv) {
          int x = 2;
          int i;
          for (i = 0; i < 3000; i++) { x = x * 2; }
          float f = x;
          double* sink = (double*)malloc(8);
          sink[0] = f;
          return 0;
        }
        """
        module = compile_source(source, "overflow")
        interpreter = Interpreter(module)
        trace = interpreter.run_main(["prog"])
        assert not trace.completed
        assert "runtime-error" in trace.stop_reason


class TestCorpusExecution:
    @pytest.mark.parametrize("name", ["allroots", "ft", "ks"])
    def test_suite_program_runs_to_completion(self, name):
        program = build_program(name)
        inputs = execution_inputs(program.config)
        interpreter = Interpreter(program.module)
        trace = interpreter.run_main(inputs.argv())
        assert trace.completed, trace.stop_reason
        assert trace.steps > 0
        assert not interpreter.unknown_external_calls

    def test_execution_is_deterministic(self):
        program = build_program("fixoutput")
        inputs = execution_inputs(program.config)

        def fingerprint():
            interpreter = Interpreter(build_program("fixoutput").module)
            trace = interpreter.run_main(inputs.argv())
            return (trace.steps,
                    [(a.opcode, a.object_label, a.offset, a.width)
                     for a in trace.accesses])

        assert fingerprint() == fingerprint()
