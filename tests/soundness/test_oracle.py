"""The differential oracle on the real corpus: the tier-1 fuzz sweep.

A seeded slice of the corpus runs through the full oracle on every tier-1
run; CI's ``soundness-smoke`` job sweeps the whole quick corpus through
the CLI.  Zero violations is the paper's soundness claim; the mutant
tests (``test_mutants.py``) prove the zero is not vacuous.
"""

import json
import os

import pytest

from repro.benchgen import build_program, generate_module, suite_configs
from repro.evaluation.soundness import (
    DEFAULT_MAX_PAIRS,
    check_program,
    main,
    run_soundness,
    soundness_corpus,
)

SUITE_COUNT = len(suite_configs())

#: Tier-1 slice: small suite programs plus the first fuzz programs.  CI can
#: widen the sweep with REPRO_SOUNDNESS_EXTRA (the smoke job instead runs
#: the CLI over the full quick corpus).
TIER1_SUITE_SLICE = ("allroots", "fixoutput", "anagram", "ft", "compiler")
TIER1_FUZZ_COUNT = int(os.environ.get("REPRO_SOUNDNESS_EXTRA", "4"))


@pytest.mark.parametrize("name", TIER1_SUITE_SLICE)
def test_suite_program_has_no_violations(name):
    check = check_program(build_program(name))
    assert check.executed, check.stop_reason
    assert check.violations == []
    # The check must not be vacuous: claims exist and most are checkable.
    assert sum(check.no_alias_claims.values()) > 0
    assert check.claims_checked > 0
    assert check.range_values_checked > 0


@pytest.mark.parametrize("index", range(TIER1_FUZZ_COUNT))
def test_fuzz_program_has_no_violations(index):
    config = soundness_corpus()[SUITE_COUNT + index]  # skip the suite slice
    check = check_program(generate_module(config))
    assert check.executed, check.stop_reason
    assert check.violations == []
    assert check.claims_checked > 0


def test_run_soundness_merges_in_corpus_order():
    configs = soundness_corpus(extra=2)[:4] + soundness_corpus(extra=2)[-2:]
    serial = run_soundness(configs, jobs=1, max_pairs_per_function=60)
    sharded = run_soundness(configs, jobs=2, max_pairs_per_function=60)
    assert [c.program for c in serial.checks] == [c.program for c in sharded.checks]
    assert [c.claims_checked for c in serial.checks] == \
        [c.claims_checked for c in sharded.checks]
    assert [c.range_values_checked for c in serial.checks] == \
        [c.range_values_checked for c in sharded.checks]
    assert serial.violations() == [] and sharded.violations() == []


def test_report_record_shape():
    report = run_soundness(soundness_corpus(extra=0)[:2], jobs=1,
                           max_pairs_per_function=40)
    record = report.as_record(run_info={"jobs": 1})
    assert record["schema"] == 1
    assert record["totals"]["programs"] == 2
    assert record["totals"]["violations"] == 0
    assert len(record["programs"]) == 2
    for entry in record["programs"]:
        assert {"program", "seed", "executed", "claims_checked"} <= set(entry)


def test_cli_writes_report_and_enforces_min_programs(tmp_path):
    out = tmp_path / "SOUNDNESS_REPORT.json"
    expected = SUITE_COUNT + 1
    status = main(["--extra", "1", "--max-pairs", "40", "--out", str(out),
                   "--min-programs", str(expected)])
    assert status == 0
    record = json.loads(out.read_text())
    assert record["totals"]["programs"] == expected
    assert record["totals"]["programs_executed"] == expected
    assert record["totals"]["violations"] == 0

    # An unreachable bar makes the CLI fail with the dedicated status.
    status = main(["--extra", "0", "--max-pairs", "40", "--out", str(out),
                   "--min-programs", "1000"])
    assert status == 2


def test_default_max_pairs_is_bounded():
    assert 0 < DEFAULT_MAX_PAIRS <= 500


@pytest.mark.parametrize("name", ("fixoutput", "anagram"))
def test_warm_edited_module_replays_clean_through_the_oracle(name):
    """Post-edit verdicts from *re-seeded* fixed points are oracle-clean.

    The warm analyses are pulled straight out of an edited session's
    manager — the exact objects whose interprocedural state was re-seeded
    via ``resolve_from`` rather than rebuilt — and fed through the full
    differential oracle against concrete executions of the edited module.
    """
    from types import SimpleNamespace

    from repro.benchgen import edit_scenario
    from repro.service.session import ANALYSIS_KEYS, AnalysisSession

    config = next(c for c in suite_configs() if c.name == name)
    scenario = edit_scenario(config, edits=2, seed=0)
    session = AnalysisSession()
    session.load_source(name, scenario.steps[0].source)
    session.query_function(name, "rbaa")
    for step in scenario.steps[1:]:
        edited = session.edit_source(name, step.source)
        assert edited["reloaded"] is False
        assert edited["changed"] == [step.function]
        session.query_function(name, "rbaa")
        resident = session._modules[name]
        warm = [(analysis_name,
                 resident.manager.get(ANALYSIS_KEYS[analysis_name]))
                for analysis_name in ("rbaa", "basic", "andersen",
                                      "steensgaard")]
        factories = [(analysis_name, (lambda module, _warm=analysis: _warm))
                     for analysis_name, analysis in warm]
        check = check_program(
            SimpleNamespace(config=config, module=resident.module),
            factories=factories)
        assert check.executed, check.stop_reason
        assert check.violations == [], check.violations
        assert sum(check.no_alias_claims.values()) > 0
        assert check.claims_checked > 0
