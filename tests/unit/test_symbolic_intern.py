"""Interning (hash-consing) invariants of the symbolic expression algebra.

Three properties carry the whole refactor:

* **equality is identity** — for any two expressions built through the
  public constructors, ``e1 == e2`` iff ``e1 is e2`` (hypothesis property
  over random expression trees);
* **interning is hash-seed independent** — canonical ordering, reprs and
  folding do not depend on ``PYTHONHASHSEED`` (real subprocesses, in the
  style of the benchgen determinism tests);
* **the compare memo is transparent** — the memoized
  :func:`repro.symbolic.compare` agrees with the unmemoized oracle on
  10k random pairs.
"""

import os
import pickle
import random
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

import repro
from repro.symbolic import (
    BoundedMemo,
    Constant,
    Infinity,
    MaxExpr,
    MinExpr,
    NEG_INF,
    POS_INF,
    SumExpr,
    Symbol,
    compare,
    compare_memo_stats,
    compare_uncached,
    intern_table_size,
    sym,
    sym_add,
    sym_max,
    sym_min,
    sym_mul,
    sym_neg,
    sym_sub,
)

_SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SYMBOL_NAMES = ("N", "M", "k", "len")


# -- recipe-based expression construction -------------------------------------
#
# Strategies draw *recipes* (plain tuples) rather than expressions, so one
# draw can be materialised twice and the two builds compared for identity.

def _leaf_recipes():
    return st.one_of(
        st.tuples(st.just("const"), st.integers(min_value=-40, max_value=40)),
        st.tuples(st.just("sym"), st.sampled_from(SYMBOL_NAMES)),
    )


def _recipes(depth=3):
    return st.recursive(
        _leaf_recipes(),
        lambda children: st.one_of(
            st.tuples(st.just("add"), children, children),
            st.tuples(st.just("sub"), children, children),
            st.tuples(st.just("min"), children, children),
            st.tuples(st.just("max"), children, children),
            st.tuples(st.just("mulc"), children,
                      st.integers(min_value=-3, max_value=3)),
            st.tuples(st.just("neg"), children),
        ),
        max_leaves=8,
    )


def _build(recipe):
    op = recipe[0]
    if op == "const":
        return Constant(recipe[1])
    if op == "sym":
        return sym(recipe[1])
    if op == "neg":
        return sym_neg(_build(recipe[1]))
    if op == "mulc":
        return sym_mul(_build(recipe[1]), recipe[2])
    left, right = _build(recipe[1]), _build(recipe[2])
    if op == "add":
        return sym_add(left, right)
    if op == "sub":
        return sym_sub(left, right)
    if op == "min":
        return sym_min(left, right)
    return sym_max(left, right)


class TestInterningInvariant:
    @given(_recipes())
    @settings(max_examples=200)
    def test_same_recipe_builds_one_object(self, recipe):
        assert _build(recipe) is _build(recipe)

    @given(_recipes(), _recipes())
    @settings(max_examples=200)
    def test_equality_iff_identity(self, first, second):
        e1, e2 = _build(first), _build(second)
        assert (e1 == e2) == (e1 is e2)
        assert (repr(e1) == repr(e2)) == (e1 is e2)
        if e1 is e2:
            assert hash(e1) == hash(e2)

    @given(_recipes())
    @settings(max_examples=100)
    def test_cached_protocol_matches_recomputation(self, recipe):
        expr = _build(recipe)
        assert expr.sort_key() == expr.sort_key()
        assert expr.complexity() >= 1
        assert expr.symbols() <= set(SYMBOL_NAMES)

    def test_constructors_return_singletons(self):
        assert Constant(7) is Constant(7)
        assert sym("N") is Symbol("N")
        assert sym_add(sym("N"), 1) is sym_add(1, sym("N"))
        assert sym_min(sym("N"), sym("M")) is sym_min(sym("M"), sym("N"))
        assert isinstance(sym_min(sym("N"), sym("M")), MinExpr)
        assert isinstance(sym_max(sym("N"), sym("M")), MaxExpr)
        assert isinstance(sym_add(sym("N"), sym("M")), SumExpr)

    def test_table_growth_is_structural_only(self):
        before = intern_table_size()
        first = sym_add(sym("intern_probe"), 41)
        mid = intern_table_size()
        second = sym_add(41, sym("intern_probe"))
        assert first is second
        assert intern_table_size() == mid > before

    def test_pickle_round_trips_through_the_intern_table(self):
        expr = sym_min(sym_add(sym("N"), 3), sym_mul(sym("M"), 2))
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr
        assert pickle.loads(pickle.dumps(POS_INF)) is POS_INF


class TestInfinitySingletons:
    def test_constructor_routes_to_singletons(self):
        assert Infinity(1) is POS_INF
        assert Infinity(-1) is NEG_INF

    def test_negation_is_symmetric(self):
        assert -POS_INF is NEG_INF
        assert -NEG_INF is POS_INF
        assert sym_neg(POS_INF) is NEG_INF
        assert sym_neg(NEG_INF) is POS_INF
        assert sym_mul(POS_INF, -2) is NEG_INF
        assert sym_mul(NEG_INF, -2) is POS_INF


#: Builds a deterministic batch of expressions and prints every canonical
#: artefact interning could disturb: reprs, sort order, fold results.
_HASH_SEED_SCRIPT = """
from repro.symbolic import (Constant, sym, sym_add, sym_max, sym_min,
                            sym_mul, sym_sub)
exprs = []
names = ["N", "M", "k", "len", "cap"]
for i, name in enumerate(names):
    s = sym(name)
    exprs.append(sym_add(sym_mul(s, i + 1), i - 2))
    exprs.append(sym_min(s, sym_add(sym(names[(i + 1) % len(names)]), i)))
    exprs.append(sym_max(Constant(i), sym_sub(s, i)))
    exprs.append(sym_add(exprs[-1], exprs[-2]))
ordered = sorted(exprs, key=lambda e: e.sort_key())
print([repr(e) for e in ordered])
print([sorted(e.symbols()) for e in ordered])
print([e.complexity() for e in ordered])
"""


def _run_under_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run([sys.executable, "-c", _HASH_SEED_SCRIPT],
                            capture_output=True, text=True, env=env, check=True)
    return result.stdout


class TestHashSeedIndependence:
    def test_interned_canonical_forms_match_across_hash_seeds(self):
        first = _run_under_hash_seed("1")
        second = _run_under_hash_seed("2")
        assert first, "intern subprocess produced no output"
        assert first == second


def _expression_pool() -> list:
    """~150 deterministic expressions with plenty of comparable pairs."""
    rng = random.Random(20260726)
    pool = [Constant(value) for value in range(-3, 4)]
    pool += [sym(name) for name in SYMBOL_NAMES]
    pool += [NEG_INF, POS_INF]
    for _ in range(140):
        op = rng.randrange(5)
        a, b = rng.choice(pool), rng.choice(pool)
        try:
            if op == 0:
                pool.append(sym_add(a, b))
            elif op == 1:
                pool.append(sym_sub(a, b))
            elif op == 2:
                pool.append(sym_min(a, b))
            elif op == 3:
                pool.append(sym_max(a, b))
            else:
                pool.append(sym_mul(a, rng.randrange(-3, 4)))
        except ArithmeticError:
            continue  # infinity compositions the algebra rejects
    return pool


class TestCompareMemo:
    def test_memoized_compare_agrees_with_oracle_on_10k_pairs(self):
        pool = _expression_pool()
        rng = random.Random(42)
        for _ in range(10_000):
            a, b = rng.choice(pool), rng.choice(pool)
            assert compare(a, b) is compare_uncached(a, b)

    def test_memo_counters_move(self):
        before = compare_memo_stats()["compare"]
        a = sym_add(sym("memo_probe"), 1)
        b = sym_add(sym("memo_probe"), 2)
        compare(a, b)
        compare(a, b)
        after = compare_memo_stats()["compare"]
        assert after["hits"] > before["hits"]
        assert after["misses"] > before["misses"]


class TestBoundedMemo:
    def test_lru_eviction_order_and_counters(self):
        memo = BoundedMemo(maxsize=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1          # refreshes "a": now "b" is LRU
        memo.put("c", 3)                   # evicts "b"
        assert memo.get("b") is None
        assert memo.get("a") == 1 and memo.get("c") == 3
        assert memo.evictions == 1
        assert len(memo) == 2

    def test_resize_trims_least_recent(self):
        memo = BoundedMemo(maxsize=4)
        for index in range(4):
            memo.put(index, index)
        memo.get(0)                        # 1 becomes least recent
        memo.resize(2)
        assert 0 in memo and 3 in memo
        assert 1 not in memo and 2 not in memo
        assert memo.evictions == 2

    def test_stats_shape(self):
        memo = BoundedMemo(maxsize=8)
        memo.put("x", 1)
        memo.get("x")
        memo.get("y")
        assert memo.stats() == {"size": 1, "maxsize": 8, "hits": 1,
                                "misses": 1, "evictions": 0}
