"""Unit tests for the shared analysis engine: solver, manager, batched queries."""


from repro.core import RBAAAliasAnalysis
from repro.engine import (
    AnalysisKey,
    AnalysisManager,
    SparseProblem,
    SparseSolver,
    condense_sccs,
    keys,
)
from repro.evaluation.harness import enumerate_query_pairs, run_queries
from repro.frontend import compile_source


class TestSCCCondensation:
    def test_acyclic_graph_is_topologically_ordered(self):
        # a -> b -> c (an edge points at what the node *reads*).
        deps = {"a": ["b"], "b": ["c"], "c": []}
        components = condense_sccs(["a", "b", "c"], lambda n: deps[n])
        assert components == [["c"], ["b"], ["a"]]

    def test_cycle_is_one_component(self):
        deps = {"a": ["b"], "b": ["a"], "c": ["a"]}
        components = condense_sccs(["a", "b", "c"], lambda n: deps[n])
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["c"]]
        # The cyclic component comes before its dependent.
        assert components[0] in (["a", "b"], ["b", "a"])

    def test_unknown_dependencies_are_ignored(self):
        components = condense_sccs(["a"], lambda n: ["not-a-node"])
        assert components == [["a"]]

    def test_self_loop(self):
        components = condense_sccs(["a", "b"], lambda n: ["a"] if n == "a" else [])
        assert sorted(map(sorted, components)) == [["a"], ["b"]]


class _MaxFlowProblem(SparseProblem):
    """Toy lattice: each node's value is max(seed, values it reads) + bias.

    With ``bias=1`` on a cycle the exact ascending chain never stabilises,
    so convergence requires the widening hook (which jumps to the cap).
    """

    name = "max-flow"

    def __init__(self, graph, seeds, widen_points=(), cap=100):
        self.graph = graph
        self.seeds = seeds
        self.widen_points = set(widen_points)
        self.cap = cap
        self.state = {}
        self.transfers = 0

    def nodes(self):
        return list(self.graph)

    def dependencies(self, node):
        return self.graph[node]

    def transfer(self, node):
        self.transfers += 1
        value = self.seeds.get(node, 0)
        for dep in self.graph[node]:
            value = max(value, self.state.get(dep, 0) + 1)
        return min(value, self.cap)

    def read(self, node):
        return self.state.get(node, 0)

    def write(self, node, value):
        self.state[node] = value

    def is_refinement_point(self, node):
        return node in self.widen_points

    def widen(self, node, old, new):
        return self.cap if new > old else new


class TestSparseSolver:
    def test_acyclic_chain_converges_in_one_sweep(self):
        # d -> c -> b -> a, listed in the worst possible priority order: the
        # SCC condensation must still schedule dependencies first.
        graph = {"d": ["c"], "c": ["b"], "b": ["a"], "a": []}
        problem = _MaxFlowProblem(graph, seeds={"a": 5})
        statistics = SparseSolver(problem).solve()
        assert problem.state == {"a": 5, "b": 6, "c": 7, "d": 8}
        # Sparse: exactly one transfer per node, no worklist iteration.
        assert statistics.steps == 4
        assert statistics.worklist_steps == 0
        assert statistics.max_node_evaluations == 1

    def test_cycle_requires_widening_to_converge(self):
        graph = {"a": ["b"], "b": ["a"]}
        problem = _MaxFlowProblem(graph, seeds={"a": 1}, widen_points=["a"], cap=50)
        statistics = SparseSolver(problem).solve()
        assert problem.state["a"] == 50
        assert problem.state["b"] == 50
        assert statistics.widenings >= 1
        # Far fewer steps than the 50 round-robin passes a dense loop needs.
        assert statistics.steps < 20

    def test_evaluation_cap_forces_convergence(self):
        # No widening points at all: the cap must still terminate the loop.
        graph = {"a": ["b"], "b": ["a"]}
        problem = _MaxFlowProblem(graph, seeds={"a": 1}, cap=1000)
        statistics = SparseSolver(problem, max_node_evaluations=6).solve()
        assert statistics.max_node_evaluations <= 6

    def test_descending_passes_run_in_order(self):
        phases = []

        class _Tracked(_MaxFlowProblem):
            def on_phase(self, phase):
                phases.append(phase)

        problem = _Tracked({"a": []}, seeds={"a": 3})
        SparseSolver(problem, descending_passes=2).solve()
        assert phases == ["sweep", "ascending", "descending:1", "descending:2"]

    def test_statistics_record_graph_shape(self):
        graph = {"a": ["b"], "b": ["a"], "c": []}
        problem = _MaxFlowProblem(graph, seeds={}, widen_points=["a"])
        statistics = SparseSolver(problem).solve()
        assert statistics.nodes == 3
        assert statistics.sccs == 2
        assert statistics.largest_scc == 2


class TestAnalysisManager:
    def _counting_key(self, builds):
        def factory(module, manager):
            builds.append(module)
            return object()
        return AnalysisKey("counted", factory)

    def test_cache_hit_returns_same_instance(self):
        module = compile_source("void f(int n) { char* p = (char*)malloc(n); *p = 0; }")
        manager = AnalysisManager(module)
        builds = []
        key = self._counting_key(builds)
        first = manager.get(key)
        second = manager.get(key)
        assert first is second
        assert len(builds) == 1
        assert manager.statistics.hits == 1
        assert manager.statistics.misses == 1

    def test_two_dependent_consumers_build_shared_input_once(self):
        """The ISSUE's acceptance test: GR and LR both require the range
        bootstrap; requesting both through one manager must construct the
        underlying SymbolicRangeAnalysis exactly once."""
        module = compile_source("""
        void f(int n) {
          char* p = (char*)malloc(n);
          char* q = p + 1;
          *q = 0;
        }
        """)
        manager = AnalysisManager(module)
        builds = []
        original = keys.RANGES.factory

        def counting(module_, manager_, **kwargs):
            builds.append(module_)
            return original(module_, manager_, **kwargs)

        import repro.engine.keys as keymod
        counted_ranges = AnalysisKey(keys.RANGES.name, counting)
        ranges_key = keys.RANGES
        try:
            # Swap the key the dependent factories resolve against.
            keymod.RANGES = counted_ranges
            global_analysis = manager.get(keys.GLOBAL_RANGES)
            local_analysis = manager.get(keys.LOCAL_RANGES)
        finally:
            keymod.RANGES = ranges_key
        assert len(builds) == 1
        assert global_analysis.ranges is local_analysis.ranges
        assert global_analysis.locations is local_analysis.locations

    def test_parameterized_requests_cache_separately(self):
        from repro.rangeanalysis.symbolic_ra import RangeAnalysisOptions
        module = compile_source("int f(int a) { return a + 1; }")
        manager = AnalysisManager(module)
        default = manager.get(keys.RANGES)
        custom = manager.get(keys.RANGES,
                             options=RangeAnalysisOptions(loads_as_symbols=False))
        assert default is not custom
        assert manager.get(keys.RANGES) is default

    def test_invalidation_evicts_dependents_transitively(self):
        module = compile_source("void f(int n) { char* p = (char*)malloc(n); *p = 0; }")
        manager = AnalysisManager(module)
        global_analysis = manager.get(keys.GLOBAL_RANGES)
        assert manager.cached(keys.RANGES) is not None
        evicted = manager.invalidate(keys.RANGES)
        # RANGES itself plus GLOBAL_RANGES, which was built on top of it.
        assert evicted >= 2
        assert manager.cached(keys.GLOBAL_RANGES) is None
        rebuilt = manager.get(keys.GLOBAL_RANGES)
        assert rebuilt is not global_analysis

    def test_full_invalidation_clears_everything(self):
        module = compile_source("void f() { }")
        manager = AnalysisManager(module)
        manager.get(keys.LOCATIONS)
        manager.get(keys.CALLGRAPH)
        assert len(manager) == 2
        manager.invalidate()
        assert len(manager) == 0

    def test_rbaa_instances_share_analyses_through_manager(self):
        module = compile_source("""
        void f(int n) { char* p = (char*)malloc(n); *p = 0; }
        """)
        manager = AnalysisManager(module)
        first = RBAAAliasAnalysis(module, manager=manager)
        second = RBAAAliasAnalysis(module, manager=manager)
        assert first.ranges is second.ranges
        assert first.global_analysis is second.global_analysis
        assert first.local_analysis is second.local_analysis


class TestBatchedQueries:
    SOURCE = """
    void f(int n) {
      char* a = (char*)malloc(n);
      char* b = (char*)malloc(n);
      char* lo = a;
      char* hi = a + n;
      a[0] = 0;
      b[0] = 0;
    }
    """

    def _pairs(self, module):
        return [(pair.a, pair.b) for pair in enumerate_query_pairs(module)]

    def test_query_many_matches_individual_queries(self):
        module = compile_source(self.SOURCE)
        rbaa = RBAAAliasAnalysis(module)
        pairs = self._pairs(module)
        batched = rbaa.query_many(pairs)
        fresh = RBAAAliasAnalysis(module)
        individual = [fresh.alias(a, b) for a, b in pairs]
        assert batched == individual

    def test_rbaa_statistics_survive_the_batched_path(self):
        """Regression: memoized pairs must still hit the Figure-14 counters."""
        module = compile_source(self.SOURCE)
        rbaa = RBAAAliasAnalysis(module)
        pairs = self._pairs(module)
        duplicated = pairs + pairs  # every pair answered twice, once memoized
        rbaa.query_many(duplicated)
        stats = rbaa.statistics
        assert stats.queries == len(duplicated)
        assert stats.no_alias > 0
        assert stats.no_alias == (stats.answered_by_global + stats.answered_by_local
                                  + stats.answered_by_distinct_objects)
        # Counters doubled along with the queries: batching preserved ratios.
        assert stats.no_alias % 2 == 0
        assert rbaa.last_query_memo.hits == len(pairs)

    def test_query_memoization_skips_recomputation(self):
        module = compile_source(self.SOURCE)
        rbaa = RBAAAliasAnalysis(module)
        pairs = self._pairs(module)
        rbaa.query_many(pairs + pairs)
        # The analysis-level outcome memo computed each distinct pair once.
        assert len(rbaa._outcomes) == len(pairs)

    def test_run_queries_uses_shared_manager(self):
        module = compile_source(self.SOURCE)
        manager = AnalysisManager(module)

        def rbaa_factory(mod, manager=None):
            return RBAAAliasAnalysis(mod, manager=manager)

        result = run_queries("t", module,
                             [("rbaa", rbaa_factory), ("rbaa2", rbaa_factory)],
                             manager=manager)
        assert result.queries > 0
        assert result.no_alias["rbaa"] == result.no_alias["rbaa2"]
        # The second factory found every sub-analysis in the cache.
        assert manager.statistics.hits > 0
