"""Unit tests for the integer symbolic range analysis and scalar evolution."""


from repro.frontend import compile_source
from repro.ir.instructions import BinaryInst, LoadInst, PhiInst, SigmaInst
from repro.rangeanalysis import RangeAnalysisOptions, ScalarEvolution, SymbolicRangeAnalysis
from repro.symbolic import Symbol


def find_value(function, name):
    for value in function.values():
        if value.name == name:
            return value
    raise AssertionError(f"no value named {name} in @{function.name}")


class TestSymbolicRangeAnalysis:
    def test_constant_has_point_range(self):
        module = compile_source("int f() { int x = 7; return x; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        ret = fn.blocks[-1].terminator
        # x was folded into the return by mem2reg; the constant evaluates on demand.
        assert analysis.range_of(ret.value).lower.constant_value() == 7

    def test_argument_becomes_kernel_symbol(self):
        module = compile_source("int f(int n) { return n; }")
        analysis = SymbolicRangeAnalysis(module)
        n = module.get_function("f").args[0]
        interval = analysis.range_of(n)
        assert interval.lower == interval.upper
        assert isinstance(interval.lower, Symbol)
        assert "n" in interval.lower.name

    def test_addition_shifts_the_range(self):
        module = compile_source("int f(int n) { return n + 3; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        add = next(i for i in fn.instructions() if isinstance(i, BinaryInst))
        n_symbol = analysis.range_of(fn.args[0]).lower
        assert analysis.range_of(add) .lower == n_symbol + 3

    def test_loop_counter_bounded_by_sigma(self):
        module = compile_source("""
        int f(int n) {
          int i; int total = 0;
          for (i = 0; i < n; i++) { total += i; }
          return total;
        }
        """)
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        # The sigma constraining i inside the loop body has upper bound n - 1.
        sigmas = [s for s in fn.instructions()
                  if isinstance(s, SigmaInst) and s.type.is_integer() and s.upper is not None]
        assert sigmas
        n_symbol = analysis.range_of(fn.args[0]).lower
        uppers = [analysis.range_of(s).upper for s in sigmas]
        assert any(upper == n_symbol - 1 for upper in uppers)

    def test_loop_counter_phi_gets_widened_then_narrowed(self):
        module = compile_source("""
        int f(int n) {
          int i; int total = 0;
          for (i = 0; i < n; i++) { total += 1; }
          return total;
        }
        """)
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        counter_phis = [p for p in fn.instructions()
                        if isinstance(p, PhiInst) and p.type.is_integer()
                        and p.name.startswith("i")]
        assert counter_phis
        interval = analysis.range_of(counter_phis[0])
        assert interval.lower.constant_value() == 0

    def test_external_call_result_is_a_symbol(self):
        module = compile_source("int f(char* s) { return strlen(s) + 1; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        call = next(i for i in fn.instructions() if i.opcode == "call")
        interval = analysis.range_of(call)
        assert isinstance(interval.lower, Symbol)
        assert "strlen" in interval.lower.name

    def test_loads_as_symbols_option(self):
        source = "int f(int* p) { return p[0]; }"
        symbolic = SymbolicRangeAnalysis(compile_source(source))
        conservative = SymbolicRangeAnalysis(
            compile_source(source), RangeAnalysisOptions(loads_as_symbols=False))
        load_a = next(i for i in symbolic.module.get_function("f").instructions()
                      if isinstance(i, LoadInst))
        load_b = next(i for i in conservative.module.get_function("f").instructions()
                      if isinstance(i, LoadInst))
        assert isinstance(symbolic.range_of(load_a).lower, Symbol)
        assert conservative.range_of(load_b).is_top

    def test_icmp_is_boolean_range(self):
        module = compile_source("int f(int a, int b) { return a < b; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        cmp = next(i for i in fn.instructions() if i.opcode == "icmp")
        interval = analysis.range_of(cmp)
        assert interval.lower.constant_value() == 0
        assert interval.upper.constant_value() == 1

    def test_select_joins_both_arms(self):
        module = compile_source("int f(int c) { return c ? 3 : 10; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        select = next(i for i in fn.instructions() if i.opcode == "select")
        interval = analysis.range_of(select)
        assert interval.lower.constant_value() == 3
        assert interval.upper.constant_value() == 10

    def test_remainder_bounded_by_modulus(self):
        module = compile_source("int f(int n) { return n % 8; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        rem = next(i for i in fn.instructions() if i.opcode == "srem")
        interval = analysis.range_of(rem)
        assert interval.lower.constant_value() == -7
        assert interval.upper.constant_value() == 7

    def test_unknown_values_default_to_top(self):
        module = compile_source("int f(int a, int b) { return a * b; }")
        analysis = SymbolicRangeAnalysis(module)
        fn = module.get_function("f")
        mul = next(i for i in fn.instructions() if i.opcode == "mul")
        assert analysis.range_of(mul).is_top

    def test_kernel_symbols_are_collected(self):
        module = compile_source("int f(int n, char* s) { return n + strlen(s); }")
        analysis = SymbolicRangeAnalysis(module)
        names = {symbol.name for symbol in analysis.kernel_symbols()}
        assert any("f.n" in name for name in names)
        assert any("strlen" in name for name in names)


class TestScalarEvolution:
    def _loop_module(self):
        return compile_source("""
        void f(float* p, int n) {
          int i = 0;
          while (i < n) {
            p[i] = 0.0;
            p[i + 1] = 1.0;
            i += 2;
          }
        }
        """)

    def test_induction_variable_recurrence(self):
        module = self._loop_module()
        fn = module.get_function("f")
        engine = ScalarEvolution(fn)
        phi = next(i for i in fn.instructions()
                   if isinstance(i, PhiInst) and i.type.is_integer())
        recurrence = engine.evolution_of(phi)
        assert recurrence is not None
        assert recurrence.step == 2
        assert recurrence.offset == 0

    def test_pointer_recurrence_scales_by_element_size(self):
        module = self._loop_module()
        fn = module.get_function("f")
        engine = ScalarEvolution(fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        first = engine.evolution_of(stores[0].pointer)
        second = engine.evolution_of(stores[1].pointer)
        assert first is not None and second is not None
        assert first.step == 8 and second.step == 8  # 2 floats per iteration
        assert second.constant_distance_from(first) == 4

    def test_distance_requires_same_loop_and_step(self):
        module = compile_source("""
        void f(int* a, int* b, int n) {
          int i; int j;
          for (i = 0; i < n; i++) { a[i] = 0; }
          for (j = 0; j < n; j++) { b[j] = 0; }
        }
        """)
        fn = module.get_function("f")
        engine = ScalarEvolution(fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        first = engine.evolution_of(stores[0].pointer)
        second = engine.evolution_of(stores[1].pointer)
        assert first is not None and second is not None
        assert first.constant_distance_from(second) is None

    def test_non_affine_value_has_no_recurrence(self):
        module = compile_source("""
        void f(int* a, int n) {
          int i;
          for (i = 0; i < n; i = i * 2) { a[i] = 0; }
        }
        """)
        fn = module.get_function("f")
        engine = ScalarEvolution(fn)
        phi = next(i for i in fn.instructions()
                   if isinstance(i, PhiInst) and i.type.is_integer())
        assert engine.evolution_of(phi) is None

    def test_value_outside_any_loop_has_no_recurrence(self):
        module = compile_source("int f(int n) { return n + 1; }")
        fn = module.get_function("f")
        engine = ScalarEvolution(fn)
        add = next(i for i in fn.instructions() if i.opcode == "add")
        assert engine.evolution_of(add) is None

    def test_symbolic_loop_start_is_rejected_for_pointers(self):
        # i starts at an unknown symbolic value m: folding it to zero would be
        # unsound, so no recurrence is produced for the pointer.
        module = compile_source("""
        void f(int* a, int m, int n) {
          int i;
          for (i = m; i < n; i++) { a[i] = 0; }
        }
        """)
        fn = module.get_function("f")
        engine = ScalarEvolution(fn)
        store = next(i for i in fn.instructions() if i.opcode == "store")
        assert engine.evolution_of(store.pointer) is None

    def test_for_module_builds_an_engine_per_function(self):
        module = self._loop_module()
        engines = ScalarEvolution.for_module(module)
        assert set(engines) == set(module.defined_functions())
