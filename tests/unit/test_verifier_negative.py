"""Failure-path tests for :mod:`repro.ir.verifier`.

The positive path (clean modules verify) is exercised by every pipeline
test; these tests hand-build malformed IR and assert the verifier rejects
it with a diagnostic naming the offending construct.
"""

import pytest

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SigmaInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.types import BOOL, FunctionType, INT32, INT64, PointerType, VOID
from repro.ir.values import ConstantInt
from repro.ir.verifier import (
    IRVerificationFailure,
    verify_function,
    verify_module,
)


def fresh_function(name="f", params=(), ret=VOID):
    module = Module("m")
    function = module.create_function(name, FunctionType(ret, list(params)))
    return module, function


def errors_of(function):
    return verify_function(function, raise_on_error=False)


def messages(errors):
    return " | ".join(str(error) for error in errors)


class TestTerminators:
    def test_block_without_terminator_is_rejected(self):
        _, function = fresh_function()
        block = function.append_block("entry")
        block.append(BinaryInst("add", ConstantInt(1), ConstantInt(2), name="x"))
        errors = errors_of(function)
        assert errors and "no terminator" in messages(errors)

    def test_instruction_after_terminator_is_rejected(self):
        _, function = fresh_function()
        block = function.append_block("entry")
        block.append(ReturnInst())
        # Force an instruction after the terminator.
        late = BinaryInst("add", ConstantInt(1), ConstantInt(2), name="late")
        late.parent = block
        block.instructions.append(late)
        errors = errors_of(function)
        assert errors and "misplaced or duplicate terminator" in messages(errors)

    def test_branch_to_foreign_block_is_rejected(self):
        _, function = fresh_function()
        block = function.append_block("entry")
        foreign = BasicBlock("foreign")
        block.append(BranchInst(foreign))
        errors = errors_of(function)
        assert errors and "outside the function" in messages(errors)


class TestMalformedPhis:
    def test_phi_below_ordinary_instruction_is_rejected(self):
        _, function = fresh_function()
        entry = function.append_block("entry")
        target = function.append_block("target")
        entry.append(BranchInst(target))
        target.append(BinaryInst("add", ConstantInt(1), ConstantInt(2), name="x"))
        phi = PhiInst(INT32, name="p")
        phi.add_incoming(ConstantInt(0), entry)
        # Bypass insert_phi to plant the φ *after* an ordinary instruction.
        phi.parent = target
        target.instructions.append(phi)
        target.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "not at the top" in messages(errors)

    def test_phi_with_mismatched_incoming_lists_is_rejected(self):
        _, function = fresh_function()
        entry = function.append_block("entry")
        target = function.append_block("target")
        entry.append(BranchInst(target))
        phi = PhiInst(INT32, name="p")
        phi.add_incoming(ConstantInt(0), entry)
        phi.incoming_blocks.append(entry)  # one value, two blocks
        target.insert_phi(phi)
        target.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "mismatched incoming lists" in messages(errors)

    def test_phi_naming_a_non_predecessor_is_rejected(self):
        _, function = fresh_function()
        entry = function.append_block("entry")
        target = function.append_block("target")
        unrelated = function.append_block("unrelated")
        entry.append(BranchInst(target))
        unrelated.append(ReturnInst())
        phi = PhiInst(INT32, name="p")
        phi.add_incoming(ConstantInt(0), unrelated)
        target.insert_phi(phi)
        target.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "not a predecessor" in messages(errors)


class TestUseBeforeDef:
    def test_same_block_use_before_def_is_rejected(self):
        _, function = fresh_function()
        block = function.append_block("entry")
        first = BinaryInst("add", ConstantInt(1), ConstantInt(2), name="a")
        second = BinaryInst("add", ConstantInt(3), ConstantInt(4), name="b")
        block.append(first)
        block.append(second)
        block.append(ReturnInst())
        # Rewire so the *earlier* instruction uses the later one.
        first.set_operand(0, second)
        errors = errors_of(function)
        assert errors and "before its definition" in messages(errors)

    def test_operand_from_another_function_is_rejected(self):
        module = Module("m")
        provider = module.create_function("provider", FunctionType(VOID, []))
        provider_block = provider.append_block("entry")
        foreign = BinaryInst("add", ConstantInt(1), ConstantInt(2), name="x")
        provider_block.append(foreign)
        provider_block.append(ReturnInst())

        consumer = module.create_function("consumer", FunctionType(VOID, []))
        consumer_block = consumer.append_block("entry")
        consumer_block.append(BinaryInst("add", foreign, ConstantInt(1), name="y"))
        consumer_block.append(ReturnInst())
        errors = verify_function(consumer, raise_on_error=False)
        assert errors and "another function" in messages(errors)

    def test_duplicate_value_names_are_rejected(self):
        _, function = fresh_function()
        block = function.append_block("entry")
        block.append(BinaryInst("add", ConstantInt(1), ConstantInt(2), name="dup"))
        block.append(BinaryInst("add", ConstantInt(3), ConstantInt(4), name="dup"))
        block.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "duplicate value name" in messages(errors)


class TestTypeMismatches:
    def test_load_through_non_pointer_is_rejected(self):
        module, function = fresh_function(params=(INT32,))
        block = function.append_block("entry")
        block.append(LoadInst(function.args[0], INT32, name="v"))
        block.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "non-pointer" in messages(errors)

    def test_store_through_non_pointer_is_rejected(self):
        module, function = fresh_function(params=(INT32,))
        block = function.append_block("entry")
        block.append(StoreInst(ConstantInt(1), function.args[0]))
        block.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "non-pointer" in messages(errors)

    def test_branch_on_non_bool_condition_is_rejected(self):
        module, function = fresh_function(params=(INT32,))
        entry = function.append_block("entry")
        then = function.append_block("then")
        done = function.append_block("done")
        entry.append(BranchInst(condition=function.args[0],
                                true_target=then, false_target=done))
        then.append(ReturnInst())
        done.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "non-i1" in messages(errors)

    def test_phi_with_mismatched_incoming_type_is_rejected(self):
        _, function = fresh_function()
        entry = function.append_block("entry")
        target = function.append_block("target")
        entry.append(BranchInst(target))
        phi = PhiInst(INT32, name="p")
        phi.add_incoming(ConstantInt(0, INT64), entry)
        target.insert_phi(phi)
        target.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "incoming" in messages(errors)

    def test_binary_with_mixed_operand_types_is_rejected(self):
        _, function = fresh_function()
        block = function.append_block("entry")
        block.append(BinaryInst("add", ConstantInt(1, INT32),
                                ConstantInt(2, INT64), name="x"))
        block.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "mixes operand types" in messages(errors)

    def test_sigma_changing_type_is_rejected(self):
        module, function = fresh_function(params=(INT32,))
        block = function.append_block("entry")
        sigma = SigmaInst(function.args[0], lower=ConstantInt(0), name="s")
        sigma.type = INT64  # corrupt the result type
        block.append(sigma)
        block.append(ReturnInst())
        errors = errors_of(function)
        assert errors and "sigma" in messages(errors)


class TestRaisingBehaviour:
    def test_verify_function_raises_by_default(self):
        _, function = fresh_function()
        function.append_block("entry")  # no terminator
        with pytest.raises(IRVerificationFailure) as excinfo:
            verify_function(function)
        assert excinfo.value.errors

    def test_verify_module_collects_across_functions(self):
        module = Module("m")
        for name in ("f", "g"):
            function = module.create_function(name, FunctionType(VOID, []))
            function.append_block("entry")  # no terminator in either
        errors = verify_module(module, raise_on_error=False)
        assert len(errors) == 2
        assert {error.function for error in errors} == {"f", "g"}

    def test_pointer_typed_ir_still_verifies(self):
        module, function = fresh_function(params=(PointerType(INT32),), ret=INT32)
        block = function.append_block("entry")
        loaded = LoadInst(function.args[0], INT32, name="v")
        block.append(loaded)
        block.append(ReturnInst(loaded))
        assert errors_of(function) == []
        # And a BOOL-conditioned branch passes the type check.
        module2, function2 = fresh_function(name="g", params=(BOOL,))
        entry = function2.append_block("entry")
        then = function2.append_block("then")
        done = function2.append_block("done")
        entry.append(BranchInst(condition=function2.args[0],
                                true_target=then, false_target=done))
        then.append(ReturnInst())
        done.append(ReturnInst())
        assert errors_of(function2) == []
