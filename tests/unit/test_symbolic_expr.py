"""Unit tests for the symbolic expression algebra."""

import pytest

from repro.symbolic import (
    Constant,
    DivExpr,
    MaxExpr,
    MinExpr,
    ModExpr,
    NEG_INF,
    POS_INF,
    ProductExpr,
    SumExpr,
    Symbol,
    as_expr,
    const,
    evaluate,
    sym,
    sym_add,
    sym_div,
    sym_max,
    sym_min,
    sym_mod,
    sym_mul,
    sym_neg,
    sym_sub,
)

N = sym("N")
M = sym("M")


class TestConstruction:
    def test_constant_value(self):
        assert const(7).constant_value() == 7
        assert const(-3).is_constant()

    def test_symbol_requires_name(self):
        with pytest.raises(ValueError):
            Symbol("")

    def test_as_expr_coerces_ints(self):
        assert as_expr(5) == Constant(5)
        assert as_expr(N) is N

    def test_as_expr_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_expr("N")

    def test_symbols_are_interned_by_value(self):
        assert sym("x") == sym("x")
        assert hash(sym("x")) == hash(sym("x"))
        assert sym("x") != sym("y")

    def test_immutability(self):
        with pytest.raises(AttributeError):
            N.name = "other"
        with pytest.raises(AttributeError):
            const(1).value = 2


class TestLinearCanonicalisation:
    def test_add_constants_folds(self):
        assert sym_add(2, 3) == const(5)

    def test_add_symbol_and_constant(self):
        expr = sym_add(N, 1)
        assert isinstance(expr, SumExpr)
        assert expr.offset == 1

    def test_subtraction_cancels(self):
        assert sym_sub(sym_add(N, 1), N) == const(1)

    def test_add_is_commutative_canonical(self):
        assert sym_add(N, M) == sym_add(M, N)

    def test_coefficients_accumulate(self):
        assert sym_add(N, N) == sym_mul(N, 2)

    def test_negation_round_trips(self):
        assert sym_neg(sym_neg(N)) == N

    def test_zero_coefficient_disappears(self):
        assert sym_sub(sym_mul(N, 3), sym_mul(N, 3)) == const(0)

    def test_multiplication_by_constant_distributes(self):
        expr = sym_mul(sym_add(N, 2), 3)
        assert expr == sym_add(sym_mul(N, 3), 6)

    def test_multiplication_by_zero(self):
        assert sym_mul(N, 0) == const(0)

    def test_nonlinear_product_is_opaque(self):
        product = sym_mul(N, M)
        assert isinstance(product, ProductExpr)
        assert product == sym_mul(M, N)

    def test_operator_sugar(self):
        assert (N + 1) - 1 == N
        assert -(N - N) == const(0)
        assert 2 * N == N + N


class TestDivisionAndModulo:
    def test_constant_division_truncates_toward_zero(self):
        assert sym_div(7, 2) == const(3)
        assert sym_div(-7, 2) == const(-3)

    def test_division_by_one_is_identity(self):
        assert sym_div(N, 1) == N

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            sym_div(N, 0)

    def test_symbolic_division_is_opaque(self):
        assert isinstance(sym_div(N, 2), DivExpr)

    def test_constant_modulo(self):
        assert sym_mod(7, 3) == const(1)
        assert sym_mod(-7, 3) == const(-1)

    def test_symbolic_modulo_is_opaque(self):
        assert isinstance(sym_mod(N, 4), ModExpr)

    def test_modulo_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            sym_mod(N, 0)


class TestInfinities:
    def test_addition_saturates(self):
        assert sym_add(POS_INF, N) == POS_INF
        assert sym_add(N, NEG_INF) == NEG_INF

    def test_opposite_infinities_raise(self):
        with pytest.raises(ArithmeticError):
            sym_add(POS_INF, NEG_INF)

    def test_negation_flips_sign(self):
        assert -POS_INF == NEG_INF
        assert -NEG_INF == POS_INF

    def test_multiplication_by_positive_constant(self):
        assert sym_mul(POS_INF, 2) == POS_INF
        assert sym_mul(POS_INF, -2) == NEG_INF
        assert sym_mul(POS_INF, 0) == const(0)

    def test_multiplication_by_symbol_rejected(self):
        with pytest.raises(ArithmeticError):
            sym_mul(POS_INF, N)

    def test_min_max_absorb_infinities(self):
        assert sym_min(NEG_INF, N) == NEG_INF
        assert sym_min(POS_INF, N) == N
        assert sym_max(POS_INF, N) == POS_INF
        assert sym_max(NEG_INF, N) == N


class TestMinMax:
    def test_comparable_operands_fold(self):
        assert sym_min(N, N + 1) == N
        assert sym_max(N, N + 1) == N + 1
        assert sym_min(3, 5) == const(3)

    def test_incomparable_operands_stay(self):
        assert isinstance(sym_min(N, M), MinExpr)
        assert isinstance(sym_max(N, M), MaxExpr)

    def test_commutative_canonical_form(self):
        assert sym_min(N, M) == sym_min(M, N)
        assert sym_max(N, M) == sym_max(M, N)

    def test_equal_operands(self):
        assert sym_min(N, N) == N
        assert sym_max(N + 0, N) == N


class TestSubstitutionAndEvaluation:
    def test_substitute_symbol(self):
        expr = N + M + 1
        assert expr.substitute({"N": 4}) == M + 5

    def test_substitute_into_min(self):
        expr = sym_min(N, M)
        assert expr.substitute({"N": 2, "M": 7}) == const(2)

    def test_evaluate_linear(self):
        assert evaluate(2 * N + 3, {"N": 5}) == 13

    def test_evaluate_min_max(self):
        assert evaluate(sym_min(N, M), {"N": 2, "M": 9}) == 2
        assert evaluate(sym_max(N, M), {"N": 2, "M": 9}) == 9

    def test_evaluate_division_matches_construction(self):
        assert evaluate(sym_div(N, 2), {"N": -7}) == -3

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            evaluate(N + 1, {})

    def test_symbols_collects_all_names(self):
        assert (sym_min(N, M) + 3).symbols() == {"N", "M"}

    def test_complexity_counts_nodes(self):
        assert const(1).complexity() == 1
        assert sym_min(N, M).complexity() == 3
