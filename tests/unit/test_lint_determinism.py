"""The determinism lint must catch each hazard class and pass the repo."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTER = REPO_ROOT / "tools" / "lint_determinism.py"


def run_linter(*paths):
    return subprocess.run(
        [sys.executable, str(LINTER), *map(str, paths)],
        capture_output=True, text=True, cwd=REPO_ROOT)


def lint_source(tmp_path, source):
    target = tmp_path / "sample.py"
    target.write_text(source, encoding="utf-8")
    return run_linter(target)


class TestHazardClasses:
    def test_builtin_hash_flagged(self, tmp_path):
        result = lint_source(tmp_path, "seed = hash('name') % 100\n")
        assert result.returncode == 1
        assert "hash()" in result.stdout

    def test_ambient_random_flagged(self, tmp_path):
        result = lint_source(
            tmp_path, "import random\nvalue = random.randrange(5)\n")
        assert result.returncode == 1
        assert "random.randrange" in result.stdout

    def test_explicit_random_instance_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import random\nrng = random.Random(7)\nvalue = rng.randrange(5)\n")
        assert result.returncode == 0

    def test_set_iteration_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def f(items):\n"
            "    names = set(items)\n"
            "    for name in names:\n"
            "        print(name)\n")
        assert result.returncode == 1
        assert "set-typed" in result.stdout

    def test_set_intersection_with_dict_view_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def f(values, events):\n"
            "    wanted = set(values)\n"
            "    for value in wanted & events.keys():\n"
            "        print(value)\n")
        assert result.returncode == 1

    def test_sorted_set_iteration_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def f(items):\n"
            "    names = set(items)\n"
            "    for name in sorted(names):\n"
            "        print(name)\n"
            "    total = sum(1 for name in sorted(names))\n")
        assert result.returncode == 0

    def test_set_comprehension_iteration_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def f(items):\n"
            "    out = [x for x in {i.name for i in items}]\n")
        assert result.returncode == 1

    def test_membership_test_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            "def f(items, key):\n"
            "    names = set(items)\n"
            "    return key in names\n")
        assert result.returncode == 0


class TestRepositoryIsClean:
    def test_benchgen_and_evaluation_pass(self):
        result = run_linter()
        assert result.returncode == 0, result.stdout
        assert "0 determinism finding(s)" in result.stdout
