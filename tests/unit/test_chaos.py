"""Fault-tolerance building blocks: solver budgets, retry policy, fault
plans, the kill controller, and store-corruption survival."""

import pytest

from repro.engine.solver import SolverInterrupted, solver_budget
from repro.service.chaos import (
    ChaosController,
    corrupt_store_entries,
    generate_plan,
)
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.protocol import error_envelope, success_envelope
from repro.service.session import AnalysisSession
from repro.service.store import ResultStore

SRC = """
int main(int argc, char** argv) {
  char* a = (char*)malloc(8);
  char* b = a + 1;
  *a = 0;
  *b = 1;
  return 0;
}
"""


def _pointers(session, module="m"):
    values = session.values(module, "main")["values"]
    base = next(v["name"] for v in values if v["op"] == "malloc")
    offset = [v["name"] for v in values if v["op"] == "ptradd"][-1]
    return base, offset


class TestSolverBudget:
    def test_exhausted_budget_interrupts_without_poisoning_state(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _pointers(session)
        with solver_budget(lambda: False):
            with pytest.raises(SolverInterrupted):
                session.query("m", "rbaa", "main", base, offset)
        # The abandoned fixed point was discarded, not cached: the same
        # query without a budget computes the correct answer from scratch.
        assert session.query("m", "rbaa", "main", base, offset)["result"] \
            == "no-alias"

    def test_generous_budget_does_not_change_the_answer(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _pointers(session)
        with solver_budget(lambda: True):
            bounded = session.query("m", "rbaa", "main", base, offset)
        assert bounded["result"] == "no-alias"

    def test_budget_hooks_nest_and_restore(self):
        from repro.engine import solver

        assert solver._BUDGET_HOOK is None
        outer = lambda: True  # noqa: E731
        inner = lambda: False  # noqa: E731
        with solver_budget(outer):
            assert solver._BUDGET_HOOK is outer
            with solver_budget(inner):
                assert solver._BUDGET_HOOK is inner
            assert solver._BUDGET_HOOK is outer
        assert solver._BUDGET_HOOK is None


class TestRetryPolicy:
    def test_backoff_schedule_is_seeded_and_bounded(self):
        one = RetryPolicy(seed="service/test/retry")
        two = RetryPolicy(seed="service/test/retry")
        delays = [one.delay_seconds(attempt) for attempt in range(6)]
        assert delays == [two.delay_seconds(attempt) for attempt in range(6)]
        for attempt, delay in enumerate(delays):
            nominal = min(one.cap_ms, one.base_ms * one.factor ** attempt)
            assert nominal / 2000.0 <= delay <= nominal / 1000.0
        assert RetryPolicy(seed="service/test/other").delay_seconds(0) \
            != delays[0]

    def test_counters(self):
        policy = RetryPolicy()
        policy.note("overloaded")
        policy.note("overloaded")
        policy.note("worker_unavailable")
        stats = policy.stats()
        assert stats["retries"] == 3
        assert stats["retries_by_code"] == {"overloaded": 2,
                                            "worker_unavailable": 1}


class _ScriptedClient(ServiceClient):
    """A fake transport answering from a canned envelope sequence."""

    def __init__(self, envelopes):
        self.envelopes = list(envelopes)
        self.calls = 0

    def call(self, payload):
        self.calls += 1
        return self.envelopes.pop(0)


class TestClientRetries:
    def test_send_retries_transient_codes_until_success(self):
        client = _ScriptedClient([
            error_envelope("overloaded", "shed", 1),
            error_envelope("worker_unavailable", "died", 1),
            success_envelope(1, {"pong": True}),
        ])
        client.retry_policy = RetryPolicy(base_ms=0.01, seed="t")
        assert client.send({"op": "ping", "v": 1, "id": 1})["pong"] is True
        assert client.calls == 3
        assert client.retry_stats()["retries_by_code"] == {
            "overloaded": 1, "worker_unavailable": 1}

    def test_send_never_retries_non_transient_codes(self):
        for code in ("deadline_exceeded", "unknown_module", "bad_request"):
            client = _ScriptedClient([error_envelope(code, "no", 7)])
            client.retry_policy = RetryPolicy(base_ms=0.01, seed="t")
            assert client.send({"op": "q", "v": 1})["error_code"] == code
            assert client.calls == 1

    def test_send_gives_up_after_the_attempt_budget(self):
        client = _ScriptedClient(
            [error_envelope("overloaded", "shed", 1)] * 10)
        client.retry_policy = RetryPolicy(attempts=3, base_ms=0.01, seed="t")
        assert client.send({"op": "q", "v": 1})["error_code"] == "overloaded"
        assert client.calls == 4  # initial + 3 retries
        assert client.retry_stats()["exhausted"] == 1


class TestFaultPlan:
    PLACEMENT = {"alpha": 0, "beta": 1, "gamma": 0, "delta": 1}

    def test_plans_are_pure_functions_of_the_seed(self):
        one = generate_plan(7, self.PLACEMENT, clients=4)
        two = generate_plan(7, self.PLACEMENT, clients=4)
        assert one.as_dict() == two.as_dict()

    def test_plan_invariants(self):
        for seed in range(5):
            plan = generate_plan(seed, self.PLACEMENT, clients=4)
            assert len(plan.kills) == 1
            killed_shard = next(iter(plan.kills))
            # The kill lands after that shard's load acks.
            assert plan.kills[killed_shard] > len(plan.killed_modules)
            assert set(plan.killed_modules) == {
                m for m, s in self.PLACEMENT.items() if s == killed_shard}
            # Corruption stays off the killed shard, or the respawn-warm
            # zero-bootstrap gate would be meaningless.
            assert set(plan.corrupt_modules) <= set(plan.safe_modules)
            assert not set(plan.corrupt_modules) & set(plan.killed_modules)
            assert plan.victim_module in self.PLACEMENT
            assert all(0 <= index < 4 for index in plan.truncate_clients)

    def test_single_shard_plan_skips_corruption(self):
        plan = generate_plan(3, {"alpha": 0, "beta": 0}, clients=2)
        assert plan.safe_modules == []
        assert plan.corrupt_modules == []
        assert plan.victim_module in plan.killed_modules


class _FakeProcess:
    def __init__(self):
        self.kills = 0

    def kill(self):
        self.kills += 1


class _FakeWorker:
    def __init__(self):
        self.process = _FakeProcess()


class _FakePool:
    def __init__(self, shards):
        self._workers = {shard: _FakeWorker() for shard in shards}

    def worker(self, shard):
        return self._workers[shard]


class TestChaosController:
    def test_kill_fires_exactly_once_at_the_threshold(self):
        plan = generate_plan(0, {"alpha": 0}, clients=1)
        plan.kills = {0: 3}
        pool = _FakePool([0, 1])
        controller = ChaosController(pool, plan)
        for _ in range(2):
            controller.on_response(0, {"ok": True})
        assert pool.worker(0).process.kills == 0
        for _ in range(4):
            controller.on_response(0, {"ok": True})
        assert pool.worker(0).process.kills == 1
        assert controller.kills_fired == {0: 3}
        # Unplanned shards are never touched.
        controller.on_response(1, {"ok": True})
        assert pool.worker(1).process.kills == 0


class TestStoreCorruption:
    def test_corrupted_entries_are_counted_discarded_and_recomputed(
            self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        digest = "d" * 64
        key = store.key(digest, "load")
        store.put(key, {"functions": ["main"]})
        corrupted = corrupt_store_entries(root, {"m": digest}, ["m"])
        assert len(corrupted) == 1
        fresh = ResultStore(root)
        assert fresh.get(key) is None
        assert fresh.corrupt_entries == 1
        # The discard deletes the bad entry; a recompute can re-store it.
        fresh.put(key, {"functions": ["main"]})
        assert fresh.get(key) == {"functions": ["main"]}

    def test_missing_entries_are_skipped_not_invented(self, tmp_path):
        root = str(tmp_path / "store")
        assert corrupt_store_entries(root, {"m": "e" * 64}, ["m"]) == []
