"""Function-granular incremental analysis: IR edits + manager reaction.

Covers the two layers under the analysis service: ``Module
.replace_function`` (the IR-level graft primitive) and ``AnalysisManager
.apply_function_edit`` (scope-directed refresh/evict), including the
refresh hooks of the function-scoped analyses.
"""

import pytest

from repro.aliases.results import MemoryAccess
from repro.engine import keys
from repro.engine.manager import (
    SCOPE_FUNCTION,
    AnalysisKey,
    AnalysisManager,
)
from repro.frontend import compile_source
from repro.ir.instructions import CallInst
from repro.ir.printer import print_function

SRC_V1 = """
int shared_table[16];

void fill(char* buf, int n) {
  int i;
  for (i = 0; i < n; i++) { buf[i] = 1; }
}
int scan(int* xs, int n) {
  int i;
  int total = 0;
  for (i = 0; i < n; i++) { total += xs[i] + shared_table[i % 16]; }
  return total;
}
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* bytes = (char*)malloc(n);
  int* ints = (int*)malloc(n * 4);
  fill(bytes, n);
  return scan(ints, n);
}
"""

SRC_V2 = SRC_V1.replace("buf[i] = 1;", "buf[i] = 2; buf[i + 3] = 4;")


def _compile_pair():
    module = compile_source(SRC_V1, "prog")
    donor = compile_source(SRC_V2, "prog")
    return module, donor


class TestReplaceFunction:
    def test_grafts_body_and_preserves_module_order(self):
        module, donor = _compile_pair()
        names_before = [fn.name for fn in module.functions]
        old = module.replace_function(donor.get_function("fill"))
        assert old.parent is None
        assert [fn.name for fn in module.functions] == names_before
        new = module.get_function("fill")
        assert new is donor.get_function("fill")
        assert new.parent is module
        assert "4" in print_function(new)  # the edited body landed

    def test_call_sites_are_retargeted(self):
        module, donor = _compile_pair()
        module.replace_function(donor.get_function("fill"))
        new = module.get_function("fill")
        main = module.get_function("main")
        callees = [inst.callee for inst in main.instructions()
                   if isinstance(inst, CallInst) and inst.callee_name() == "fill"]
        assert callees and all(callee is new for callee in callees)

    def test_donor_global_references_are_remapped(self):
        module, donor = _compile_pair()
        donor_v3 = compile_source(
            SRC_V2.replace("xs[i] + shared_table[i % 16]",
                           "xs[i] + shared_table[(i + 1) % 16]"), "prog")
        module.replace_function(donor_v3.get_function("scan"))
        table = module.get_global("shared_table")
        new = module.get_function("scan")
        referenced = {operand for inst in new.instructions()
                      for operand in inst.operands
                      if operand.name == "shared_table"}
        assert referenced == {table}
        # The graft also registered uses on this module's global, so
        # use-lists stay coherent for escape/address-taken reasoning.
        assert any(use.user.function is new for use in table.uses)

    def test_old_body_uses_are_detached(self):
        module, donor = _compile_pair()
        table = module.get_global("shared_table")
        old = module.replace_function(donor.get_function("scan"))
        assert all(use.user.function is not old for use in table.uses)

    def test_signature_change_is_rejected(self):
        module, _ = _compile_pair()
        other = compile_source("void fill(char* buf) { *buf = 0; }", "donor")
        with pytest.raises(ValueError, match="signature"):
            module.replace_function(other.get_function("fill"))

    def test_unknown_function_is_rejected(self):
        module, _ = _compile_pair()
        other = compile_source("void nobody(int x) { }", "donor")
        with pytest.raises(ValueError, match="no function"):
            module.replace_function(other.get_function("nobody"))


class TestApplyFunctionEdit:
    def _edit(self, module, donor, name):
        manager = AnalysisManager(module)
        rbaa = manager.get(keys.RBAA)
        ranges = manager.get(keys.RANGES)
        lr = manager.get(keys.LOCAL_RANGES)
        gr = manager.get(keys.GLOBAL_RANGES)
        # Build the callgraph-scoped aliasing fixed points too so the edit
        # exercises their re-seed paths rather than lazy cold builds.
        manager.get(keys.ANDERSEN)
        manager.get(keys.STEENSGAARD)
        old = module.replace_function(donor.get_function(name))
        impact = manager.apply_function_edit(old, module.get_function(name))
        return manager, impact, (rbaa, ranges, lr, gr)

    def test_function_scoped_entries_refresh_in_place(self):
        module, donor = _compile_pair()
        manager, impact, (rbaa, ranges, lr, gr) = self._edit(module, donor, "fill")
        assert "symbolic-ranges" in impact.refreshed
        assert "local-ranges" in impact.refreshed
        assert "rbaa" in impact.refreshed
        assert manager.get(keys.RANGES) is ranges
        assert manager.get(keys.LOCAL_RANGES) is lr
        assert manager.get(keys.RBAA) is rbaa

    def test_callgraph_scoped_entries_reseed_in_place(self):
        module, donor = _compile_pair()
        manager, impact, (_, _, _, gr) = self._edit(module, donor, "fill")
        assert "global-ranges" in impact.refreshed
        assert "global-ranges" not in impact.evicted
        # Same object, re-seeded: no eviction, and the telemetry records how
        # much of the fixed point survived.
        assert manager.get(keys.GLOBAL_RANGES) is gr
        assert impact.reseeded["global-ranges"] > 0
        assert impact.retained["global-ranges"] > 0

    def test_module_scoped_entries_still_evict(self):
        module, donor = _compile_pair()
        manager = AnalysisManager(module)
        callgraph = manager.get(keys.CALLGRAPH)
        old = module.replace_function(donor.get_function("fill"))
        impact = manager.apply_function_edit(old, module.get_function("fill"))
        assert "callgraph" in impact.evicted
        assert manager.get(keys.CALLGRAPH) is not callgraph

    def test_cone_covers_callgraph_closure(self):
        module, donor = _compile_pair()
        _, impact, _ = self._edit(module, donor, "fill")
        assert set(impact.cone) == {"fill", "scan", "main"}

    def test_refresh_accumulates_solver_steps(self):
        module, donor = _compile_pair()
        manager = AnalysisManager(module)
        ranges = manager.get(keys.RANGES)
        before = ranges.solver_statistics.steps
        old = module.replace_function(donor.get_function("fill"))
        manager.apply_function_edit(old, module.get_function("fill"))
        after = ranges.solver_statistics.steps
        assert after > before
        # The refresh re-ran only one function: far fewer steps than a
        # whole-module solve.
        assert after - before < before

    def test_refresh_counter_and_fallback_eviction(self):
        module, donor = _compile_pair()
        manager = AnalysisManager(module)
        # A function-scoped key whose value has no refresh hook must fall
        # back to eviction instead of being silently kept stale.
        hookless = AnalysisKey("hookless", lambda m, mgr: object(),
                               scope=SCOPE_FUNCTION)
        manager.get(hookless)
        manager.get(keys.RANGES)
        old = module.replace_function(donor.get_function("fill"))
        impact = manager.apply_function_edit(old, module.get_function("fill"))
        assert "hookless" in impact.evicted
        assert manager.statistics.refreshes > 0

    def test_on_evict_callback_sees_retired_values(self):
        module, donor = _compile_pair()
        manager = AnalysisManager(module)
        manager.get(keys.CALLGRAPH)
        retired = []
        manager.on_evict = lambda key, value: retired.append(key.name)
        old = module.replace_function(donor.get_function("fill"))
        manager.apply_function_edit(old, module.get_function("fill"))
        assert "callgraph" in retired

    def test_reseed_is_cheaper_than_cold_rebuild(self):
        module, donor = _compile_pair()
        manager, impact, _ = self._edit(module, donor, "fill")
        cold = AnalysisManager(compile_source(SRC_V2, "prog"))
        warm_gr = manager.get(keys.GLOBAL_RANGES)
        cold_gr = cold.get(keys.GLOBAL_RANGES)
        warm_andersen = manager.get(keys.ANDERSEN)
        cold_andersen = cold.get(keys.ANDERSEN)
        # Warm totals cover the original solve PLUS the refresh; the refresh
        # alone (total minus one cold-equivalent solve) must be strictly
        # cheaper than solving the edited module from scratch.
        gr_refresh = warm_gr.solver_statistics.steps - cold_gr.solver_statistics.steps
        assert 0 < gr_refresh < cold_gr.solver_statistics.steps
        andersen_refresh = (warm_andersen.solver_statistics.steps
                            - cold_andersen.solver_statistics.steps)
        assert 0 < andersen_refresh < cold_andersen.solver_statistics.steps
        assert impact.reseeded["andersen"] > 0

    def test_gr_state_matches_cold_rebuild(self):
        module, donor = _compile_pair()
        manager, _, _ = self._edit(module, donor, "fill")
        cold_module = compile_source(SRC_V2, "prog")
        cold = AnalysisManager(cold_module)
        warm_gr = manager.get(keys.GLOBAL_RANGES)
        cold_gr = cold.get(keys.GLOBAL_RANGES)
        for fn_name in ("fill", "scan", "main"):
            warm_fn = module.get_function(fn_name)
            cold_fn = cold_module.get_function(fn_name)
            for warm_v, cold_v in zip(warm_fn.pointer_values(),
                                      cold_fn.pointer_values()):
                assert repr(warm_gr.value_of(warm_v)) \
                    == repr(cold_gr.value_of(cold_v)), (fn_name, warm_v)

    def test_andersen_state_matches_cold_rebuild(self):
        module, donor = _compile_pair()
        manager, _, _ = self._edit(module, donor, "fill")
        cold_module = compile_source(SRC_V2, "prog")
        cold = AnalysisManager(cold_module)
        warm = manager.get(keys.ANDERSEN)
        cold_andersen = cold.get(keys.ANDERSEN)

        def shape(analysis, fn):
            out = []
            for value in fn.pointer_values():
                pts = analysis.points_to_set(value)
                out.append(sorted(str(obj) for obj in pts))
            return out

        for fn_name in ("fill", "scan", "main"):
            assert shape(warm, module.get_function(fn_name)) \
                == shape(cold_andersen, cold_module.get_function(fn_name)), fn_name

    def test_warm_results_match_cold_rebuild(self):
        module, donor = _compile_pair()
        manager, _, _ = self._edit(module, donor, "fill")
        cold_module = compile_source(SRC_V2, "prog")
        cold = AnalysisManager(cold_module)
        for key in (keys.RBAA, keys.BASIC, keys.ANDERSEN, keys.STEENSGAARD):
            warm_analysis = manager.get(key)
            cold_analysis = cold.get(key)
            for fn_name in ("fill", "scan", "main"):
                warm_fn = module.get_function(fn_name)
                cold_fn = cold_module.get_function(fn_name)
                import itertools
                warm_pairs = [(MemoryAccess.of(a), MemoryAccess.of(b))
                              for a, b in itertools.combinations(
                                  warm_fn.pointer_values(), 2)]
                cold_pairs = [(MemoryAccess.of(a), MemoryAccess.of(b))
                              for a, b in itertools.combinations(
                                  cold_fn.pointer_values(), 2)]
                assert len(warm_pairs) == len(cold_pairs)
                warm_answers = warm_analysis.query_many(warm_pairs)
                cold_answers = cold_analysis.query_many(cold_pairs)
                assert warm_answers == cold_answers, (key.name, fn_name)
