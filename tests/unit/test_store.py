"""The persistent content-addressed result store and the lazy warm path."""

import json
import os

from repro.benchgen import manifest, source_digest
from repro.service import AnalysisSession, ResultStore
from repro.service.store import RESULT_SCHEMA_VERSION

SRC = """
int main(int argc, char** argv) {
  char* a = (char*)malloc(8);
  char* b = a + 1;
  *a = 0;
  *b = 1;
  return 0;
}
"""


def _pointers(session, module="m"):
    values = session.values(module, "main")["values"]
    base = next(v["name"] for v in values if v["op"] == "malloc")
    offset = [v["name"] for v in values if v["op"] == "ptradd"][-1]
    return base, offset


def _entry_files(root):
    return sorted(os.path.join(directory, name)
                  for directory, _, names in os.walk(root)
                  for name in names if name.endswith(".json"))


class TestResultStore:
    def test_put_get_round_trip_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key = store.key("a" * 64, "pair", ["rbaa", "f", "x", "y", 1, 1])
        assert store.get(key) is None
        assert store.misses == 1
        store.put(key, "no-alias")
        assert store.get(key) == "no-alias"
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)
        store.note_bypass()
        stats = store.stats()
        assert stats["bypasses"] == 1
        assert stats["namespace"] == [RESULT_SCHEMA_VERSION,
                                      stats["namespace"][1],
                                      manifest.GENERATOR_VERSION]

    def test_keys_separate_kinds_sources_and_parts(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        keys = {store.key("a" * 64, "load"),
                store.key("b" * 64, "load"),
                store.key("a" * 64, "values", ["main"]),
                store.key("a" * 64, "values", ["other"])}
        assert len(keys) == 4

    def test_corrupt_entry_is_counted_deleted_and_bypassed(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key = store.key("a" * 64, "load")
        store.put(key, {"functions": ["main"]})
        [path] = _entry_files(store.root)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ truncated")
        assert store.get(key) is None
        assert store.corrupt_entries == 1
        assert not os.path.exists(path)
        # The next lookup is an ordinary miss; a recompute re-stores it.
        assert store.get(key) is None
        assert store.corrupt_entries == 1

    def test_foreign_key_entry_is_treated_as_corrupt(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        key = store.key("a" * 64, "load")
        path = store._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # A well-formed entry filed under the wrong address (e.g. a renamed
        # file) must not be served as if it answered this key.
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": RESULT_SCHEMA_VERSION, "key": "f" * 64,
                       "value": "stale"}, handle)
        assert store.get(key) is None
        assert store.corrupt_entries == 1

    def test_generator_version_bump_invalidates_every_key(self, tmp_path,
                                                          monkeypatch):
        store = ResultStore(str(tmp_path / "store"))
        digest = "a" * 64
        old_key = store.key(digest, "load")
        store.put(old_key, {"functions": ["main"]})
        monkeypatch.setattr(manifest, "GENERATOR_VERSION",
                            manifest.GENERATOR_VERSION + 1)
        # The namespace is read at call time: the same logical request now
        # addresses a different key, so the old entry is silently unreachable.
        new_key = store.key(digest, "load")
        assert new_key != old_key
        assert store.get(new_key) is None
        assert store.get(old_key) == {"functions": ["main"]}  # still intact


class TestStoreBackedSession:
    def test_warm_session_answers_without_materializing(self, tmp_path):
        root = str(tmp_path / "store")
        cold = AnalysisSession(store=ResultStore(root))
        cold.load_source("m", SRC)
        base, offset = _pointers(cold)
        cold_answers = [
            cold.query("m", "rbaa", "main", base, offset),
            cold.query("m", "rbaa", "main", base, offset,
                       size_a=None, size_b=None),
            cold.query_function("m", "rbaa", "main"),
            cold.values("m", "main"),
        ]
        assert cold.stats("m")["materialized"] is True

        warm = AnalysisSession(store=ResultStore(root))
        warm.load_source("m", SRC)
        warm_answers = [
            warm.query("m", "rbaa", "main", base, offset),
            warm.query("m", "rbaa", "main", base, offset,
                       size_a=None, size_b=None),
            warm.query_function("m", "rbaa", "main"),
            warm.values("m", "main"),
        ]
        assert warm_answers == cold_answers
        record = warm.stats("m")
        # The whole conversation was served from the store: the module was
        # never compiled and the solver never ran — the restart gate.
        assert record["materialized"] is False
        assert record["solver_steps"] == 0
        assert warm.store.misses == 0
        assert warm.store.hits >= 5  # load + 3 pairs + sweep + values

    def test_pair_keys_are_batch_shape_independent(self, tmp_path):
        root = str(tmp_path / "store")
        cold = AnalysisSession(store=ResultStore(root))
        cold.load_source("m", SRC)
        base, offset = _pointers(cold)
        # Stored one-by-one...
        one = cold.query("m", "rbaa", "main", base, offset)
        # ...and re-asked inside a batch: the warm session must hit on both
        # pairs even though the cold traffic never issued this exact batch.
        warm = AnalysisSession(store=ResultStore(root))
        warm.load_source("m", SRC)
        batch = warm.query_many("m", "rbaa", "main",
                                [[base, offset],
                                 [base, offset, "default", "default"]])
        assert batch["results"] == [one["result"], one["result"]]
        assert warm.stats("m")["materialized"] is False
        assert warm.store.misses == 0

    def test_corrupt_store_recomputes_identical_answers(self, tmp_path):
        root = str(tmp_path / "store")
        cold = AnalysisSession(store=ResultStore(root))
        cold.load_source("m", SRC)
        base, offset = _pointers(cold)
        expected = cold.query("m", "rbaa", "main", base, offset)
        for path in _entry_files(root):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("not json at all")
        rebuilt = AnalysisSession(store=ResultStore(root))
        rebuilt.load_source("m", SRC)
        assert rebuilt.query("m", "rbaa", "main", base, offset) == expected
        assert rebuilt.store.corrupt_entries >= 2  # load + the pair
        assert rebuilt.stats("m")["materialized"] is True
        # The recompute re-populated the store: a third session is warm.
        warm = AnalysisSession(store=ResultStore(root))
        warm.load_source("m", SRC)
        assert warm.query("m", "rbaa", "main", base, offset) == expected
        assert warm.stats("m")["materialized"] is False

    def test_store_results_match_storeless_session(self, tmp_path):
        plain = AnalysisSession()
        plain.load_source("m", SRC)
        base, offset = _pointers(plain)
        stored = AnalysisSession(store=ResultStore(str(tmp_path / "store")))
        stored.load_source("m", SRC)
        for session in (plain, stored):
            assert session.query("m", "rbaa", "main", base, offset) == \
                plain.query("m", "rbaa", "main", base, offset)
        assert stored.range_of("m", "main", "argc") == \
            plain.range_of("m", "main", "argc")

    def test_load_digest_tracks_source(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        session = AnalysisSession(store=store)
        session.load_source("m", SRC)
        edited = SRC.replace("a + 1", "a + 2")
        # A different source addresses different keys: no false warm hits.
        assert store.key(source_digest(SRC), "load") != \
            store.key(source_digest(edited), "load")
        other = AnalysisSession(store=ResultStore(store.root))
        other.load_source("m", edited)
        assert other.stats("m")["materialized"] is True
