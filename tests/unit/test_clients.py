"""The client analyses: bounds verdicts, loop verdicts, service surface."""

import pytest

from repro.clients import (
    DEFINITELY_OOB,
    MAYBE_OOB,
    SAFE,
    BoundsCheckAnalysis,
    LoopParallelismAnalysis,
)
from repro.engine import keys
from repro.engine.manager import AnalysisManager
from repro.frontend import compile_source
from repro.service import AnalysisSession, ResultStore, handle_request

CONST_EXTENTS = """
int main(int argc, char** argv) {
  int* p = (int*)malloc(8);
  p[0] = 1;
  p[1] = 2;
  p[4] = 3;
  free(p);
  return 0;
}
"""

OFF_BY_ONE = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* buf = (int*)malloc(n * 4);
  int i;
  for (i = 0; i < n; i++) {
    buf[i] = i;
  }
  buf[n] = 7;
  free(buf);
  return 0;
}
"""

WALK_THEN_SUM = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* p = (int*)malloc(n * 4);
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {
    p[i] = i;
  }
  for (i = 0; i < n; i++) {
    acc = acc + p[i];
  }
  free(p);
  return acc;
}
"""

SHIFT = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* a = (int*)malloc(n * 4 + 4);
  int i;
  for (i = 0; i < n; i++) {
    a[i] = i;
  }
  a[n] = 0;
  for (i = 0; i < n; i++) {
    a[i] = a[i + 1];
  }
  free(a);
  return 0;
}
"""

FREEING_LOOP = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int i;
  for (i = 0; i < n; i++) {
    int* p = (int*)malloc(4);
    p[0] = i;
    free(p);
  }
  return 0;
}
"""

MIXED_WIDTH_OVERLAP = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* buf = (char*)malloc(n * 8 + 16);
  int i;
  for (i = 0; i < n * 8; i = i + 8) {
    *(int*)(buf + i) = 7;
    buf[i + 10] = 1;
  }
  free(buf);
  return 0;
}
"""

MIXED_WIDTH_DISJOINT = MIXED_WIDTH_OVERLAP.replace(
    "buf[i + 10] = 1;", "buf[i + 4] = 1;")

LOOP_CARRIED_MALLOC = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* prev = (int*)malloc(4);
  int i;
  prev[0] = 7;
  for (i = 0; i < n; i++) {
    int* fresh = (int*)malloc(4);
    fresh[0] = i + prev[0];
    prev = fresh;
  }
  return 0;
}
"""

SRC_TWO_FUNCTIONS = """
void fill(char* buf, int n) {
  int i;
  for (i = 0; i < n; i++) { buf[i] = 1; }
}
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* bytes = (char*)malloc(n);
  fill(bytes, n);
  free(bytes);
  return 0;
}
"""

SRC_TWO_FUNCTIONS_EDITED = SRC_TWO_FUNCTIONS.replace(
    "buf[i] = 1;", "buf[i] = 7; buf[i + 2] = 9;")


def detector_for(source, name="m"):
    module = compile_source(source, name)
    return BoundsCheckAnalysis(module, manager=AnalysisManager(module))


def checker_for(source, name="m"):
    module = compile_source(source, name)
    return LoopParallelismAnalysis(module, manager=AnalysisManager(module))


def main_report(analysis):
    module = analysis.module
    return analysis.function_report(module.get_function("main"))


class TestBoundsVerdicts:
    def test_constant_extents_classify_exactly(self):
        report = main_report(detector_for(CONST_EXTENTS))
        stores = [a for a in report["accesses"] if a["opcode"] == "store"]
        assert [a["classification"] for a in stores] == [
            SAFE, SAFE, DEFINITELY_OOB]
        assert report["summary"]["definitely_oob"] == 1

    def test_symbolic_extent_proves_loop_body_safe(self):
        report = main_report(detector_for(OFF_BY_ONE))
        stores = [a for a in report["accesses"] if a["opcode"] == "store"]
        # The in-loop buf[i] store is proven safe against the symbolic
        # malloc extent; the trailing buf[n] store is pinned out of it.
        assert SAFE in {a["classification"] for a in stores}
        assert [a for a in stores
                if a["classification"] == DEFINITELY_OOB], stores
        assert report["summary"]["definitely_oob"] == 1

    def test_unprovable_access_stays_maybe(self):
        # argv has no visible extent: indexing it can never be proven.
        report = main_report(detector_for(OFF_BY_ONE))
        loads = [a for a in report["accesses"] if a["opcode"] == "load"]
        assert MAYBE_OOB in {a["classification"] for a in loads}

    def test_module_report_sums_function_summaries(self):
        detector = detector_for(SRC_TWO_FUNCTIONS)
        module = detector.module_report()
        names = [f["function"] for f in module["functions"]]
        assert names == sorted(names)
        per_function = sum(f["summary"]["safe"] for f in module["functions"])
        assert module["summary"]["safe"] == per_function
        only_fill = detector.module_report("fill")
        assert [f["function"] for f in only_fill["functions"]] == ["fill"]


class TestLoopVerdicts:
    def test_disjoint_walk_and_readonly_sum_are_parallel(self):
        report = main_report(checker_for(WALK_THEN_SUM))
        assert report["summary"] == {"loops": 2, "parallel": 2}

    def test_overlapping_shift_is_dependent(self):
        report = main_report(checker_for(SHIFT))
        assert report["summary"]["loops"] == 2
        assert report["summary"]["parallel"] == 1
        reasons = {loop["reason"] for loop in report["loops"]
                   if not loop["parallel"]}
        assert any(reason.startswith("dependent") for reason in reasons)

    def test_mixed_width_lockstep_overlap_is_dependent(self):
        # Regression: the lockstep-stride rule once swapped the access
        # widths (testing wa <= d mod s <= s - wb instead of
        # wb <= d mod s <= s - wa), declaring a 1-byte store at
        # base+10+8i independent of a 4-byte store at base+8j although
        # adjacent iterations overlap on byte 8j+2.
        report = main_report(checker_for(MIXED_WIDTH_OVERLAP))
        (loop,) = report["loops"]
        assert loop["parallel"] is False
        assert loop["reason"].startswith("dependent")

    def test_mixed_width_lockstep_disjoint_is_parallel(self):
        # The residue 4 with widths (4, 1) and stride 8 is genuinely
        # unreachable by any iteration pair: precision must survive the
        # soundness fix.
        report = main_report(checker_for(MIXED_WIDTH_DISJOINT))
        (loop,) = report["loops"]
        assert loop["parallel"] is True

    def test_loop_carried_malloc_pointer_is_dependent(self):
        # Regression: a shared in-loop allocation site is not enough for
        # independence — the loop-carried phi reaches the *previous*
        # iteration's malloc'd object, so iteration i's store and
        # iteration i+1's load touch the same concrete object.
        report = main_report(checker_for(LOOP_CARRIED_MALLOC))
        (loop,) = report["loops"]
        assert loop["parallel"] is False
        assert loop["reason"].startswith("dependent")

    def test_freeing_loop_is_never_parallel(self):
        report = main_report(checker_for(FREEING_LOOP))
        assert report["summary"]["loops"] == 1
        (loop,) = report["loops"]
        assert loop["parallel"] is False
        assert loop["reason"] == "frees-memory"


class TestServiceOps:
    def test_check_bounds_and_parallel_loops_shapes(self):
        session = AnalysisSession()
        session.load_source("m", OFF_BY_ONE)
        bounds = session.check_bounds("m")
        assert bounds["module"] == "m" and bounds["function"] is None
        assert bounds["summary"]["definitely_oob"] == 1
        loops = session.parallel_loops("m", "main")
        assert loops["function"] == "main"
        assert loops["summary"]["loops"] == 1
        assert loops["summary"]["parallel"] == 1

    def test_function_scoped_report_matches_module_slice(self):
        session = AnalysisSession()
        session.load_source("m", SRC_TWO_FUNCTIONS)
        whole = session.check_bounds("m")
        scoped = session.check_bounds("m", "fill")
        slice_ = [f for f in whole["functions"] if f["function"] == "fill"]
        assert scoped["functions"] == slice_

    def test_unknown_function_is_a_structured_error(self):
        session = AnalysisSession()
        session.load_source("m", CONST_EXTENTS)
        for op in ("check_bounds", "parallel_loops"):
            envelope = handle_request(session, {
                "op": op, "v": 1, "module": "m", "function": "nope"})
            assert envelope["ok"] is False
            assert envelope["error_code"] == "unknown_function"

    def test_handle_request_round_trip(self):
        session = AnalysisSession()
        handle_request(session, {"op": "load", "v": 1, "name": "m",
                                 "source": SHIFT})
        bounds = handle_request(session, {"op": "check_bounds", "v": 1,
                                          "module": "m"})
        assert bounds["ok"] is True
        assert bounds["summary"]["accesses"] > 0
        loops = handle_request(session, {"op": "parallel_loops", "v": 1,
                                         "module": "m", "function": "main"})
        assert loops["ok"] is True
        assert loops["summary"]["loops"] == 2

    def test_warm_store_serves_without_materializing(self, tmp_path):
        root = str(tmp_path / "store")
        cold = AnalysisSession(store=ResultStore(root))
        cold.load_source("m", SHIFT)
        cold_answers = [cold.check_bounds("m"), cold.parallel_loops("m"),
                        cold.check_bounds("m", "main")]
        assert cold.stats("m")["materialized"] is True

        warm = AnalysisSession(store=ResultStore(root))
        warm.load_source("m", SHIFT)
        warm_answers = [warm.check_bounds("m"), warm.parallel_loops("m"),
                        warm.check_bounds("m", "main")]
        assert warm_answers == cold_answers
        record = warm.stats("m")
        assert record["materialized"] is False
        assert record["solver_steps"] == 0
        assert warm.store.misses == 0

    def test_post_edit_reports_match_cold_recompute(self):
        edited = AnalysisSession()
        edited.load_source("m", SRC_TWO_FUNCTIONS)
        edited.check_bounds("m")
        edited.parallel_loops("m")
        changed = edited.edit_source("m", SRC_TWO_FUNCTIONS_EDITED)
        assert changed["changed"] == ["fill"]

        cold = AnalysisSession()
        cold.load_source("m", SRC_TWO_FUNCTIONS_EDITED)
        assert edited.check_bounds("m") == cold.check_bounds("m")
        assert edited.parallel_loops("m") == cold.parallel_loops("m")


class TestRefreshHooks:
    def test_reports_are_function_cached(self):
        detector = detector_for(SRC_TWO_FUNCTIONS)
        function = detector.module.get_function("fill")
        first = detector.function_report(function)
        assert detector.function_report(function) is first

    def test_bounds_and_parallel_keys_are_function_scoped(self):
        assert keys.BOUNDS.scope == keys.SCOPE_FUNCTION
        assert keys.PARALLEL.scope == keys.SCOPE_FUNCTION
