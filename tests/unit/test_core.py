"""Unit tests for the paper's core: locations, MemLocs domain, GR, LR, queries."""


from repro.core import (
    BOTTOM,
    DisambiguationReason,
    GlobalAnalysisOptions,
    GlobalRangeAnalysis,
    LocalRangeAnalysis,
    LocationKind,
    LocationTable,
    PointerAbstractValue,
    RBAAAliasAnalysis,
    RBAAOptions,
    TOP,
    global_test,
    local_test,
)
from repro.core.locations import MemoryLocation
from repro.frontend import compile_source
from repro.ir.instructions import LoadInst, MallocInst, PhiInst, PtrAddInst, StoreInst
from repro.symbolic import SymbolicInterval, sym

N = sym("N")


def make_location(index, kind=LocationKind.HEAP):
    return MemoryLocation(index, kind, f"loc{index}")


class TestLocationTable:
    def test_discovers_allocation_sites_and_globals(self):
        module = compile_source("""
        int table[16];
        void f(int n) { char* p = (char*)malloc(n); int buf[4]; buf[0] = *p; }
        """)
        locations = LocationTable(module)
        kinds = [location.kind for location in locations.all_locations()]
        assert LocationKind.GLOBAL in kinds
        assert LocationKind.HEAP in kinds
        assert LocationKind.STACK in kinds
        assert len(locations.allocation_sites()) == len(locations)

    def test_location_for_site(self):
        module = compile_source("void f(int n) { char* p = (char*)malloc(n); }")
        locations = LocationTable(module)
        malloc = next(i for i in module.get_function("f").instructions()
                      if isinstance(i, MallocInst))
        location = locations.location_for_site(malloc)
        assert location is not None and location.kind is LocationKind.HEAP

    def test_parameter_and_unknown_locations_are_cached(self):
        module = compile_source("void f(char* p) { *p = 0; }")
        locations = LocationTable(module)
        argument = module.get_function("f").args[0]
        first = locations.ensure_parameter_location(argument)
        second = locations.ensure_parameter_location(argument)
        assert first is second and first.kind is LocationKind.PARAMETER

    def test_synthetic_locations_are_always_fresh(self):
        module = compile_source("void f() { }")
        locations = LocationTable(module)
        assert locations.new_synthetic_location("a") != locations.new_synthetic_location("a")

    def test_concrete_object_classification(self):
        assert make_location(0, LocationKind.HEAP).is_concrete_object()
        assert make_location(1, LocationKind.GLOBAL).is_concrete_object()
        assert not make_location(2, LocationKind.PARAMETER).is_concrete_object()
        assert not make_location(3, LocationKind.UNKNOWN).is_concrete_object()


class TestPointerAbstractValue:
    def test_bottom_and_top(self):
        assert BOTTOM.is_bottom and not BOTTOM.is_top
        assert TOP.is_top and not TOP.is_bottom
        assert BOTTOM.support() == ()

    def test_join_merges_supports(self):
        loc_a, loc_b = make_location(0), make_location(1)
        left = PointerAbstractValue({loc_a: SymbolicInterval(0, 3)})
        right = PointerAbstractValue({loc_b: SymbolicInterval(1, 2)})
        joined = left.join(right)
        assert set(joined.support()) == {loc_a, loc_b}

    def test_join_on_common_location_joins_intervals(self):
        loc = make_location(0)
        left = PointerAbstractValue({loc: SymbolicInterval(0, 3)})
        right = PointerAbstractValue({loc: SymbolicInterval(5, 9)})
        assert left.join(right).range_for(loc) == SymbolicInterval(0, 9)

    def test_join_with_bottom_and_top(self):
        loc = make_location(0)
        value = PointerAbstractValue({loc: SymbolicInterval(0, 3)})
        assert value.join(BOTTOM) == value
        assert value.join(TOP).is_top

    def test_widen_per_location(self):
        loc = make_location(0)
        old = PointerAbstractValue({loc: SymbolicInterval(0, 1)})
        new = PointerAbstractValue({loc: SymbolicInterval(0, 5)})
        widened = old.widen(new)
        assert widened.range_for(loc).upper.is_infinite()

    def test_narrow_recovers_finite_bounds(self):
        loc = make_location(0)
        from repro.symbolic import POS_INF
        widened = PointerAbstractValue({loc: SymbolicInterval(0, POS_INF)})
        recomputed = PointerAbstractValue({loc: SymbolicInterval(0, N - 1)})
        assert widened.narrow(recomputed).range_for(loc) == SymbolicInterval(0, N - 1)

    def test_shift_moves_every_interval(self):
        loc_a, loc_b = make_location(0), make_location(1)
        value = PointerAbstractValue({loc_a: SymbolicInterval(0, 1),
                                      loc_b: SymbolicInterval(2, 3)})
        shifted = value.shift(SymbolicInterval.point(4))
        assert shifted.range_for(loc_a) == SymbolicInterval(4, 5)
        assert shifted.range_for(loc_b) == SymbolicInterval(6, 7)

    def test_meet_ranges_keeps_only_shared_locations(self):
        loc_a, loc_b = make_location(0), make_location(1)
        value = PointerAbstractValue({loc_a: SymbolicInterval(0, 10),
                                      loc_b: SymbolicInterval(0, 10)})
        bound = PointerAbstractValue({loc_a: SymbolicInterval(0, 4)})
        constrained = value.meet_ranges(bound, use_upper=True, adjust=-1)
        assert constrained.range_for(loc_a) == SymbolicInterval(0, 3)
        assert constrained.range_for(loc_b) is None

    def test_includes_is_pointwise(self):
        loc = make_location(0)
        big = PointerAbstractValue({loc: SymbolicInterval(0, 10)})
        small = PointerAbstractValue({loc: SymbolicInterval(2, 5)})
        assert big.includes(small)
        assert not small.includes(big)
        assert TOP.includes(big) and big.includes(BOTTOM)

    def test_symbolic_classification(self):
        loc = make_location(0)
        symbolic = PointerAbstractValue({loc: SymbolicInterval(0, N)})
        numeric = PointerAbstractValue({loc: SymbolicInterval(0, 8)})
        assert symbolic.has_symbolic_range()
        assert not numeric.has_symbolic_range()
        assert numeric.has_only_constant_ranges()
        assert not TOP.has_only_constant_ranges()


class TestQueries:
    def test_global_test_disjoint_ranges_on_shared_location(self):
        loc = make_location(0)
        a = PointerAbstractValue({loc: SymbolicInterval(0, N - 1)})
        b = PointerAbstractValue({loc: SymbolicInterval(N, N + 4)})
        outcome = global_test(a, b)
        assert outcome.no_alias
        assert outcome.reason is DisambiguationReason.GLOBAL_DISJOINT_RANGES

    def test_global_test_overlapping_ranges(self):
        loc = make_location(0)
        a = PointerAbstractValue({loc: SymbolicInterval(0, N)})
        b = PointerAbstractValue({loc: SymbolicInterval(N, N + 4)})
        assert not global_test(a, b).no_alias

    def test_global_test_distinct_concrete_objects(self):
        a = PointerAbstractValue({make_location(0): SymbolicInterval(0, 100)})
        b = PointerAbstractValue({make_location(1): SymbolicInterval(0, 100)})
        outcome = global_test(a, b)
        assert outcome.no_alias
        assert outcome.reason is DisambiguationReason.GLOBAL_DISTINCT_OBJECTS

    def test_global_test_parameter_objects_are_not_distinct(self):
        a = PointerAbstractValue({make_location(0, LocationKind.PARAMETER):
                                  SymbolicInterval(0, 1)})
        b = PointerAbstractValue({make_location(1): SymbolicInterval(0, 1)})
        assert not global_test(a, b).no_alias

    def test_global_test_accounts_for_access_size(self):
        loc = make_location(0)
        a = PointerAbstractValue({loc: SymbolicInterval(0, 0)})
        b = PointerAbstractValue({loc: SymbolicInterval(2, 2)})
        assert global_test(a, b, size_a=1, size_b=1).no_alias
        assert not global_test(a, b, size_a=4, size_b=4).no_alias

    def test_global_test_top_is_may_alias(self):
        loc = make_location(0)
        value = PointerAbstractValue({loc: SymbolicInterval(0, 1)})
        assert not global_test(TOP, value).no_alias
        assert not global_test(value, TOP).no_alias

    def test_local_test_same_base_disjoint_offsets(self):
        from repro.core import LocalAbstractValue
        base = make_location(9, LocationKind.SYNTHETIC)
        a = LocalAbstractValue(base, SymbolicInterval.point(0))
        b = LocalAbstractValue(base, SymbolicInterval.point(4))
        assert local_test(a, b, 4, 4).no_alias
        assert not local_test(a, b, 8, 4).no_alias

    def test_local_test_different_bases_is_may_alias(self):
        from repro.core import LocalAbstractValue
        a = LocalAbstractValue(make_location(1, LocationKind.SYNTHETIC),
                               SymbolicInterval.point(0))
        b = LocalAbstractValue(make_location(2, LocationKind.SYNTHETIC),
                               SymbolicInterval.point(100))
        assert not local_test(a, b).no_alias
        assert not local_test(None, b).no_alias


class TestGlobalRangeAnalysis:
    def test_malloc_result_points_at_its_site_with_zero_offset(self):
        module = compile_source("void f(int n) { char* p = (char*)malloc(n); *p = 0; }")
        analysis = GlobalRangeAnalysis(module)
        malloc = next(i for i in module.get_function("f").instructions()
                      if isinstance(i, MallocInst))
        state = analysis.value_of(malloc)
        assert len(state.support()) == 1
        interval = state.range_for(state.support()[0])
        assert interval == SymbolicInterval(0, 0)

    def test_pointer_plus_symbolic_scalar(self):
        module = compile_source("""
        void f(int n) { char* p = (char*)malloc(n); char* q = p + n; *q = 0; }
        """)
        analysis = GlobalRangeAnalysis(module)
        fn = module.get_function("f")
        adds = [i for i in fn.instructions() if isinstance(i, PtrAddInst)]
        state = analysis.value_of(adds[0])
        interval = state.range_for(state.support()[0])
        assert interval.lower == interval.upper
        assert interval.lower.symbols()  # symbolic, mentions n

    def test_loaded_pointer_is_top(self):
        module = compile_source("void f(char** pp) { char* p = *pp; *p = 0; }")
        analysis = GlobalRangeAnalysis(module)
        load = next(i for i in module.get_function("f").instructions()
                    if isinstance(i, LoadInst) and i.type.is_pointer())
        assert analysis.value_of(load).is_top

    def test_freed_pointer_is_bottom(self):
        module = compile_source("void f(int n) { char* p = (char*)malloc(n); free(p); }")
        analysis = GlobalRangeAnalysis(module)
        freed = next(i for i in module.get_function("f").instructions()
                     if i.opcode == "free")
        assert analysis.value_of(freed).is_bottom

    def test_interprocedural_binding_of_actuals_to_formals(self):
        module = compile_source("""
        void callee(char* q) { *q = 0; }
        void caller(int n) { char* p = (char*)malloc(n); callee(p + 2); }
        """)
        analysis = GlobalRangeAnalysis(module)
        callee = module.get_function("callee")
        state = analysis.value_of(callee.args[0])
        assert len(state.support()) == 1
        assert state.support()[0].kind is LocationKind.HEAP
        assert state.range_for(state.support()[0]) == SymbolicInterval(2, 2)

    def test_externally_visible_parameter_gets_pseudo_location(self):
        module = compile_source("void api(char* p) { *p = 0; }")
        analysis = GlobalRangeAnalysis(module)
        parameter = module.get_function("api").args[0]
        state = analysis.value_of(parameter)
        assert any(location.kind is LocationKind.PARAMETER for location in state.support())

    def test_intraprocedural_option_skips_binding(self):
        module = compile_source("""
        void callee(char* q) { *q = 0; }
        void caller(int n) { char* p = (char*)malloc(n); callee(p); }
        """)
        analysis = GlobalRangeAnalysis(
            module, options=GlobalAnalysisOptions(interprocedural=False))
        callee = module.get_function("callee")
        state = analysis.value_of(callee.args[0])
        assert all(location.kind is LocationKind.PARAMETER for location in state.support())

    def test_phi_joins_and_widening_terminates(self):
        module = compile_source("""
        void f(char* base, int n) {
          char* p = base;
          int i;
          for (i = 0; i < n; i++) { *p = 0; p = p + 1; }
        }
        """)
        analysis = GlobalRangeAnalysis(module)
        assert analysis.statistics.ascending_passes <= 6

    def test_trace_is_recorded_when_requested(self):
        module = compile_source("void f(int n) { char* p = (char*)malloc(n); *p = 0; }")
        analysis = GlobalRangeAnalysis(module, options=GlobalAnalysisOptions(track_trace=True))
        labels = [label for label, _ in analysis.trace()]
        assert "starting state" in labels
        assert "after widening" in labels
        assert any(label.startswith("descending") for label in labels)

    def test_unknown_external_pointer_gets_unknown_location(self):
        module = compile_source("""
        char* getenv(char* name);
        void f() { char* home = getenv("HOME"); *home = 0; }
        """)
        analysis = GlobalRangeAnalysis(module)
        call = next(i for i in module.get_function("f").instructions()
                    if i.opcode == "call" and i.type.is_pointer())
        state = analysis.value_of(call)
        assert state.support() and state.support()[0].kind is LocationKind.UNKNOWN


class TestLocalRangeAnalysis:
    def test_phi_defines_a_fresh_location(self):
        module = compile_source("""
        void f(char* base, int n) {
          char* p = base;
          int i;
          for (i = 0; i < n; i++) { *p = 0; p = p + 1; }
        }
        """)
        analysis = LocalRangeAnalysis(module)
        phi = next(i for i in module.get_function("f").instructions()
                   if isinstance(i, PhiInst) and i.type.is_pointer())
        state = analysis.value_of(phi)
        assert state.location.kind is LocationKind.SYNTHETIC
        assert state.interval == SymbolicInterval(0, 0)

    def test_constant_offsets_accumulate_from_the_same_base(self):
        module = compile_source("""
        void f(char* p) { *(p + 4) = 1; *(p + 8) = 2; }
        """)
        analysis = LocalRangeAnalysis(module)
        stores = [i for i in module.get_function("f").instructions()
                  if isinstance(i, StoreInst)]
        first = analysis.value_of(stores[0].pointer)
        second = analysis.value_of(stores[1].pointer)
        assert first.location is second.location
        assert first.interval == SymbolicInterval(4, 4)
        assert second.interval == SymbolicInterval(8, 8)

    def test_varying_index_shares_a_base_per_root_index(self):
        module = compile_source("""
        void f(int* a, int i) { a[i] = 0; a[i + 1] = 1; }
        """)
        analysis = LocalRangeAnalysis(module)
        stores = [inst for inst in module.get_function("f").instructions()
                  if isinstance(inst, StoreInst)]
        first = analysis.value_of(stores[0].pointer)
        second = analysis.value_of(stores[1].pointer)
        assert first.location is second.location
        assert second.interval == SymbolicInterval(4, 4)

    def test_loads_define_fresh_locations(self):
        module = compile_source("void f(char** pp) { char* p = *pp; *p = 0; }")
        analysis = LocalRangeAnalysis(module)
        load = next(i for i in module.get_function("f").instructions()
                    if isinstance(i, LoadInst) and i.type.is_pointer())
        assert analysis.value_of(load).location.kind is LocationKind.SYNTHETIC

    def test_non_pointer_values_have_no_state(self):
        module = compile_source("int f(int a) { return a + 1; }")
        analysis = LocalRangeAnalysis(module)
        assert analysis.value_of(module.get_function("f").args[0]) is None


class TestRBAA:
    def test_same_pointer_must_alias(self):
        module = compile_source("void f(char* p) { *p = 0; }")
        rbaa = RBAAAliasAnalysis(module)
        p = module.get_function("f").args[0]
        assert str(rbaa.alias_pointers(p, p)) == "must-alias"

    def test_statistics_distinguish_global_local_and_objects(self):
        module = compile_source("""
        void f(int n) {
          char* a = (char*)malloc(n);
          char* b = (char*)malloc(n);
          char* lo = a;
          char* hi = a + n;
          a[0] = 0;
          b[0] = 0;
        }
        """)
        rbaa = RBAAAliasAnalysis(module)
        fn = module.get_function("f")
        pointers = fn.pointer_values()
        for i in range(len(pointers)):
            for j in range(i + 1, len(pointers)):
                rbaa.alias_pointers(pointers[i], pointers[j])
        stats = rbaa.statistics
        assert stats.queries > 0
        assert stats.no_alias > 0
        assert stats.answered_by_distinct_objects > 0
        assert stats.no_alias >= (stats.answered_by_global + stats.answered_by_local
                                  + stats.answered_by_distinct_objects)

    def test_disabling_tests_reduces_precision(self):
        source = """
        void accelerate(float* p, float x, float y, int n) {
          int i = 0;
          while (i < n) { p[i] += x; p[i + 1] += y; i += 2; }
        }
        """
        module_full = compile_source(source)
        module_global = compile_source(source)
        full = RBAAAliasAnalysis(module_full)
        global_only = RBAAAliasAnalysis(module_global, RBAAOptions(enable_local_test=False))

        def count(analysis, module):
            fn = module.get_function("accelerate")
            pointers = fn.pointer_values()
            return sum(analysis.no_alias(pointers[i], pointers[j])
                       for i in range(len(pointers)) for j in range(i + 1, len(pointers)))

        assert count(full, module_full) > count(global_only, module_global)
