"""Unit tests for the IR: types, values, instructions, builder, printer, verifier."""

import pytest

from repro.ir import (
    ArrayType,
    BOOL,
    ConstantInt,
    DOUBLE,
    FLOAT,
    FunctionType,
    GlobalVariable,
    INT32,
    INT64,
    INT8,
    IRBuilder,
    IntType,
    Module,
    NullPointer,
    StructType,
    UndefValue,
    VOID,
    pointer_to,
    print_function,
    print_instruction,
    print_module,
    verify_function,
    verify_module,
)
from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    ICmpInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SigmaInst,
    StoreInst,
)
from repro.ir.verifier import IRVerificationFailure


class TestTypes:
    def test_integer_sizes(self):
        assert INT8.size_in_bytes() == 1
        assert INT32.size_in_bytes() == 4
        assert INT64.size_in_bytes() == 8
        assert BOOL.size_in_bytes() == 1

    def test_float_sizes(self):
        assert FLOAT.size_in_bytes() == 4
        assert DOUBLE.size_in_bytes() == 8

    def test_pointer_size_is_fixed(self):
        assert pointer_to(INT8).size_in_bytes() == 8
        assert pointer_to(ArrayType(INT32, 100)).size_in_bytes() == 8

    def test_array_size(self):
        assert ArrayType(INT32, 10).size_in_bytes() == 40
        assert ArrayType(INT8, 0).size_in_bytes() == 0

    def test_struct_layout(self):
        struct = StructType("pair", [("x", INT32), ("y", INT32), ("tag", INT8)])
        assert struct.size_in_bytes() == 9
        assert struct.field_offset("x") == 0
        assert struct.field_offset("y") == 4
        assert struct.field_offset("tag") == 8
        assert struct.field_index("y") == 1
        assert struct.field_type("tag") == INT8
        assert struct.field_offset_by_index(2) == 8

    def test_struct_unknown_field(self):
        struct = StructType("pair", [("x", INT32)])
        with pytest.raises(KeyError):
            struct.field_offset("z")

    def test_type_equality_and_hash(self):
        assert IntType(32) == INT32
        assert hash(pointer_to(INT8)) == hash(pointer_to(INT8))
        assert pointer_to(INT8) != pointer_to(INT32)
        assert FunctionType(VOID, [INT32]) == FunctionType(VOID, [INT32])
        assert FunctionType(VOID, [INT32]) != FunctionType(VOID, [INT32], is_vararg=True)

    def test_predicates(self):
        assert INT32.is_integer() and not INT32.is_pointer()
        assert pointer_to(INT8).is_pointer()
        assert ArrayType(INT8, 4).is_aggregate()
        assert StructType("s", []).is_aggregate()

    def test_invalid_types_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            ArrayType(INT8, -1)


@pytest.fixture
def simple_function():
    module = Module("test")
    fn = module.create_function("f", FunctionType(INT32, [INT32, pointer_to(INT8)]), ["n", "p"])
    return module, fn


class TestUseDefAndValues:
    def test_use_lists_track_operands(self, simple_function):
        module, fn = simple_function
        block = fn.append_block("entry")
        builder = IRBuilder(block)
        n, p = fn.args
        doubled = builder.add(n, n)
        assert len(n.uses) == 2
        assert doubled in n.users()

    def test_replace_all_uses_with(self, simple_function):
        module, fn = simple_function
        block = fn.append_block("entry")
        builder = IRBuilder(block)
        n, p = fn.args
        a = builder.add(n, ConstantInt(1))
        b = builder.mul(a, ConstantInt(2))
        replacement = ConstantInt(42)
        a.replace_all_uses_with(replacement)
        assert b.lhs is replacement
        assert not a.uses

    def test_erase_from_parent_drops_uses(self, simple_function):
        module, fn = simple_function
        block = fn.append_block("entry")
        builder = IRBuilder(block)
        n, _ = fn.args
        a = builder.add(n, ConstantInt(1))
        uses_before = len(n.uses)
        a.erase_from_parent()
        assert len(n.uses) == uses_before - 1
        assert a.parent is None
        assert a not in block.instructions

    def test_constants_render_without_percent(self):
        assert ConstantInt(7).short_name() == "7"
        assert NullPointer(pointer_to(INT8)).short_name() == "null"
        assert UndefValue(INT32).short_name() == "undef"

    def test_global_variable_is_pointer_valued(self):
        g = GlobalVariable("table", ArrayType(INT32, 4))
        assert g.type == pointer_to(ArrayType(INT32, 4))
        assert g.short_name() == "@table"


class TestInstructions:
    def test_binary_opcode_validation(self, simple_function):
        _, fn = simple_function
        n, _ = fn.args
        with pytest.raises(ValueError):
            BinaryInst("bogus", n, n)

    def test_icmp_predicates_and_inverse(self, simple_function):
        _, fn = simple_function
        n, _ = fn.args
        cmp = ICmpInst("slt", n, ConstantInt(3))
        assert cmp.type == BOOL
        assert cmp.inverse_predicate() == "sge"
        assert cmp.swapped_predicate() == "sgt"
        with pytest.raises(ValueError):
            ICmpInst("weird", n, n)

    def test_ptradd_constant_byte_offset(self, simple_function):
        _, fn = simple_function
        _, p = fn.args
        assert PtrAddInst(p, offset=12).constant_byte_offset() == 12
        assert PtrAddInst(p, ConstantInt(3), scale=4, offset=2).constant_byte_offset() == 14
        n = fn.args[0]
        assert PtrAddInst(p, n, scale=4).constant_byte_offset() is None

    def test_ptradd_result_type_override(self, simple_function):
        _, fn = simple_function
        _, p = fn.args
        typed = PtrAddInst(p, offset=4, result_type=pointer_to(INT32))
        assert typed.type == pointer_to(INT32)
        default = PtrAddInst(p, offset=4)
        assert default.type == p.type

    def test_malloc_and_alloca_are_allocation_sites(self, simple_function):
        _, fn = simple_function
        n, _ = fn.args
        malloc = MallocInst(n)
        assert malloc.is_allocation_site()
        assert malloc.type.is_pointer()

    def test_phi_incoming_bookkeeping(self, simple_function):
        _, fn = simple_function
        entry = fn.append_block("entry")
        other = fn.append_block("other")
        n, _ = fn.args
        phi = PhiInst(INT32, "x")
        phi.add_incoming(n, entry)
        phi.add_incoming(ConstantInt(0), other)
        assert phi.incoming_value_for(entry) is n
        assert phi.incoming_value_for(other).value == 0
        assert len(phi.incoming()) == 2

    def test_sigma_bounds(self, simple_function):
        _, fn = simple_function
        n, p = fn.args
        sigma = SigmaInst(n, upper=fn.args[0], upper_adjust=-1)
        assert sigma.source is n
        assert sigma.upper is n
        assert sigma.lower is None
        assert sigma.upper_adjust == -1

    def test_store_has_no_result(self, simple_function):
        _, fn = simple_function
        n, p = fn.args
        store = StoreInst(n, p)
        assert store.type == VOID
        assert store.may_write_memory()

    def test_branch_targets(self, simple_function):
        _, fn = simple_function
        a = fn.append_block("a")
        b = fn.append_block("b")
        cond = ICmpInst("eq", fn.args[0], ConstantInt(0))
        branch = BranchInst(condition=cond, true_target=a, false_target=b)
        assert branch.is_conditional()
        assert branch.targets() == [a, b]
        branch.replace_target(b, a)
        # Both edges now reach the same block; successors() deduplicates,
        # raw targets() does not.
        assert branch.targets() == [a, a]
        plain = BranchInst(a)
        assert not plain.is_conditional()


class TestBuilderAndFunction:
    def test_builder_names_are_unique(self, simple_function):
        _, fn = simple_function
        block = fn.append_block("entry")
        builder = IRBuilder(block)
        n, p = fn.args
        first = builder.ptradd(p, offset=1, name="q")
        second = builder.ptradd(p, offset=2, name="q")
        assert first.name != second.name

    def test_builder_requires_position(self):
        with pytest.raises(RuntimeError):
            IRBuilder().add(ConstantInt(1), ConstantInt(2))

    def test_function_value_iteration(self, simple_function):
        _, fn = simple_function
        block = fn.append_block("entry")
        builder = IRBuilder(block)
        n, p = fn.args
        builder.ptradd(p, offset=3)
        builder.ret(n)
        values = list(fn.values())
        assert n in values and p in values
        assert fn.instruction_count() == 2
        assert len(fn.pointer_values()) == 2  # argument p + the ptradd

    def test_module_function_registry(self):
        module = Module("m")
        module.create_function("f", FunctionType(VOID, []))
        assert module.get_function("f") is not None
        assert module.get_function("g") is None
        with pytest.raises(ValueError):
            module.create_function("f", FunctionType(VOID, []))

    def test_module_globals(self):
        module = Module("m")
        module.create_global("g", INT32)
        assert module.get_global("g") is not None
        with pytest.raises(ValueError):
            module.create_global("g", INT32)

    def test_block_successors_and_predecessors(self, simple_function):
        _, fn = simple_function
        entry = fn.append_block("entry")
        exit_block = fn.append_block("exit")
        builder = IRBuilder(entry)
        builder.branch(exit_block)
        IRBuilder(exit_block).ret(ConstantInt(0))
        assert entry.successors() == [exit_block]
        assert exit_block.predecessors() == [entry]


class TestPrinterAndVerifier:
    def _build_valid(self):
        module = Module("printer")
        fn = module.create_function("f", FunctionType(INT32, [INT32]), ["n"])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        result = builder.add(fn.args[0], ConstantInt(1))
        builder.ret(result)
        return module, fn

    def test_print_round_trip_contains_key_pieces(self):
        module, fn = self._build_valid()
        text = print_module(module)
        assert "define i32 @f(i32 %n)" in text
        assert "add i32 %n, 1" in text
        assert "ret" in text
        assert print_function(fn) in text

    def test_print_instruction_forms(self):
        module, fn = self._build_valid()
        lines = [print_instruction(inst) for inst in fn.instructions()]
        assert any(line.startswith("%") for line in lines)
        assert any(line.startswith("ret") for line in lines)

    def test_verifier_accepts_valid_function(self):
        module, fn = self._build_valid()
        assert verify_module(module) == []
        assert verify_function(fn) == []

    def test_verifier_rejects_missing_terminator(self):
        module = Module("bad")
        fn = module.create_function("f", FunctionType(VOID, []))
        fn.append_block("entry")  # no terminator
        errors = verify_function(fn, raise_on_error=False)
        assert errors and "terminator" in errors[0].message
        with pytest.raises(IRVerificationFailure):
            verify_function(fn)

    def test_verifier_rejects_duplicate_names(self):
        module = Module("bad")
        fn = module.create_function("f", FunctionType(VOID, []))
        entry = fn.append_block("entry")
        a = BinaryInst("add", ConstantInt(1), ConstantInt(2), name="x")
        b = BinaryInst("add", ConstantInt(3), ConstantInt(4), name="x")
        entry.append(a)
        entry.append(b)
        entry.append(ReturnInst())
        errors = verify_function(fn, raise_on_error=False)
        assert any("duplicate value name" in error.message for error in errors)

    def test_verifier_rejects_misplaced_phi(self):
        module = Module("bad")
        fn = module.create_function("f", FunctionType(VOID, []))
        entry = fn.append_block("entry")
        entry.append(BinaryInst("add", ConstantInt(1), ConstantInt(2), name="a"))
        phi = PhiInst(INT32, "p")
        entry.append(phi)  # appended after a non-phi: invalid
        entry.append(ReturnInst())
        errors = verify_function(fn, raise_on_error=False)
        assert any("not at the top" in error.message for error in errors)
