"""Unit tests for CFG analyses: orderings, dominance, loops, liveness, call graph."""


from repro.analysis import (
    CallGraph,
    DominatorTree,
    LivenessInfo,
    LoopInfo,
    back_edges,
    dominance_frontiers,
    is_single_entry_region,
    post_order,
    predecessor_map,
    reverse_post_order,
)
from repro.frontend import compile_source
from repro.ir import ConstantInt, FunctionType, INT32, IRBuilder, Module, VOID


def build_diamond():
    """entry -> (left | right) -> merge, with a loop around merge->header."""
    module = Module("diamond")
    fn = module.create_function("f", FunctionType(VOID, [INT32]), ["n"])
    entry = fn.append_block("entry")
    left = fn.append_block("left")
    right = fn.append_block("right")
    merge = fn.append_block("merge")
    builder = IRBuilder(entry)
    cond = builder.icmp("slt", fn.args[0], ConstantInt(0))
    builder.cond_branch(cond, left, right)
    IRBuilder(left).branch(merge)
    IRBuilder(right).branch(merge)
    IRBuilder(merge).ret()
    return module, fn, (entry, left, right, merge)


def build_loop():
    module = Module("loop")
    fn = module.create_function("f", FunctionType(VOID, [INT32]), ["n"])
    entry = fn.append_block("entry")
    header = fn.append_block("header")
    body = fn.append_block("body")
    exit_block = fn.append_block("exit")
    builder = IRBuilder(entry)
    builder.branch(header)
    builder.position_at_end(header)
    phi = builder.phi(INT32, "i")
    phi.add_incoming(ConstantInt(0), entry)
    cond = builder.icmp("slt", phi, fn.args[0])
    builder.cond_branch(cond, body, exit_block)
    builder.position_at_end(body)
    next_value = builder.add(phi, ConstantInt(1))
    phi.add_incoming(next_value, body)
    builder.branch(header)
    IRBuilder(exit_block).ret()
    return module, fn, (entry, header, body, exit_block)


class TestOrderings:
    def test_reverse_post_order_starts_at_entry(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        rpo = reverse_post_order(fn)
        assert rpo[0] is entry
        assert rpo[-1] is merge
        assert set(rpo) == {entry, left, right, merge}

    def test_post_order_is_reverse_of_rpo(self):
        _, fn, _ = build_diamond()
        assert list(reversed(post_order(fn))) == reverse_post_order(fn)

    def test_unreachable_blocks_excluded(self):
        module, fn, blocks = build_diamond()
        dead = fn.append_block("dead")
        IRBuilder(dead).ret()
        assert dead not in reverse_post_order(fn)

    def test_predecessor_map(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        preds = predecessor_map(fn)
        assert set(preds[merge]) == {left, right}
        assert preds[entry] == []

    def test_back_edges_in_loop(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        edges = back_edges(fn)
        assert edges == [(body, header)]

    def test_single_entry_region(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        assert is_single_entry_region({header, body}, header)
        assert not is_single_entry_region({body, exit_block}, body)


class TestDominance:
    def test_entry_dominates_everything(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        dom = DominatorTree.compute(fn)
        for block in (entry, left, right, merge):
            assert dom.dominates(entry, block)

    def test_branches_do_not_dominate_merge(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        dom = DominatorTree.compute(fn)
        assert not dom.dominates(left, merge)
        assert not dom.dominates(right, merge)
        assert dom.idom(merge) is entry

    def test_strict_dominance(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        dom = DominatorTree.compute(fn)
        assert dom.strictly_dominates(entry, merge)
        assert not dom.strictly_dominates(merge, merge)

    def test_children_and_depth(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        dom = DominatorTree.compute(fn)
        assert set(dom.children(entry)) == {left, right, merge}
        assert dom.depth(entry) == 0
        assert dom.depth(left) == 1

    def test_preorder_visits_parents_before_children(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        dom = DominatorTree.compute(fn)
        order = list(dom.preorder())
        assert order.index(entry) < order.index(header) < order.index(body)

    def test_dominance_frontiers_of_diamond(self):
        _, fn, (entry, left, right, merge) = build_diamond()
        frontiers = dominance_frontiers(fn)
        assert frontiers[left] == {merge}
        assert frontiers[right] == {merge}
        assert frontiers[entry] == set()

    def test_dominance_frontier_of_loop_header(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        frontiers = dominance_frontiers(fn)
        assert header in frontiers[body]
        assert header in frontiers[header]


class TestLoops:
    def test_loop_detection(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        loops = LoopInfo.compute(fn)
        assert len(loops) == 1
        loop = loops.loops[0]
        assert loop.header is header
        assert loop.blocks == {header, body}
        assert loop.latches == [body]
        assert loop.exit_blocks() == [exit_block]
        assert loop.depth() == 1

    def test_loop_for_block(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        loops = LoopInfo.compute(fn)
        assert loops.loop_for_block(body) is loops.loops[0]
        assert loops.loop_for_block(exit_block) is None
        assert loops.loop_depth(body) == 1
        assert loops.loop_depth(entry) == 0

    def test_header_phis(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        loops = LoopInfo.compute(fn)
        assert len(loops.loops[0].header_phis()) == 1

    def test_nested_loops_from_source(self):
        module = compile_source("""
        void nested(int* a, int n) {
          int i; int j;
          for (i = 0; i < n; i++) {
            for (j = 0; j < n; j++) {
              a[i * n + j] = i + j;
            }
          }
        }
        """)
        fn = module.get_function("nested")
        loops = LoopInfo.compute(fn)
        assert len(loops) == 2
        depths = sorted(loop.depth() for loop in loops)
        assert depths == [1, 2]
        assert len(loops.top_level_loops()) == 1

    def test_no_loops_in_diamond(self):
        _, fn, _ = build_diamond()
        assert len(LoopInfo.compute(fn)) == 0


class TestLiveness:
    def test_argument_live_through_loop(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        liveness = LivenessInfo.compute(fn)
        n = fn.args[0]
        assert liveness.is_live_into(n, header)
        assert liveness.is_live_into(n, body)
        assert not liveness.is_live_into(n, exit_block)

    def test_phi_inputs_live_out_of_predecessors(self):
        _, fn, (entry, header, body, exit_block) = build_loop()
        liveness = LivenessInfo.compute(fn)
        phi = header.phis()[0]
        increment = phi.incoming_value_for(body)
        assert increment in liveness.live_out(body)

    def test_live_pointers_into_block(self):
        module = compile_source("""
        void touch(char* p, int n) {
          int i;
          for (i = 0; i < n; i++) { p[i] = 0; }
        }
        """)
        fn = module.get_function("touch")
        liveness = LivenessInfo.compute(fn)
        loop_body = next(block for block in fn.blocks if block.name.startswith("for.body"))
        live_pointers = liveness.live_pointers_into(loop_body)
        assert any(value.name == "p" for value in live_pointers)


class TestCallGraph:
    SOURCE = """
    int helper(int* p) { return p[0]; }
    int middle(int* p) { return helper(p); }
    int main(int argc, char** argv) {
      int data[4];
      return middle(data) + helper(data);
    }
    """

    def test_edges(self):
        module = compile_source(self.SOURCE)
        graph = CallGraph.compute(module)
        helper = module.get_function("helper")
        middle = module.get_function("middle")
        main = module.get_function("main")
        assert helper in graph.callees(middle)
        assert set(graph.callers(helper)) == {middle, main}
        assert graph.callees(helper) == []

    def test_call_sites_and_bindings(self):
        module = compile_source(self.SOURCE)
        graph = CallGraph.compute(module)
        helper = module.get_function("helper")
        sites = graph.sites_calling(helper)
        assert len(sites) == 2
        for site in sites:
            bindings = site.argument_bindings()
            assert len(bindings) == 1
            formal, actual = bindings[0]
            assert formal is helper.args[0]
            assert actual.type.is_pointer()

    def test_bottom_up_order_has_callees_first(self):
        module = compile_source(self.SOURCE)
        graph = CallGraph.compute(module)
        order = graph.bottom_up_order()
        names = [fn.name for fn in order]
        assert names.index("helper") < names.index("middle") < names.index("main")

    def test_external_calls_tracked(self):
        module = compile_source("""
        int main(int argc, char** argv) { return atoi(argv[0]); }
        """)
        graph = CallGraph.compute(module)
        main = module.get_function("main")
        assert len(graph.external_calls(main)) == 1

    def test_recursion_forms_scc(self):
        module = compile_source("""
        int even(int n);
        int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
        int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        int main(int argc, char** argv) { return even(atoi(argv[1])); }
        """)
        graph = CallGraph.compute(module)
        components = graph.strongly_connected_components()
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2]
