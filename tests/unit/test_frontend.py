"""Unit tests for the mini-C frontend: lexer, parser, sema and lowering."""

import pytest

from repro.frontend import (
    LexerError,
    LoweringError,
    ParseError,
    SemanticError,
    analyze,
    compile_source,
    parse,
    tokenize,
)
from repro.frontend.ast_nodes import (
    ArrayIndex,
    Assignment,
    BinaryOp,
    Call,
    Cast,
    ForStmt,
    IfStmt,
    Member,
    ReturnStmt,
    StringLiteral,
    UnaryOp,
    WhileStmt,
)
from repro.frontend.lexer import TokenKind
from repro.ir import INT32, PointerType, StructType, verify_module
from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    FreeInst,
    ICmpInst,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    StoreInst,
)


class TestLexer:
    def test_identifiers_keywords_numbers(self):
        tokens = tokenize("int x = 42;")
        kinds = [token.kind for token in tokens]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT,
                         TokenKind.INT, TokenKind.PUNCT, TokenKind.EOF]
        assert tokens[3].value == 42

    def test_hex_and_suffixed_literals(self):
        tokens = tokenize("0xFF 10L 2.5f")
        assert tokens[0].value == 255
        assert tokens[1].value == 10
        assert tokens[2].value == pytest.approx(2.5)

    def test_char_and_string_literals(self):
        tokens = tokenize(r"'a' '\n' " + '"hi\\n"')
        assert tokens[0].value == ord("a")
        assert tokens[1].value == ord("\n")
        assert tokens[2].value == "hi\n"

    def test_comments_and_preprocessor_skipped(self):
        tokens = tokenize("#include <stdio.h>\n// line\n/* block */ int x;")
        assert tokens[0].is_keyword("int")

    def test_multichar_punctuators(self):
        tokens = tokenize("a += b->c;")
        texts = [token.text for token in tokens[:6]]
        assert "+=" in texts and "->" in texts

    def test_line_numbers(self):
        tokens = tokenize("int x;\nint y;")
        assert tokens[0].line == 1
        assert tokens[3].line == 2

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("int $x;")


class TestParser:
    def test_function_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        assert len(unit.functions) == 1
        fn = unit.functions[0]
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]
        ret = fn.body.statements[0]
        assert isinstance(ret, ReturnStmt) and isinstance(ret.value, BinaryOp)

    def test_prototype_has_no_body(self):
        unit = parse("void sink(int* p);")
        assert unit.functions[0].body is None

    def test_struct_declaration(self):
        unit = parse("struct point { int x; int y; };")
        assert unit.structs[0].name == "point"
        assert [f.name for f in unit.structs[0].fields] == ["x", "y"]

    def test_global_variables(self):
        unit = parse("int table[64]; char* name;")
        assert [g.name for g in unit.globals] == ["table", "name"]

    def test_precedence(self):
        unit = parse("int f() { return 1 + 2 * 3; }")
        expr = unit.functions[0].body.statements[0].value
        assert expr.op == "+"
        assert isinstance(expr.rhs, BinaryOp) and expr.rhs.op == "*"

    def test_assignment_and_compound_assignment(self):
        unit = parse("void f(int x) { x = 1; x += 2; }")
        statements = unit.functions[0].body.statements
        assert isinstance(statements[0].expression, Assignment)
        assert statements[1].expression.op == "+"

    def test_control_flow_statements(self):
        unit = parse("""
        void f(int n) {
          int i;
          if (n) { n = 1; } else { n = 2; }
          while (n < 10) { n++; }
          for (i = 0; i < n; i++) { n--; }
          do { n = n - 1; } while (n);
        }
        """)
        body = unit.functions[0].body.statements
        assert isinstance(body[1], IfStmt) and body[1].else_branch is not None
        assert isinstance(body[2], WhileStmt)
        assert isinstance(body[3], ForStmt)

    def test_pointer_and_member_expressions(self):
        unit = parse("""
        struct s { int a; };
        int f(struct s* p, int* q, int i) { return p->a + q[i] + (*q); }
        """)
        expr = unit.functions[0].body.statements[0].value
        kinds = set()

        def walk(e):
            kinds.add(type(e).__name__)
            if isinstance(e, BinaryOp):
                walk(e.lhs)
                walk(e.rhs)
            elif isinstance(e, (Member, ArrayIndex, UnaryOp)):
                pass
        walk(expr)
        assert "BinaryOp" in kinds

    def test_cast_and_sizeof(self):
        unit = parse("void f(int n) { char* p = (char*)malloc(n * sizeof(int)); }")
        decl = unit.functions[0].body.statements[0].declarations[0]
        assert isinstance(decl.initializer, Cast)

    def test_call_with_string_argument(self):
        unit = parse('int f() { return strcmp("a", "b"); }')
        call = unit.functions[0].body.statements[0].value
        assert isinstance(call, Call) and len(call.args) == 2
        assert isinstance(call.args[0], StringLiteral)

    def test_syntax_error_reports_position(self):
        with pytest.raises(ParseError):
            parse("int f( { }")


class TestSema:
    def test_struct_resolution_and_layout(self):
        unit = parse("struct p { int x; char tag[3]; double w; };")
        info = analyze(unit)
        struct = info.structs["p"]
        assert isinstance(struct, StructType)
        assert struct.field_offset("w") == 7

    def test_duplicate_struct_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse("struct s { int a; }; struct s { int b; };"))

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse("int f() { return 0; } int f() { return 1; }"))

    def test_conflicting_prototype_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse("int f(int a); char f(int a) { return 0; }"))

    def test_unknown_struct_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse("void f(struct missing* p) { }"))

    def test_self_referential_struct_allowed(self):
        info = analyze(parse("struct node { int v; struct node* next; };"))
        assert "node" in info.structs

    def test_known_externals_have_signatures(self):
        info = analyze(parse("int main() { return 0; }"))
        assert info.signature_for_call("malloc") is not None
        assert info.signature_for_call("strlen").return_type == INT32
        assert info.signature_for_call("no_such_function") is None


class TestLowering:
    def test_malloc_and_free_become_dedicated_instructions(self):
        module = compile_source("""
        void f(int n) { char* p = (char*)malloc(n); free(p); }
        """, prepare=False)
        fn = module.get_function("f")
        assert any(isinstance(inst, MallocInst) for inst in fn.instructions())
        assert any(isinstance(inst, FreeInst) for inst in fn.instructions())

    def test_array_indexing_scales_by_element_size(self):
        module = compile_source("void f(int* a, int i) { a[i] = 1; }", prepare=False)
        fn = module.get_function("f")
        ptradds = [inst for inst in fn.instructions() if isinstance(inst, PtrAddInst)]
        assert any(inst.scale == 4 for inst in ptradds)

    def test_struct_field_access_uses_byte_offsets(self):
        module = compile_source("""
        struct pair { int first; int second; };
        void f(struct pair* p) { p->second = 3; }
        """, prepare=False)
        fn = module.get_function("f")
        ptradds = [inst for inst in fn.instructions() if isinstance(inst, PtrAddInst)]
        assert any(inst.offset == 4 and inst.index is None for inst in ptradds)
        # The field address is typed as int*, so access sizes are 4 bytes.
        field = next(inst for inst in ptradds if inst.offset == 4)
        assert field.type == PointerType(INT32)

    def test_pointer_arithmetic_on_char_has_scale_one(self):
        module = compile_source("void f(char* p, int i) { *(p + i) = 0; }", prepare=False)
        fn = module.get_function("f")
        ptradds = [inst for inst in fn.instructions() if isinstance(inst, PtrAddInst)]
        assert any(inst.scale == 1 for inst in ptradds)

    def test_pointer_difference_divides_by_element_size(self):
        module = compile_source("int f(int* a, int* b) { return a - b; }", prepare=False)
        fn = module.get_function("f")
        opcodes = [inst.opcode for inst in fn.instructions()]
        assert "ptrtoint" in opcodes and "sub" in opcodes and "sdiv" in opcodes

    def test_string_literal_becomes_global(self):
        module = compile_source('char* f() { return "hello"; }', prepare=False)
        assert any(g.name.startswith(".str") for g in module.globals)

    def test_conditionals_produce_branches_and_phis_after_pipeline(self):
        module = compile_source("""
        int f(int n) { int x; if (n > 0) { x = 1; } else { x = 2; } return x; }
        """)
        fn = module.get_function("f")
        assert any(isinstance(inst, PhiInst) for inst in fn.instructions())
        assert any(isinstance(inst, ICmpInst) for inst in fn.instructions())

    def test_parameters_are_promoted_to_ssa(self):
        module = compile_source("int f(int n) { n = n + 1; return n; }")
        fn = module.get_function("f")
        assert not any(isinstance(inst, AllocaInst) for inst in fn.instructions())

    def test_break_and_continue(self):
        module = compile_source("""
        int f(int n) {
          int i; int total = 0;
          for (i = 0; i < n; i++) {
            if (i == 3) { continue; }
            if (i == 7) { break; }
            total += i;
          }
          return total;
        }
        """)
        verify_module(module)

    def test_global_variable_access(self):
        module = compile_source("""
        int counter;
        void bump() { counter = counter + 1; }
        """, prepare=False)
        fn = module.get_function("bump")
        loads = [inst for inst in fn.instructions() if isinstance(inst, LoadInst)]
        stores = [inst for inst in fn.instructions() if isinstance(inst, StoreInst)]
        assert loads and stores
        assert module.get_global("counter") is not None

    def test_calls_to_defined_functions_are_direct(self):
        module = compile_source("""
        int helper(int x) { return x; }
        int main() { return helper(3); }
        """, prepare=False)
        main = module.get_function("main")
        calls = [inst for inst in main.instructions() if isinstance(inst, CallInst)]
        assert calls and not calls[0].is_external()

    def test_calls_to_library_functions_are_external(self):
        module = compile_source("int main(int argc, char** argv) { return atoi(argv[1]); }",
                                prepare=False)
        main = module.get_function("main")
        calls = [inst for inst in main.instructions() if isinstance(inst, CallInst)]
        assert calls and calls[0].is_external()

    def test_undeclared_identifier_raises(self):
        with pytest.raises(LoweringError):
            compile_source("int f() { return missing; }")

    def test_break_outside_loop_raises(self):
        with pytest.raises(LoweringError):
            compile_source("void f() { break; }")

    def test_every_compiled_module_verifies(self):
        module = compile_source("""
        struct node { int v; struct node* next; };
        int sum(int n) {
          struct node* head = NULL;
          int i; int total = 0;
          for (i = 0; i < n; i++) {
            struct node* fresh = (struct node*)malloc(sizeof(struct node));
            fresh->v = i;
            fresh->next = (struct node*)head;
            head = fresh;
          }
          while (head != NULL) {
            total += head->v;
            head = (struct node*)head->next;
          }
          return total;
        }
        """)
        assert verify_module(module) == []
