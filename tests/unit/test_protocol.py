"""The service protocol: golden schemas, error codes, versioning, id echo."""

import io
import json

import pytest

from repro.service import serve
from repro.service.protocol import (
    DEFAULT_SIZE,
    ERROR_CODES,
    PROTOCOL_VERSION,
    REQUESTS,
    RETRYABLE_ERROR_CODES,
    QueryResponse,
    ServiceError,
    check_response,
    coerce_size,
    encode_size,
    error_envelope,
    handle_payload,
    make_request,
    parse_request,
    success_envelope,
)
from repro.service.session import AnalysisSession

SRC = """
int main(int argc, char** argv) {
  char* a = (char*)malloc(8);
  char* b = a + 1;
  *a = 0;
  *b = 1;
  return 0;
}
"""


def _pointers(session, module="m"):
    values = session.values(module, "main")["values"]
    base = next(v["name"] for v in values if v["op"] == "malloc")
    offset = [v["name"] for v in values if v["op"] == "ptradd"][-1]
    return base, offset


class TestGoldenSchemas:
    """Every op's canonical wire shape, frozen.

    These payloads are the protocol contract: changing any of them in a
    wire-incompatible way must come with a PROTOCOL_VERSION bump.
    """

    #: op -> canonical request payload (minus op/v, which to_payload adds).
    GOLDEN = {
        "ping": {},
        "load": {"name": "m", "source": "int main() { return 0; }"},
        "load_program": {"name": "allroots"},
        "edit": {"name": "m", "source": "int main() { return 1; }"},
        "query": {"module": "m", "analysis": "rbaa", "function": "main",
                  "a": "p1", "b": "p2"},
        "query_many": {"module": "m", "analysis": "rbaa", "function": "main",
                       "pairs": [["p1", "p2"],
                                 ["p1", "p2", "unknown", 4]]},
        "query_function": {"module": "m", "analysis": "rbaa",
                           "function": "main", "max_pairs": 10},
        "values": {"module": "m", "function": "main"},
        "check_bounds": {"module": "m", "function": "main"},
        "parallel_loops": {"module": "m", "function": "main"},
        "range": {"module": "m", "function": "main", "value": "n"},
        "stats": {"module": "m"},
        "modules": {},
        "unload": {"name": "m"},
        "shutdown": {},
    }

    def test_registry_covers_exactly_the_protocol_ops(self):
        assert set(REQUESTS) == set(self.GOLDEN)

    def test_requests_round_trip_through_parse_and_encode(self):
        for op, fields in self.GOLDEN.items():
            payload = {"op": op, "v": PROTOCOL_VERSION, "id": f"rt-{op}",
                       **fields}
            request = parse_request(payload)
            assert request.op == op
            assert request.id == f"rt-{op}"
            encoded = request.to_payload()
            # The canonical encoding parses back to an equal request.
            assert parse_request(encoded) == request
            # query_many normalises size spellings but preserves meaning.
            if op != "query_many":
                assert encoded == payload

    def test_routing_module_matches_the_sharding_contract(self):
        routed = {"load": "m", "load_program": "allroots", "edit": "m",
                  "query": "m", "query_many": "m", "query_function": "m",
                  "values": "m", "check_bounds": "m", "parallel_loops": "m",
                  "range": "m", "stats": "m", "unload": "m"}
        for op, fields in self.GOLDEN.items():
            request = parse_request({"op": op, "v": PROTOCOL_VERSION,
                                     **fields})
            assert request.routing_module() == routed.get(op)

    def test_missing_required_field_is_bad_request(self):
        with pytest.raises(ServiceError) as caught:
            parse_request({"op": "query", "v": PROTOCOL_VERSION,
                           "module": "m"})
        assert caught.value.code == "bad_request"


class TestErrorCodes:
    def test_error_code_set_is_stable(self):
        # Renaming or removing a code is wire-incompatible; this golden
        # test forces a PROTOCOL_VERSION bump alongside any such change.
        assert ERROR_CODES == {
            "protocol_mismatch", "bad_request", "unknown_op",
            "unknown_module", "unknown_function", "unknown_value",
            "unknown_analysis", "edit_rejected", "internal_error",
            "worker_unavailable", "deadline_exceeded", "overloaded"}

    def test_retryable_subset_is_stable(self):
        # The retry contract is wire-visible behaviour: clients blindly
        # resend exactly these.  deadline_exceeded is deliberately absent
        # (a backstopped mutating request may still have applied).
        assert RETRYABLE_ERROR_CODES == {"worker_unavailable", "overloaded"}
        assert RETRYABLE_ERROR_CODES < ERROR_CODES
        assert "deadline_exceeded" not in RETRYABLE_ERROR_CODES

    def test_session_errors_carry_stable_codes(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _pointers(session)
        v = PROTOCOL_VERSION
        cases = [
            ({"op": "warp", "v": v}, "unknown_op"),
            ({"op": "query", "v": v, "module": "ghost", "analysis": "rbaa",
              "function": "main", "a": base, "b": offset}, "unknown_module"),
            ({"op": "query", "v": v, "module": "m", "analysis": "voodoo",
              "function": "main", "a": base, "b": offset},
             "unknown_analysis"),
            ({"op": "query", "v": v, "module": "m", "analysis": "rbaa",
              "function": "nowhere", "a": base, "b": offset},
             "unknown_function"),
            ({"op": "query", "v": v, "module": "m", "analysis": "rbaa",
              "function": "main", "a": base, "b": "nothing"},
             "unknown_value"),
            ({"op": "query", "v": v, "module": "m", "analysis": "rbaa",
              "function": "main", "a": base, "b": offset, "size_a": -1},
             "bad_request"),
            ({"op": "edit", "v": v, "name": "m", "source": "int main( {"},
             "edit_rejected"),
            ({"op": "load", "v": v, "name": "bad", "source": "int main( {"},
             "bad_request"),
            ({"op": "ping", "v": v + 1}, "protocol_mismatch"),
            ({"op": "ping"}, "protocol_mismatch"),
            ("not an object", "bad_request"),
        ]
        for payload, code in cases:
            envelope = handle_payload(session, payload)
            assert envelope["ok"] is False, payload
            assert envelope["error_code"] == code, payload
            # The pre-v1 free-form "error" string is gone from the wire.
            assert "error" not in envelope, payload
            assert isinstance(envelope["message"], str) and envelope["message"]
            assert envelope["v"] == PROTOCOL_VERSION

    def test_envelope_helpers(self):
        ok = success_envelope("id-1", {"pong": True})
        assert ok == {"ok": True, "v": PROTOCOL_VERSION, "id": "id-1",
                      "pong": True}
        bad = error_envelope("unknown_op", "nope", "id-2")
        assert bad["error_code"] == "unknown_op" and bad["id"] == "id-2"
        assert bad["message"] == "nope"
        assert "error" not in bad  # the deprecated field is gone
        # Unlisted codes degrade to internal_error, never leak through.
        assert error_envelope("made_up", "x")["error_code"] == "internal_error"

    def test_check_response_raises_with_the_structured_code(self):
        with pytest.raises(ServiceError) as caught:
            check_response(error_envelope("unknown_module", "gone", None))
        assert caught.value.code == "unknown_module"
        assert check_response(success_envelope(None, {"pong": True}))["pong"]


class TestVersioning:
    def test_version_mismatch_is_rejected_with_id_echo(self):
        session = AnalysisSession()
        envelope = handle_payload(session, {"op": "ping", "v": 99, "id": 5})
        assert envelope["ok"] is False
        assert envelope["error_code"] == "protocol_mismatch"
        assert envelope["id"] == 5

    def test_unversioned_requests_are_rejected(self):
        # The unversioned grace period (PR 6's deprecation window) is over:
        # a request without "v" is a protocol mismatch, with the id echoed.
        session = AnalysisSession()
        envelope = handle_payload(session, {"op": "ping", "id": "old"})
        assert envelope["ok"] is False
        assert envelope["error_code"] == "protocol_mismatch"
        assert envelope["id"] == "old"
        assert "'v'" in envelope["message"]

    def test_make_request_stamps_the_version(self):
        payload = make_request("ping", id=3)
        assert payload == {"op": "ping", "v": PROTOCOL_VERSION, "id": 3}


class TestSizeSchema:
    def test_coerce_size_spellings(self):
        assert coerce_size(DEFAULT_SIZE) is DEFAULT_SIZE
        assert coerce_size("default") is DEFAULT_SIZE
        assert coerce_size(None) is None
        assert coerce_size("unknown") is None
        assert coerce_size(0) == 0
        assert coerce_size(8) == 8
        for bad in (-1, True, 1.5, "8", [4]):
            with pytest.raises(ServiceError):
                coerce_size(bad)

    def test_encode_size_round_trips(self):
        for size in (DEFAULT_SIZE, None, 0, 16):
            assert coerce_size(encode_size(size)) == size or \
                coerce_size(encode_size(size)) is size

    def test_sizes_round_trip_identically_through_both_entry_points(self):
        # The same size spelling must mean the same thing whether it comes
        # through the typed session API or a decoded wire payload.
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _pointers(session)
        direct_default = session.query("m", "rbaa", "main", base, offset)
        direct_unknown = session.query("m", "rbaa", "main", base, offset,
                                       size_a=None, size_b=None)
        assert direct_default["result"] == "no-alias"
        assert direct_unknown["result"] == "may-alias"
        for spelling in ({}, {"size_a": "default", "size_b": "default"}):
            wire = handle_payload(session, make_request(
                "query", module="m", analysis="rbaa", function="main",
                a=base, b=offset, **spelling))
            assert wire["result"] == direct_default["result"]
        for spelling in ({"size_a": None, "size_b": None},
                         {"size_a": "unknown", "size_b": "unknown"}):
            wire = handle_payload(session, make_request(
                "query", module="m", analysis="rbaa", function="main",
                a=base, b=offset, **spelling))
            assert wire["result"] == direct_unknown["result"]
        batch = handle_payload(session, make_request(
            "query_many", module="m", analysis="rbaa", function="main",
            pairs=[[base, offset], [base, offset, "default", "default"],
                   [base, offset, "unknown", None]]))
        assert batch["results"] == ["no-alias", "no-alias", "may-alias"]


class TestDeadlines:
    """The additive ``timeout_ms`` field and its cooperative enforcement."""

    def test_timeout_ms_round_trips_additively(self):
        # Additive: present when set, absent when not — no version bump.
        plain = parse_request(make_request("query", module="m",
                                           analysis="rbaa", function="main",
                                           a="p", b="q"))
        assert plain.timeout_ms is None
        assert "timeout_ms" not in plain.to_payload()
        bounded = parse_request(make_request(
            "query", module="m", analysis="rbaa", function="main",
            a="p", b="q", timeout_ms=250))
        assert bounded.timeout_ms == 250
        encoded = bounded.to_payload()
        assert encoded["timeout_ms"] == 250
        assert parse_request(encoded) == bounded

    def test_timeout_ms_validation(self):
        for bad in (-1, True, 1.5, "250", [250]):
            with pytest.raises(ServiceError) as caught:
                parse_request(make_request("ping", timeout_ms=bad))
            assert caught.value.code == "bad_request"
        assert parse_request(make_request("ping", timeout_ms=0)).timeout_ms == 0

    def test_mutating_classification(self):
        # The supervisor's journal/retry split rides on this flag: exactly
        # the state-changing ops are mutating (never transparently retried,
        # journaled for crash replay when acknowledged).
        mutating = {op for op, cls in REQUESTS.items() if cls.mutating}
        assert mutating == {"load", "load_program", "edit", "unload"}

    def test_expired_deadline_short_circuits_deterministically(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _pointers(session)
        envelope = handle_payload(session, make_request(
            "query", id="dl", module="m", analysis="rbaa", function="main",
            a=base, b=offset, timeout_ms=0))
        assert envelope["ok"] is False
        assert envelope["error_code"] == "deadline_exceeded"
        assert envelope["id"] == "dl"
        # The same request without the deadline still answers — an
        # abandoned evaluation must not poison session state.
        again = handle_payload(session, make_request(
            "query", id="dl2", module="m", analysis="rbaa", function="main",
            a=base, b=offset))
        assert again["ok"] is True and again["result"] == "no-alias"

    def test_mutating_requests_ignore_the_cooperative_budget(self):
        # A deadline must never abandon a half-applied edit: mutating ops
        # run to completion; only the front-end backstop can answer early.
        session = AnalysisSession()
        envelope = handle_payload(session, make_request(
            "load", id="ld", name="m", source=SRC, timeout_ms=0))
        assert envelope["ok"] is True
        assert "main" in envelope["functions"]


class TestPipelinedIdEcho:
    def test_daemon_echoes_ids_on_every_response(self):
        requests = [
            make_request("ping", id="a"),
            make_request("load", id="b", name="m", source=SRC),
            make_request("warp", id="c"),
            make_request("query", id="d", module="ghost", analysis="rbaa",
                         function="main", a="x", b="y"),
            make_request("stats", id="e", module="m"),
            make_request("shutdown", id="f"),
        ]
        stdin = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in requests))
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 0
        responses = [json.loads(line)
                     for line in stdout.getvalue().strip().splitlines()]
        assert [r["id"] for r in responses] == ["a", "b", "c", "d", "e", "f"]
        assert [r["ok"] for r in responses] == [True, True, False, False,
                                                True, True]
        assert responses[2]["error_code"] == "unknown_op"
        assert responses[3]["error_code"] == "unknown_module"

    def test_invalid_json_line_gets_a_structured_envelope(self):
        stdin = io.StringIO("this is not json\n" +
                            json.dumps(make_request("shutdown", id=9)) + "\n")
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 0
        first, second = [json.loads(line) for line in
                         stdout.getvalue().strip().splitlines()]
        assert first["ok"] is False
        assert first["error_code"] == "bad_request"
        assert second["id"] == 9 and second["shutdown"] is True


class TestTypedResponses:
    def test_query_response_from_envelope(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _pointers(session)
        envelope = handle_payload(session, make_request(
            "query", id=1, module="m", analysis="rbaa", function="main",
            a=base, b=offset))
        typed = QueryResponse.from_envelope(envelope)
        assert typed.result == "no-alias"
        assert typed.module == "m"
        with pytest.raises(ServiceError):
            QueryResponse.from_envelope(error_envelope("unknown_op", "x", 1))
