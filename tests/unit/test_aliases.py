"""Unit tests for the baseline alias analyses and their combination."""

import pytest

from repro.aliases import (
    AliasResult,
    AndersenAliasAnalysis,
    BasicAliasAnalysis,
    CombinedAliasAnalysis,
    MemoryAccess,
    SCEVAliasAnalysis,
    SteensgaardAliasAnalysis,
)
from repro.core import RBAAAliasAnalysis
from repro.frontend import compile_source
from repro.ir.instructions import MallocInst, StoreInst
from repro.ir.values import NullPointer


def stores_of(module, function_name):
    fn = module.get_function(function_name)
    return [inst for inst in fn.instructions() if isinstance(inst, StoreInst)]


class TestMemoryAccess:
    def test_default_size_is_pointee_size(self):
        module = compile_source("void f(int* p) { *p = 0; }")
        p = module.get_function("f").args[0]
        assert MemoryAccess.of(p).size == 4

    def test_explicit_size_wins(self):
        module = compile_source("void f(int* p) { *p = 0; }")
        p = module.get_function("f").args[0]
        assert MemoryAccess.of(p, 16).size == 16
        assert MemoryAccess.unknown_extent(p).size is None


class TestBasicAliasAnalysis:
    def test_distinct_mallocs_do_not_alias(self):
        module = compile_source("""
        void f(int n) {
          char* a = (char*)malloc(n);
          char* b = (char*)malloc(n);
          a[0] = 0; b[0] = 1;
        }
        """)
        basic = BasicAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS

    def test_struct_fields_do_not_alias(self):
        module = compile_source("""
        struct pair { int a; int b; };
        void f(struct pair* p) { p->a = 0; p->b = 1; }
        """)
        basic = BasicAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS

    def test_constant_array_subscripts_do_not_alias(self):
        module = compile_source("void f(int* a) { a[2] = 0; a[5] = 1; }")
        basic = BasicAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS

    def test_overlapping_constant_offsets_partially_alias(self):
        module = compile_source("void f(char* a) { *(int*)(a + 2) = 0; *(a + 4) = 1; }")
        basic = BasicAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.PARTIAL_ALIAS

    def test_same_constant_offset_must_alias(self):
        module = compile_source("void f(char* a) { *(a + 4) = 0; *(a + 4) = 1; }")
        basic = BasicAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.MUST_ALIAS

    def test_symbolic_offsets_are_not_disambiguated(self):
        # The motivating weakness: basicaa cannot separate p[i] from p[i+1].
        module = compile_source("""
        void f(float* p, int n) {
          int i = 0;
          while (i < n) { p[i] = 0.0; p[i + 1] = 1.0; i += 2; }
        }
        """)
        basic = BasicAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert basic.alias_pointers(first.pointer, second.pointer) is AliasResult.MAY_ALIAS

    def test_null_does_not_alias_identified_objects(self):
        module = compile_source("void f(int n) { char* a = (char*)malloc(n); a[0] = 0; }")
        basic = BasicAliasAnalysis(module)
        store = stores_of(module, "f")[0]
        null = NullPointer(store.pointer.type)
        assert basic.alias_pointers(store.pointer, null) is AliasResult.NO_ALIAS

    def test_non_escaping_alloca_does_not_alias_arguments(self):
        module = compile_source("""
        int f(char* input, int n) {
          char scratch[16];
          int i;
          for (i = 0; i < n; i++) { scratch[i % 16] = input[i]; }
          return scratch[0];
        }
        """)
        basic = BasicAliasAnalysis(module)
        scratch_store = stores_of(module, "f")[0]
        argument = module.get_function("f").args[0]
        assert basic.alias_pointers(scratch_store.pointer, argument) is AliasResult.NO_ALIAS

    def test_escaping_alloca_keeps_may_alias(self):
        module = compile_source("""
        void sink(char* p);
        char g;
        void f(char* input) {
          char scratch[16];
          sink(scratch);
          scratch[0] = *input;
        }
        """)
        basic = BasicAliasAnalysis(module)
        store = stores_of(module, "f")[-1]
        argument = module.get_function("f").args[0]
        assert basic.alias_pointers(store.pointer, argument) is AliasResult.MAY_ALIAS

    def test_library_function_memory_knowledge(self):
        assert BasicAliasAnalysis.callee_is_readonly("strlen")
        assert BasicAliasAnalysis.callee_accesses_no_memory("abs")
        assert not BasicAliasAnalysis.callee_is_readonly("memcpy")

    def test_underlying_objects_through_phi(self):
        module = compile_source("""
        void f(int n, int c) {
          char* a = (char*)malloc(n);
          char* b = (char*)malloc(n);
          char* chosen;
          if (c) { chosen = a; } else { chosen = b; }
          chosen[0] = 1;
        }
        """)
        basic = BasicAliasAnalysis(module)
        store = stores_of(module, "f")[0]
        objects = basic.underlying_objects(store.pointer)
        assert objects.all_identified
        assert len(objects.objects) == 2


class TestSCEVAliasAnalysis:
    def test_lockstep_pointers_with_gap_do_not_alias(self):
        module = compile_source("""
        void f(float* p, int n) {
          int i = 0;
          while (i < n) { p[i] = 0.0; p[i + 1] = 1.0; i += 2; }
        }
        """)
        scev = SCEVAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert scev.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS

    def test_same_evolution_must_alias(self):
        module = compile_source("""
        void f(int* p, int n) {
          int i;
          for (i = 0; i < n; i++) { p[i] = 0; p[i] = 1; }
        }
        """)
        scev = SCEVAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert scev.alias_pointers(first.pointer, second.pointer) is AliasResult.MUST_ALIAS

    def test_pointers_outside_loops_are_unknown(self):
        module = compile_source("void f(char* p) { *(p + 1) = 0; *(p + 5) = 1; }")
        scev = SCEVAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert scev.alias_pointers(first.pointer, second.pointer) is AliasResult.MAY_ALIAS

    def test_overlapping_strides_partially_alias(self):
        module = compile_source("""
        void f(char* p, int n) {
          int i = 0;
          while (i < n) { *(int*)(p + i) = 0; *(p + i + 2) = 1; i += 8; }
        }
        """)
        scev = SCEVAliasAnalysis(module)
        first, second = stores_of(module, "f")
        assert scev.alias_pointers(first.pointer, second.pointer) is AliasResult.PARTIAL_ALIAS


class TestPointsToAnalyses:
    SOURCE = """
    void f(int n, int c) {
      char* a = (char*)malloc(n);
      char* b = (char*)malloc(n);
      char* alias_of_a = a + 1;
      a[0] = 0;
      b[0] = 1;
      *alias_of_a = 2;
    }
    """

    def test_andersen_separates_distinct_allocations(self):
        module = compile_source(self.SOURCE)
        andersen = AndersenAliasAnalysis(module)
        first, second, third = stores_of(module, "f")
        assert andersen.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS
        assert andersen.alias_pointers(first.pointer, third.pointer) is AliasResult.MAY_ALIAS

    def test_andersen_points_to_sets(self):
        module = compile_source(self.SOURCE)
        andersen = AndersenAliasAnalysis(module)
        mallocs = [i for i in module.get_function("f").instructions()
                   if isinstance(i, MallocInst)]
        first_set = andersen.points_to_set(mallocs[0])
        assert mallocs[0] in first_set and mallocs[1] not in first_set

    def test_andersen_handles_pointers_stored_in_memory(self):
        module = compile_source("""
        void f(int n) {
          char** slot = (char**)malloc(8);
          char* obj = (char*)malloc(n);
          *slot = obj;
          char* loaded = *slot;
          loaded[0] = 1;
        }
        """)
        andersen = AndersenAliasAnalysis(module)
        store = stores_of(module, "f")[-1]
        mallocs = [i for i in module.get_function("f").instructions()
                   if isinstance(i, MallocInst)]
        loaded_set = andersen.points_to_set(store.pointer)
        assert mallocs[1] in loaded_set

    def test_steensgaard_separates_unconnected_allocations(self):
        module = compile_source(self.SOURCE)
        steensgaard = SteensgaardAliasAnalysis(module)
        first, second, third = stores_of(module, "f")
        assert steensgaard.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS
        assert steensgaard.alias_pointers(first.pointer, third.pointer) is AliasResult.MAY_ALIAS

    def test_steensgaard_unifies_flowed_together_pointers(self):
        module = compile_source("""
        void f(int n, int c) {
          char* a = (char*)malloc(n);
          char* b = (char*)malloc(n);
          char* chosen;
          if (c) { chosen = a; } else { chosen = b; }
          chosen[0] = 1;
          a[0] = 2;
          b[0] = 3;
        }
        """)
        steensgaard = SteensgaardAliasAnalysis(module)
        chosen_store, a_store, b_store = stores_of(module, "f")
        # Unification merges a and b into one class through `chosen`.
        assert steensgaard.alias_pointers(a_store.pointer, b_store.pointer) \
            is AliasResult.MAY_ALIAS
        # Andersen keeps them apart: inclusion-based is strictly more precise here.
        andersen = AndersenAliasAnalysis(module)
        assert andersen.alias_pointers(a_store.pointer, b_store.pointer) \
            is AliasResult.NO_ALIAS


class TestCombinedAnalysis:
    def test_combination_is_at_least_as_precise_as_each_member(self):
        source = """
        int f(char* input, float* p, int n) {
          char scratch[16];
          int i = 0;
          while (i < n) {
            p[i] = 0.0;
            p[i + 1] = 1.0;
            scratch[i % 16] = input[i];
            i += 2;
          }
          return scratch[0];
        }
        """
        module = compile_source(source)
        rbaa = RBAAAliasAnalysis(module)
        basic = BasicAliasAnalysis(module)
        combined = CombinedAliasAnalysis(module, [rbaa, basic], name="r+b")
        fn = module.get_function("f")
        pointers = fn.pointer_values()
        pairs = [(pointers[i], pointers[j])
                 for i in range(len(pointers)) for j in range(i + 1, len(pointers))]
        combined_count = sum(combined.no_alias(a, b) for a, b in pairs)
        basic_count = sum(basic.no_alias(a, b) for a, b in pairs)
        rbaa_count = sum(rbaa.no_alias(a, b) for a, b in pairs)
        assert combined_count >= max(basic_count, rbaa_count)
        assert combined.name == "r+b"
        assert sum(combined.credit.values()) == combined_count

    def test_requires_at_least_one_analysis(self):
        module = compile_source("void f() { }")
        with pytest.raises(ValueError):
            CombinedAliasAnalysis(module, [])
