"""Unknown access sizes must never behave as one byte.

Regression coverage for the unknown-size soundness fix: two pointers that
are provably disjoint for 1-byte accesses must *not* be disambiguated when
queried at unknown (unbounded) size, across every size-sensitive analysis
and at every layer (interval extension, the GR/LR tests, the memo keys).
"""

from repro.aliases.basic import BasicAliasAnalysis
from repro.aliases.results import AliasResult, MemoryAccess
from repro.aliases.scev_aa import SCEVAliasAnalysis
from repro.core import RBAAAliasAnalysis
from repro.core.domain import PointerAbstractValue
from repro.core.locations import LocationKind, MemoryLocation
from repro.core.queries import (
    QueryPairMemo,
    extend_for_access,
    global_test,
    local_test,
    pair_key,
)
from repro.frontend import compile_source
from repro.symbolic import POS_INF, SymbolicInterval

ONE_BYTE_DISJOINT = """
void f(char* base) {
  char* head = base;
  char* tail = base + 1;
  *head = 0;
  *tail = 1;
}
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* buf = (char*)malloc(n);
  f(buf);
  return 0;
}
"""


def _disjoint_pair(module):
    fn = module.get_function("f")
    base = fn.args[0]
    tail = next(inst for inst in fn.instructions() if inst.opcode == "ptradd")
    return base, tail


class TestExtendForAccess:
    def test_unknown_size_extends_to_plus_infinity(self):
        interval = SymbolicInterval(0, 0)
        extended = extend_for_access(interval, None)
        assert extended.lower == interval.lower
        assert extended.upper == POS_INF

    def test_known_sizes_unchanged(self):
        interval = SymbolicInterval(0, 0)
        assert extend_for_access(interval, 1) == interval
        assert extend_for_access(interval, 4).upper != interval.upper

    def test_empty_interval_stays_empty(self):
        assert extend_for_access(SymbolicInterval.empty(), None).is_empty


class TestUnknownSizeTests:
    def _values(self):
        loc = MemoryLocation(0, LocationKind.HEAP, "heap")
        a = PointerAbstractValue({loc: SymbolicInterval(0, 0)})
        b = PointerAbstractValue({loc: SymbolicInterval(1, 1)})
        return a, b

    def test_global_test_refuses_unknown_sizes(self):
        a, b = self._values()
        assert global_test(a, b, 1, 1).no_alias
        # The lower access' unknown extent reaches upward over ``b``.
        assert not global_test(a, b, None, 1).no_alias
        assert not global_test(a, b, None, None).no_alias
        # The *higher* access extending upward stays provably disjoint —
        # the fix must not cost precision soundness does not require.
        assert global_test(a, b, 1, None).no_alias

    def test_local_test_refuses_unknown_sizes(self):
        from repro.core import LocalAbstractValue
        base = MemoryLocation(3, LocationKind.SYNTHETIC, "base")
        a = LocalAbstractValue(base, SymbolicInterval.point(0))
        b = LocalAbstractValue(base, SymbolicInterval.point(1))
        assert local_test(a, b, 1, 1).no_alias
        assert not local_test(a, b, None, None).no_alias

    def test_unknown_size_but_distinct_objects_still_disambiguates(self):
        # The fix must not destroy size-insensitive reasoning: distinct
        # concrete objects never overlap whatever the extent.
        loc_a = MemoryLocation(0, LocationKind.HEAP, "a")
        loc_b = MemoryLocation(1, LocationKind.HEAP, "b")
        a = PointerAbstractValue({loc_a: SymbolicInterval(0, 0)})
        b = PointerAbstractValue({loc_b: SymbolicInterval(0, 0)})
        assert global_test(a, b, None, None).no_alias


class TestAnalysesAtUnknownSize:
    def test_rbaa_regression(self):
        module = compile_source(ONE_BYTE_DISJOINT, "regress")
        rbaa = RBAAAliasAnalysis(module)
        base, tail = _disjoint_pair(module)
        assert rbaa.alias(MemoryAccess.of(base, 1),
                          MemoryAccess.of(tail, 1)) is AliasResult.NO_ALIAS
        assert rbaa.alias(
            MemoryAccess.unknown_extent(base),
            MemoryAccess.unknown_extent(tail)) is AliasResult.MAY_ALIAS

    def test_basic_regression(self):
        module = compile_source(ONE_BYTE_DISJOINT, "regress")
        basic = BasicAliasAnalysis(module)
        base, tail = _disjoint_pair(module)
        assert basic.alias(MemoryAccess.of(base, 1),
                           MemoryAccess.of(tail, 1)) is AliasResult.NO_ALIAS
        assert basic.alias(
            MemoryAccess.unknown_extent(base),
            MemoryAccess.unknown_extent(tail)) is AliasResult.MAY_ALIAS

    def test_scev_unknown_size_is_never_no_alias(self):
        module = compile_source("""
        void g(int* v, int n) {
          int i;
          for (i = 0; i + 1 < n; i++) {
            v[i] = v[i + 1];
          }
        }
        """, "scev")
        scev = SCEVAliasAnalysis(module)
        fn = module.get_function("g")
        loads = [inst for inst in fn.instructions() if inst.opcode == "load"]
        stores = [inst for inst in fn.instructions() if inst.opcode == "store"]
        assert loads and stores
        p, q = stores[0].pointer, loads[0].pointer
        sized = scev.alias(MemoryAccess.of(p, 4), MemoryAccess.of(q, 4))
        unknown = scev.alias(MemoryAccess.unknown_extent(p),
                             MemoryAccess.unknown_extent(q))
        assert sized is AliasResult.NO_ALIAS
        assert unknown is AliasResult.MAY_ALIAS

    def test_memo_distinguishes_unknown_from_one_byte(self):
        module = compile_source(ONE_BYTE_DISJOINT, "regress")
        base, tail = _disjoint_pair(module)
        key_sized = pair_key(MemoryAccess.of(base, 1), MemoryAccess.of(tail, 1))
        key_unknown = pair_key(MemoryAccess.unknown_extent(base),
                               MemoryAccess.unknown_extent(tail))
        assert key_sized != key_unknown


class TestQueryPairMemoCounters:
    def test_remembered_none_counts_as_hit_not_miss(self):
        memo = QueryPairMemo()
        memo.remember("pair", None)
        assert memo.lookup("pair") is None
        assert (memo.hits, memo.misses) == (1, 0)
        # Repeated lookups keep hitting — the old behaviour double-counted
        # every lookup of a stored ``None`` as a miss.
        assert memo.lookup("pair") is None
        assert (memo.hits, memo.misses) == (2, 0)

    def test_post_release_lookups_count_misses(self):
        memo = QueryPairMemo()
        memo.remember("pair", None)
        memo.lookup("pair")
        memo.release()
        assert memo.lookup("pair") is None
        assert (memo.hits, memo.misses) == (1, 1)
        assert len(memo) == 0

    def test_real_payloads_still_round_trip(self):
        memo = QueryPairMemo()
        assert memo.lookup("pair") is None
        memo.remember("pair", "payload")
        assert memo.lookup("pair") == "payload"
        assert (memo.hits, memo.misses) == (1, 1)


class TestQueryPairMemoBound:
    """The memo is an LRU bounded by ``max_payloads`` (daemon-safety knob)."""

    def test_eviction_is_lru_and_counted(self):
        memo = QueryPairMemo(max_payloads=2)
        memo.remember("a", 1)
        memo.remember("b", 2)
        assert memo.lookup("a") == 1       # refresh: "b" is now least recent
        memo.remember("c", 3)              # evicts "b"
        assert memo.lookup("b") is None
        assert memo.lookup("a") == 1
        assert memo.lookup("c") == 3
        assert memo.evictions == 1
        assert len(memo) == 2

    def test_eviction_only_forces_recompute(self):
        memo = QueryPairMemo(max_payloads=1)
        memo.remember("a", "payload-a")
        memo.remember("b", "payload-b")    # evicts "a"
        assert memo.lookup("a") is None    # recompute path
        memo.remember("a", "payload-a")    # same deterministic payload again
        assert memo.lookup("a") == "payload-a"

    def test_resize_trims_and_counts(self):
        memo = QueryPairMemo(max_payloads=4)
        for index in range(4):
            memo.remember(index, index)
        memo.resize(2)
        assert memo.evictions == 2
        assert len(memo) == 2
        assert memo.lookup(3) == 3         # most recent survived

    def test_bound_never_below_one(self):
        memo = QueryPairMemo(max_payloads=0)
        memo.remember("a", 1)
        assert memo.lookup("a") == 1
        assert len(memo) == 1


class TestBoundedOutcomeMemoStatistics:
    """Eviction from RBAA's outcome memo must never drop Figure-14 counts."""

    def test_memoized_replay_survives_eviction(self):
        from repro.core.rbaa import RBAAOptions
        from repro.evaluation.harness import enumerate_query_pairs

        module = compile_source(ONE_BYTE_DISJOINT, "m")
        pairs = [(pair.a, pair.b) for pair in enumerate_query_pairs(module)]
        assert len(pairs) >= 2

        reference = RBAAAliasAnalysis(compile_source(ONE_BYTE_DISJOINT, "m"))
        memo_ref = QueryPairMemo()
        reference.query_many(pairs, memo=memo_ref)
        reference.query_many(pairs, memo=memo_ref)  # replayed batch

        tiny = RBAAAliasAnalysis(
            compile_source(ONE_BYTE_DISJOINT, "m"),
            RBAAOptions(outcome_memo_payloads=1))
        memo_tiny = QueryPairMemo()
        tiny.query_many(pairs, memo=memo_tiny)
        tiny.query_many(pairs, memo=memo_tiny)
        assert tiny._outcomes.evictions > 0  # the bound actually bit

        for field in ("queries", "no_alias", "answered_by_global",
                      "answered_by_local", "answered_by_distinct_objects"):
            assert getattr(tiny.statistics, field) \
                == getattr(reference.statistics, field)
