"""Hash-order independence of the benchmark corpus.

The generator must emit byte-identical programs in every interpreter
process, whatever ``PYTHONHASHSEED`` says — that is what lets CI gate on
benchmark records without pinning the seed.  The cross-process tests spawn
real subprocesses under different hash seeds and compare full corpus
manifests (which digest every generated source).
"""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.benchgen import (
    SUITE_PROGRAMS,
    GeneratorConfig,
    corpus_manifest,
    generate_source,
    stable_seed,
    suite_configs,
)
from repro.evaluation import scalability_configs

_SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

#: Prints the canonical manifest of the full corpus: all 22 suite programs,
#: the Figure-15 sweep and the fixed paper programs, each source digested.
_MANIFEST_SCRIPT = """
from repro.benchgen import corpus_manifest, suite_configs
from repro.evaluation import scalability_configs
from repro.evaluation.reporting import to_canonical_json
configs = suite_configs() + scalability_configs(program_count=8)
print(to_canonical_json(corpus_manifest(configs)), end="")
"""


def _manifest_under_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run([sys.executable, "-c", _MANIFEST_SCRIPT],
                            capture_output=True, text=True, env=env, check=True)
    return result.stdout


class TestCrossProcessDeterminism:
    def test_corpus_is_byte_identical_across_hash_seeds(self):
        first = _manifest_under_hash_seed("1")
        second = _manifest_under_hash_seed("2")
        assert first, "manifest subprocess produced no output"
        assert first == second
        # Every suite program's digest is covered by the comparison.
        for program in SUITE_PROGRAMS:
            assert f'"name": "{program.name}"' in first

    def test_manifest_matches_in_process_generation(self):
        configs = suite_configs() + scalability_configs(program_count=8)
        from repro.evaluation.reporting import to_canonical_json
        assert _manifest_under_hash_seed("3") == \
            to_canonical_json(corpus_manifest(configs))


class TestStableSeeding:
    def test_stable_seed_is_hash_order_independent_constant(self):
        # Pinned values: a change here means every generated program in the
        # corpus changed shape, which invalidates recorded benchmark numbers.
        assert stable_seed("allroots", 10_000) == 6485
        assert stable_seed("allroots", 10_000) == stable_seed("allroots", 10_000)
        assert stable_seed("a") != stable_seed("b")

    def test_suite_seeds_avoid_builtin_hash(self):
        for program in SUITE_PROGRAMS:
            config = program.config()
            assert config.seed == stable_seed(program.name, 10_000)

    def test_mix_iteration_order_does_not_matter(self):
        forward = {"allocator": 1.0, "strided": 2.0}
        backward = {"strided": 2.0, "allocator": 1.0}
        a = generate_source(GeneratorConfig(name="m", instances=6, seed=4, mix=forward))
        b = generate_source(GeneratorConfig(name="m", instances=6, seed=4, mix=backward))
        assert a == b


class TestSharedRngKey:
    def test_same_rng_key_means_same_idiom_stream(self):
        base = GeneratorConfig(name="p0", instances=5, seed=1, rng_key="sweep:1")
        other = GeneratorConfig(name="p1", instances=5, seed=2, rng_key="sweep:1")
        strip = lambda source: source.split("\n", 1)[1]  # noqa: E731 - drop name comment
        assert strip(generate_source(base)) == strip(generate_source(other))

    def test_smaller_programs_are_prefixes_of_larger_ones(self):
        """The Figure-15 homogeneity invariant: with a shared rng_key the
        sweep varies size only — a smaller program's generated functions are
        literally the first functions of a larger one (selection *and*
        per-instance template constants match, index by index)."""
        small = generate_source(GeneratorConfig(name="s3", instances=3,
                                                seed=1, rng_key="sweep:x"))
        large = generate_source(GeneratorConfig(name="s9", instances=9,
                                                seed=2, rng_key="sweep:x"))
        functions_of = lambda src: src.split("\n", 1)[1].split("int main")[0]  # noqa: E731
        assert functions_of(large).startswith(functions_of(small).rstrip())

    def test_scalability_sweep_varies_size_only(self):
        configs = scalability_configs(program_count=4)
        assert len({config.rng_key for config in configs}) == 1
        sizes = [config.instances for config in configs]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
