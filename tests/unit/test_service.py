"""The analysis service: session API, JSON daemon, edit scenarios."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.benchgen import edit_scenario, generate_source
from repro.benchgen.suites import SUITE_PROGRAMS
from repro.frontend import compile_source
from repro.service import AnalysisSession, ServiceError, handle_request

SRC = """
void fill(char* buf, int n) {
  int i;
  for (i = 0; i < n; i++) { buf[i] = 1; }
}
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* bytes = (char*)malloc(n);
  char* head = bytes;
  char* tail = bytes + 1;
  *head = 0;
  *tail = 1;
  fill(bytes, n);
  return 0;
}
"""

SRC_EDITED = SRC.replace("buf[i] = 1;", "buf[i] = 7; buf[i + 2] = 9;")


def _config(name):
    return next(p for p in SUITE_PROGRAMS if p.name == name).config()


def _main_pointers(session, module="m"):
    """The malloc base and its +1 offset in ``main`` (SSA names are
    pipeline-assigned, so tests discover them through the ``values`` op)."""
    values = session.values(module, "main")["values"]
    base = next(v["name"] for v in values if v["op"] == "malloc")
    # main's first ptradd indexes argv; the last one is ``bytes + 1``.
    offset = [v["name"] for v in values if v["op"] == "ptradd"][-1]
    return base, offset


class TestAnalysisSession:
    def test_load_and_query(self):
        session = AnalysisSession()
        loaded = session.load_source("m", SRC)
        assert set(loaded["functions"]) == {"fill", "main"}
        base, offset = _main_pointers(session)
        answer = session.query("m", "rbaa", "main", base, offset)
        assert answer["result"] == "no-alias"
        # Unknown access size must kill the 1-byte disjointness proof.
        answer = session.query("m", "rbaa", "main", base, offset,
                               size_a=None, size_b=None)
        assert answer["result"] == "may-alias"

    def test_query_many_and_function_sweep(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _main_pointers(session)
        batch = session.query_many("m", "rbaa", "main",
                                   [[base, offset],
                                    [base, offset, None, None]])
        assert batch["results"] == ["no-alias", "may-alias"]
        sweep = session.query_function("m", "rbaa", "fill")
        assert sweep["queries"] > 0
        assert sweep["no_alias"] == len(sweep["no_alias_indices"])

    def test_memo_survives_across_requests(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _main_pointers(session)
        session.query("m", "rbaa", "main", base, offset)
        before = session.stats("m")["memos"]["rbaa"]["hits"]
        session.query("m", "rbaa", "main", base, offset)
        after = session.stats("m")["memos"]["rbaa"]["hits"]
        assert after == before + 1

    def test_memo_payload_cap_bounds_resident_memory(self):
        session = AnalysisSession()
        session.memo_payload_cap = 0  # release before every batch
        session.load_source("m", SRC)
        base, offset = _main_pointers(session)
        first = session.query("m", "rbaa", "main", base, offset)
        second = session.query("m", "rbaa", "main", base, offset)
        assert first["result"] == second["result"] == "no-alias"
        # Payloads are dropped at the cap; only the current batch's entry
        # may linger, so a long-lived daemon cannot grow without bound.
        assert len(session._modules["m"].memos["rbaa"]) <= 1

    def test_range_queries(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        record = session.range_of("m", "fill", "n")
        assert record["range"].startswith("[")

    def test_unknown_names_raise(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _main_pointers(session)
        with pytest.raises(ServiceError):
            session.query("m", "rbaa", "nowhere", "a", "b")
        with pytest.raises(ServiceError):
            session.query("m", "rbaa", "main", base, "nothing")
        with pytest.raises(ServiceError):
            session.query("m", "voodoo", "main", base, offset)
        with pytest.raises(ServiceError):
            session.stats("ghost")

    def test_edit_takes_incremental_path(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        session.query_function("m", "rbaa")
        steps_before = session.solver_steps("m")
        edited = session.edit_source("m", SRC_EDITED)
        assert edited["reloaded"] is False
        assert edited["changed"] == ["fill"]
        assert edited["impacts"][0]["refreshed"]
        session.query_function("m", "rbaa")
        warm_delta = session.solver_steps("m") - steps_before
        # The warm path re-ran strictly fewer solver steps than a cold
        # rebuild of the edited source answering the same queries.
        cold = AnalysisSession()
        cold.load_source("m", SRC_EDITED)
        cold.query_function("m", "rbaa")
        assert warm_delta < cold.solver_steps("m")
        assert session.stats("m")["edits"] == 1

    def test_edit_answers_match_cold_rebuild(self):
        warm = AnalysisSession()
        warm.load_source("m", SRC)
        warm.query_function("m", "rbaa")
        warm.edit_source("m", SRC_EDITED)
        cold = AnalysisSession()
        cold.load_source("m", SRC_EDITED)
        for analysis in ("rbaa", "basic", "andersen", "steensgaard"):
            assert warm.query_function("m", analysis) == \
                cold.query_function("m", analysis)

    def test_structural_edit_falls_back_to_reload(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        grown = SRC + "\nvoid extra(int* p) { *p = 0; }\n"
        edited = session.edit_source("m", grown)
        assert edited["reloaded"] is True
        assert "extra" in [fn for fn in edited["functions"]]

    def test_identical_source_is_a_no_op(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        edited = session.edit_source("m", SRC)
        assert edited == {"module": "m", "changed": [], "reloaded": False,
                          "impacts": []}

    def test_load_program_and_modules_listing(self):
        session = AnalysisSession()
        session.load_program("allroots")
        listing = session.modules()
        assert listing and listing[0]["module"] == "allroots"
        session.unload("allroots")
        assert session.modules() == []


class TestDaemonProtocol:
    def test_handle_request_round_trip(self):
        session = AnalysisSession()
        assert handle_request(session, {"op": "ping", "v": 1})["pong"] is True
        loaded = handle_request(session, {"op": "load", "v": 1, "name": "m",
                                          "source": SRC})
        assert loaded["ok"] is True
        listed = handle_request(session, {"op": "values", "v": 1,
                                          "module": "m", "function": "main"})
        base = next(v["name"] for v in listed["values"] if v["op"] == "malloc")
        offset = [v["name"] for v in listed["values"]
                  if v["op"] == "ptradd"][-1]
        answer = handle_request(session, {
            "op": "query", "v": 1, "module": "m", "analysis": "rbaa",
            "function": "main", "a": base, "b": offset})
        assert answer["result"] == "no-alias"
        unknown = handle_request(session, {
            "op": "query", "v": 1, "module": "m", "analysis": "rbaa",
            "function": "main", "a": base, "b": offset,
            "size_a": "unknown", "size_b": "unknown"})
        assert unknown["result"] == "may-alias"
        stats = handle_request(session, {"op": "stats", "v": 1,
                                         "module": "m"})
        assert stats["solver_steps"] > 0
        # Dispatch never raises: unknown ops come back as structured
        # error envelopes (the pre-v1 "error" string is gone for good).
        unknown_op = handle_request(session, {"op": "warp", "v": 1, "id": 41})
        assert unknown_op["ok"] is False
        assert unknown_op["error_code"] == "unknown_op"
        assert unknown_op["id"] == 41
        assert "error" not in unknown_op

    def test_daemon_subprocess_end_to_end(self):
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        # Compilation is deterministic, so an in-process session discovers
        # the same SSA names the daemon's resident module will carry.
        scout = AnalysisSession()
        scout.load_source("m", SRC)
        base, offset = _main_pointers(scout)
        requests = [
            {"op": "ping", "v": 1},
            {"op": "load", "v": 1, "name": "m", "source": SRC},
            {"op": "query", "v": 1, "module": "m", "analysis": "rbaa",
             "function": "main", "a": base, "b": offset},
            {"op": "edit", "v": 1, "name": "m", "source": SRC_EDITED},
            {"op": "query", "v": 1, "module": "m", "analysis": "rbaa",
             "function": "main", "a": base, "b": offset},
            {"op": "nonsense", "v": 1},
            {"op": "shutdown", "v": 1},
        ]
        payload = "".join(json.dumps(r) + "\n" for r in requests)
        result = subprocess.run(
            [sys.executable, "-m", "repro.service"],
            input=payload, capture_output=True, text=True, env=env,
            timeout=120)
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line) for line in
                     result.stdout.strip().splitlines()]
        assert len(responses) == len(requests)
        assert responses[0]["pong"] is True
        assert responses[2]["result"] == "no-alias"
        assert responses[3]["changed"] == ["fill"]
        assert responses[4]["result"] == "no-alias"
        assert responses[5]["ok"] is False and "error" not in responses[5]
        assert responses[5]["error_code"] == "unknown_op"
        assert responses[6]["shutdown"] is True


class TestEditScenarios:
    def test_scenarios_are_deterministic_and_start_unedited(self):
        config = _config("fixoutput")
        first = edit_scenario(config, edits=3)
        second = edit_scenario(config, edits=3)
        assert [s.source for s in first.steps] == \
            [s.source for s in second.steps]
        assert first.steps[0].source == generate_source(config)
        assert first.steps[0].function == ""

    def test_each_step_changes_exactly_the_named_function(self):
        config = _config("allroots")
        scenario = edit_scenario(config, edits=3)
        session = AnalysisSession()
        session.load_source("m", scenario.steps[0].source)
        for step in scenario.steps[1:]:
            edited = session.edit_source("m", step.source)
            assert edited["reloaded"] is False
            assert edited["changed"] == [step.function]

    def test_steps_compile(self):
        config = _config("anagram")
        scenario = edit_scenario(config, edits=2)
        for step in scenario.steps:
            module = compile_source(step.source, config.name)
            assert module.instruction_count() > 0

    def test_distinct_seeds_give_distinct_scripts(self):
        config = _config("ft")
        a = edit_scenario(config, edits=2, seed=0)
        b = edit_scenario(config, edits=2, seed=1)
        assert [s.source for s in a.steps] != [s.source for s in b.steps]


class TestStatsCacheTelemetry:
    """The stats op surfaces every bounded cache the daemon depends on."""

    def test_stats_surface_memo_and_cache_counters(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _main_pointers(session)
        session.query("m", "rbaa", "main", base, offset)
        record = session.stats("m")
        memo = record["memos"]["rbaa"]
        assert {"hits", "misses", "evictions", "size",
                "max_payloads"} <= set(memo)
        assert memo["max_payloads"] == session.memo_payload_cap
        outcome_memo = record["rbaa_outcome_memo"]
        assert outcome_memo["misses"] >= 1
        assert outcome_memo["evictions"] == 0
        caches = record["symbolic_caches"]
        assert set(caches) == {"compare", "difference"}
        for counters in caches.values():
            assert {"size", "maxsize", "hits", "misses",
                    "evictions"} == set(counters)

    def test_memo_cap_resize_applies_to_live_memos(self):
        session = AnalysisSession()
        session.load_source("m", SRC)
        base, offset = _main_pointers(session)
        session.query("m", "rbaa", "main", base, offset)
        session.memo_payload_cap = 1
        session.query("m", "rbaa", "main", base, offset)
        assert len(session._modules["m"].memos["rbaa"]) <= 1
