"""Unit tests for the benchmark generator, suites and evaluation harness."""

import random

import pytest

from repro.benchgen import (
    GeneratorConfig,
    IDIOMS,
    SUITE_PROGRAMS,
    build_program,
    compile_figure1,
    compile_figure3,
    compile_figure10,
    generate_module,
    generate_source,
    get_idiom,
    idiom_names,
    suite_names,
)
from repro.core import RBAAAliasAnalysis
from repro.aliases import BasicAliasAnalysis
from repro.evaluation import (
    census_for_module,
    enumerate_query_pairs,
    format_table,
    pearson_correlation,
    run_queries,
    table_to_csv,
)
from repro.frontend import compile_source
from repro.ir import verify_module


class TestIdioms:
    def test_registry_lookup(self):
        assert "serialize" in idiom_names()
        assert get_idiom("strided").name == "strided"
        with pytest.raises(KeyError):
            get_idiom("nope")

    @pytest.mark.parametrize("idiom", IDIOMS, ids=lambda i: i.name)
    def test_every_idiom_compiles_standalone(self, idiom):
        """Each idiom template must produce valid mini-C that survives the pipeline."""
        source = idiom.render(0, random.Random(0)) + f"""
        int main(int argc, char** argv) {{
          int n = atoi(argv[1]);
          char* bytes = (char*)malloc(n);
          char* text = argv[2];
          int* ints = (int*)malloc(n * 4);
          float* floats = (float*)malloc(n * 4);
          double* doubles = (double*)malloc(n * 8);
          {idiom.call(0)}
          return 0;
        }}
        """
        module = compile_source(source, f"idiom_{idiom.name}")
        assert verify_module(module) == []
        assert module.instruction_count() > 0


class TestGenerator:
    def test_generation_is_deterministic(self):
        config = GeneratorConfig(name="det", instances=6, seed=11)
        assert generate_source(config) == generate_source(config)

    def test_different_seeds_differ(self):
        first = generate_source(GeneratorConfig(name="a", instances=6, seed=1))
        second = generate_source(GeneratorConfig(name="a", instances=6, seed=2))
        assert first != second

    def test_generated_module_verifies_and_scales(self):
        small = generate_module(GeneratorConfig(name="small", instances=3, seed=5))
        large = generate_module(GeneratorConfig(name="large", instances=12, seed=5))
        assert verify_module(small.module) == []
        assert verify_module(large.module) == []
        assert large.module.instruction_count() > small.module.instruction_count()
        assert large.module.pointer_count() > small.module.pointer_count()

    def test_mix_restricts_idioms(self):
        config = GeneratorConfig(name="mixed", instances=8, seed=0,
                                 mix={"allocator": 1.0})
        source = generate_source(config)
        assert "pool_alloc_" in source
        assert "serialize_" not in source


class TestSuites:
    def test_suite_covers_the_papers_programs(self):
        names = {program.name for program in SUITE_PROGRAMS}
        assert {"cfrac", "espresso", "gs", "bc", "yacr2", "allroots"} <= names
        assert len(SUITE_PROGRAMS) == 22
        assert suite_names() == ["MallocBench", "Prolangs", "PtrDist"]

    def test_program_sizes_track_paper_query_counts(self):
        by_name = {program.name: program for program in SUITE_PROGRAMS}
        assert by_name["espresso"].instances > by_name["allroots"].instances
        assert by_name["gs"].instances > by_name["anagram"].instances

    def test_build_program(self):
        program = build_program("allroots")
        assert program.name == "allroots"
        assert verify_module(program.module) == []
        with pytest.raises(KeyError):
            build_program("not-a-benchmark")


class TestPaperPrograms:
    def test_figures_compile(self):
        for module in (compile_figure1(), compile_figure3(), compile_figure10()):
            assert verify_module(module) == []
        assert compile_figure1().get_function("prepare") is not None
        assert compile_figure3().get_function("accelerate") is not None


class TestEvaluationHarness:
    def _small_module(self):
        return compile_source("""
        void f(int n) {
          char* a = (char*)malloc(n);
          char* b = (char*)malloc(n);
          a[0] = 0; b[0] = 1;
        }
        """)

    def test_enumerate_query_pairs_counts(self):
        module = self._small_module()
        pairs = list(enumerate_query_pairs(module))
        pointers = module.get_function("f").pointer_values()
        assert len(pairs) == len(pointers) * (len(pointers) - 1) // 2
        capped = list(enumerate_query_pairs(module, max_pairs_per_function=3))
        assert len(capped) == 3

    def test_run_queries_produces_counts_and_timings(self):
        module = self._small_module()
        result = run_queries("tiny", module,
                             [("rbaa", RBAAAliasAnalysis), ("basic", BasicAliasAnalysis)])
        assert result.queries > 0
        assert set(result.no_alias) == {"rbaa", "basic"}
        assert result.no_alias["rbaa"] >= result.no_alias["basic"] > 0
        assert result.percentage("rbaa") <= 100.0
        assert "answered_by_global" in result.extra["rbaa"]
        assert result.build_seconds["rbaa"] >= 0.0

    def test_census_classifies_pointers(self):
        module = compile_source("""
        void f(int n) {
          char* p = (char*)malloc(n);
          char* q = p + n;      /* symbolic offset */
          char* r = p + 4;      /* constant offset */
          *q = 0; *r = 1;
        }
        """)
        census = census_for_module("tiny", module)
        assert census.pointers >= 3
        assert census.symbolic >= 1
        assert census.numeric_only >= 1
        assert 0.0 <= census.symbolic_percentage() <= 100.0

    def test_pearson_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert pearson_correlation([1], [1]) == 0.0

    def test_reporting_formats(self):
        table = format_table(["Name", "Value"], [["a", 1], ["bb", 22]], title="T")
        assert "Name" in table and "bb" in table and table.startswith("T")
        csv_text = table_to_csv(["Name", "Value"], [["a", 1]])
        assert csv_text.splitlines()[0] == "Name,Value"
