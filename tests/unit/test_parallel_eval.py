"""Unit tests for the sharded parallel evaluation runner."""

import multiprocessing
import time

import pytest

from repro.evaluation import (
    bench_record,
    compare_bench_files,
    map_shards,
    merge_indexed,
    partition,
    resolve_jobs,
    run_parallel_precision,
    run_parallel_scalability,
    run_precision_experiment,
    run_scalability_experiment,
    strip_volatile,
)
from repro.evaluation.ablation import run_ablation
from repro.evaluation.parallel import JOBS_ENV, diff_records, write_json

PROGRAMS = ["allroots", "anagram"]
MAX_PAIRS = 100


class TestPartition:
    def test_round_robin_layout(self):
        assert partition([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]
        assert partition(list(range(6)), 3) == [[0, 3], [1, 4], [2, 5]]

    def test_covers_every_item_exactly_once(self):
        items = list(range(17))
        for shards in (1, 2, 3, 5, 17):
            split = partition(items, shards)
            assert sorted(item for shard in split for item in shard) == items
            assert all(shard for shard in split)  # no empty shards

    def test_more_shards_than_items_clamps(self):
        assert partition([1, 2], 8) == [[1], [2]]
        assert partition([], 4) == []

    def test_merge_indexed_restores_corpus_order(self):
        items = [(index, f"value{index}") for index in range(7)]
        shards = partition(items, 3)
        assert merge_indexed(reversed(shards)) == [f"value{i}" for i in range(7)]


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(2) == 2

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_defaults_and_garbage(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv(JOBS_ENV, "not-a-number")
        assert resolve_jobs() == 1
        assert resolve_jobs(0) == 1  # clamped


def _sleep_worker(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


class TestMapShards:
    def test_serial_path_preserves_order(self):
        assert map_shards(lambda x: x * x, [3, 1, 2], jobs=1) == [9, 1, 4]

    @pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                        reason="worker pickling relies on fork-inherited modules")
    def test_workers_actually_overlap(self):
        """Four 0.4s sleeps across 4 workers must take well under the 1.6s a
        serial run needs — this holds even on a single-core machine, so it
        proves the fan-out is real and not a disguised serial loop."""
        delays = [0.4, 0.4, 0.4, 0.4]
        start = time.perf_counter()
        assert map_shards(_sleep_worker, delays, jobs=4) == delays
        assert time.perf_counter() - start < 1.2


@pytest.fixture(scope="module")
def serial_precision():
    return run_precision_experiment(PROGRAMS, max_pairs_per_function=MAX_PAIRS)


@pytest.fixture(scope="module")
def serial_scalability():
    return run_scalability_experiment(program_count=3)


class TestParallelPrecision:
    def test_jobs1_is_the_serial_path(self, serial_precision):
        report = run_parallel_precision(PROGRAMS, max_pairs_per_function=MAX_PAIRS,
                                        jobs=1)
        assert strip_volatile(bench_record(report)) == \
            strip_volatile(bench_record(serial_precision))

    def test_jobs2_matches_serial_modulo_wall_time(self, serial_precision):
        report = run_parallel_precision(PROGRAMS, max_pairs_per_function=MAX_PAIRS,
                                        jobs=2)
        assert [result.program for result in report.results] == \
            [result.program for result in serial_precision.results]
        assert strip_volatile(bench_record(report)) == \
            strip_volatile(bench_record(serial_precision))


class TestParallelScalability:
    def test_jobs2_merges_in_corpus_order(self, serial_scalability):
        report = run_parallel_scalability(program_count=3, jobs=2)
        assert [point.name for point in report.points] == \
            [point.name for point in serial_scalability.points]

    def test_solver_steps_survive_the_merge(self, serial_scalability):
        report = run_parallel_scalability(program_count=3, jobs=2)
        for merged, serial in zip(report.points, serial_scalability.points):
            assert merged.instructions == serial.instructions
            assert merged.pointers == serial.pointers
            assert merged.solver_steps == serial.solver_steps
        assert report.total_solver_steps() == serial_scalability.total_solver_steps()

    def test_experiment_jobs_knob_delegates(self, serial_scalability):
        report = run_scalability_experiment(program_count=3, jobs=2)
        assert strip_volatile(bench_record(scalability=report)) == \
            strip_volatile(bench_record(scalability=serial_scalability))


class TestParallelAblation:
    def test_jobs2_totals_match_serial(self):
        serial = run_ablation(PROGRAMS, max_pairs_per_function=MAX_PAIRS)
        parallel = run_ablation(PROGRAMS, max_pairs_per_function=MAX_PAIRS, jobs=2)
        assert parallel == serial


class TestBenchRecords:
    def test_strip_volatile_removes_exactly_wall_time(self, serial_scalability,
                                                      serial_precision):
        record = bench_record(serial_precision, serial_scalability,
                              run_info={"jobs": 4})
        stripped = strip_volatile(record)
        assert "run" not in stripped
        assert "correlations" not in stripped["scalability"]
        assert "instructions_per_second" not in stripped["scalability"]
        assert "analysis_seconds" not in stripped["scalability"]["points"][0]
        program = stripped["precision"]["programs"][0]
        assert "query_seconds" not in program and "build_seconds" not in program
        # The deterministic cost signals must survive.
        assert stripped["scalability"]["points"][0]["solver_steps"] > 0
        assert stripped["scalability"]["totals"]["solver_steps"] > 0
        assert program["queries"] > 0 and program["no_alias"]
        assert program["engine"]["builds"] > 0
        totals = stripped["precision"]["totals"]["engine"]
        assert totals["builds"] == sum(p["engine"]["builds"]
                                       for p in stripped["precision"]["programs"])

    def test_diff_records_localises_differences(self):
        a = {"x": {"y": [1, 2]}, "z": 1}
        b = {"x": {"y": [1, 3]}, "z": 1}
        assert diff_records(a, b) == ["$.x.y[1]: 2 != 3"]
        assert diff_records(a, a) == []

    def test_compare_bench_files(self, tmp_path, serial_scalability):
        record = bench_record(scalability=serial_scalability,
                              run_info={"created_at": "now"})
        # A different wall-time profile of the same results must compare clean.
        other = bench_record(scalability=run_parallel_scalability(program_count=3,
                                                                  jobs=2),
                             run_info={"created_at": "later"})
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        write_json(str(path_a), record)
        write_json(str(path_b), other)
        assert compare_bench_files(str(path_a), str(path_b)) == []
        # A genuine (non-time) difference must be reported.
        other["scalability"]["totals"]["solver_steps"] += 1
        write_json(str(path_b), other)
        assert compare_bench_files(str(path_a), str(path_b)) != []
