"""Structural invariants of e-SSA construction (:mod:`repro.transforms.essa`).

After σ insertion, the IR must satisfy the properties every sparse
analysis relies on: each renamed use is dominated by its σ definition,
σs sit on single-predecessor edges right after the φs, and the renaming
never leaks a σ to a path its guarding branch does not dominate.
"""

import pytest

from repro.analysis.dominance import DominatorTree
from repro.benchgen import build_program
from repro.frontend import compile_source
from repro.ir.instructions import PhiInst, SigmaInst
from repro.ir.verifier import verify_module

LOOP_SOURCE = """
int clamp_sum(int* data, int n, int limit) {
  int i;
  int total = 0;
  for (i = 0; i < n; i++) {
    if (data[i] < limit) {
      total += data[i];
    }
  }
  return total;
}

int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  int* xs = (int*)malloc(n * 4);
  return clamp_sum(xs, n, 100);
}
"""


def sigma_functions(module):
    for function in module.defined_functions():
        if any(isinstance(inst, SigmaInst) for inst in function.instructions()):
            yield function


def assert_essa_invariants(module):
    """All e-SSA structural invariants, applied to every σ of a module."""
    saw_sigma = False
    for function in module.defined_functions():
        dom_tree = DominatorTree.compute(function)
        for block in function.blocks:
            # σs appear only in the φ/σ prefix of a block.
            prefix = True
            for inst in block.instructions:
                if isinstance(inst, (PhiInst, SigmaInst)):
                    assert prefix, (
                        f"{inst!r} appears after ordinary instructions "
                        f"in {block.label()}")
                else:
                    prefix = False
            for inst in block.instructions:
                if not isinstance(inst, SigmaInst):
                    continue
                saw_sigma = True
                # σ lives at the top of a single-predecessor edge target.
                assert len(block.predecessors()) == 1, (
                    f"{inst!r} sits in {block.label()} with "
                    f"{len(block.predecessors())} predecessors")
                # The branch block that created the σ is the predecessor.
                if inst.origin_block is not None:
                    assert block.predecessors() == [inst.origin_block]
                # Every use of the σ is dominated by its definition.
                for use in inst.uses:
                    user = use.user
                    if isinstance(user, PhiInst):
                        incoming = user.incoming_blocks[use.index]
                        assert dom_tree.dominates(block, incoming), (
                            f"φ use of {inst!r} via {incoming.label()} "
                            f"is not dominated by {block.label()}")
                    else:
                        assert user.parent is not None
                        assert dom_tree.dominates(block, user.parent), (
                            f"use of {inst!r} in {user.parent.label()} "
                            f"is not dominated by {block.label()}")
                # The σ still renames a value of the same type.
                assert inst.source.type == inst.type
    return saw_sigma


def test_loop_program_satisfies_essa_invariants():
    module = compile_source(LOOP_SOURCE, "essa-loop")
    assert assert_essa_invariants(module), "expected σs in the loop program"


def test_sigma_sources_dominate_their_sigmas():
    """The renamed value is available on every path into the σ's block."""
    module = compile_source(LOOP_SOURCE, "essa-loop")
    checked = 0
    for function in sigma_functions(module):
        dom_tree = DominatorTree.compute(function)
        for inst in function.instructions():
            if not isinstance(inst, SigmaInst):
                continue
            source_block = getattr(inst.source, "parent", None)
            if isinstance(source_block, type(inst.parent)):
                checked += 1
                assert dom_tree.dominates(source_block, inst.parent), (
                    f"{inst!r} renames a value defined in "
                    f"{source_block.label()} that does not dominate it")
    assert checked > 0


@pytest.mark.parametrize("name", ["allroots", "fixoutput", "ft", "ks", "anagram"])
def test_corpus_programs_satisfy_essa_invariants(name):
    module = build_program(name).module
    assert assert_essa_invariants(module)
    assert verify_module(module, raise_on_error=False) == []


def test_sigma_count_matches_transform_report():
    from repro.transforms.essa import build_essa
    from repro.transforms.pipeline import PipelineOptions

    source = LOOP_SOURCE
    module = compile_source(source, "essa-count",
                            pipeline_options=PipelineOptions(build_essa=False))
    created = build_essa(module)
    found = sum(1 for inst in module.instructions() if isinstance(inst, SigmaInst))
    assert created == found > 0
    assert assert_essa_invariants(module)
