"""Malformed-input behaviour of the single-pass scanner.

Every rejection the lexer can produce must be a positioned
:class:`~repro.frontend.lexer.LexerError` — never a bare ``ValueError``
escaping from ``int()``/``float()`` conversions.  The second half checks the
contract end to end: a bad source reaching the serving layer comes back as a
``bad_request`` envelope, never ``internal_error``.
"""

import pytest

from repro.frontend.lexer import KEYWORDS, LexerError, TokenKind, tokenize
from repro.service.protocol import handle_payload, make_request
from repro.service.session import AnalysisSession


def _lex_error(source: str) -> LexerError:
    with pytest.raises(LexerError) as excinfo:
        tokenize(source)
    return excinfo.value


class TestMalformedLiterals:
    """The three literal-lexing crash bugs, now positioned LexerErrors."""

    def test_hex_literal_without_digits(self):
        # Used to raise bare ValueError from int("0x", 16).
        error = _lex_error("int x = 0x;")
        assert (error.line, error.column) == (1, 9)
        assert "0x" in str(error)

    def test_hex_literal_without_digits_before_suffix(self):
        error = _lex_error("int x = 0xUL;")
        assert (error.line, error.column) == (1, 9)

    def test_multi_dot_float(self):
        # Used to raise bare ValueError from float("1.2.3").
        error = _lex_error("float f = 1.2.3;")
        assert (error.line, error.column) == (1, 11)
        assert "1.2.3" in str(error)

    def test_unknown_escape_in_char_literal(self):
        # Used to be silently accepted as the raw character.
        error = _lex_error(r"char c = '\q';")
        assert (error.line, error.column) == (1, 10)
        assert r"\q" in str(error)

    def test_unknown_escape_in_string_literal(self):
        error = _lex_error(r'char *s = "a\qb";')
        assert (error.line, error.column) == (1, 11)
        assert r"\q" in str(error)

    def test_error_position_tracks_lines(self):
        error = _lex_error("int a;\nint b;\nint c = 0x;\n")
        assert (error.line, error.column) == (3, 9)

    @pytest.mark.parametrize("source", [
        "int x = 0x;", "float f = 1.2.3;", r"char c = '\q';",
        r'char *s = "\m";', "int x = 0xUL;",
    ])
    def test_rejections_are_lexer_errors_not_value_errors(self, source):
        # LexerError does not derive from ValueError: a bare conversion
        # error escaping the scanner would fail this raises() check.
        assert not issubclass(LexerError, ValueError)
        with pytest.raises(LexerError):
            tokenize(source)


class TestUnterminatedConstructs:
    """Already-handled rejections keep their positioned errors."""

    @pytest.mark.parametrize("source, line, column", [
        ("/* never closed", 1, 1),
        ("int a;\n/* still open\n", 2, 1),
        ("char c = 'a", 1, 10),
        ('char *s = "abc', 1, 11),
        ("char c = '\\", 1, 10),
    ])
    def test_unterminated(self, source, line, column):
        error = _lex_error(source)
        assert (error.line, error.column) == (line, column)

    def test_unexpected_character(self):
        error = _lex_error("int a;\nint @;")
        assert (error.line, error.column) == (2, 5)


class TestWellFormedLexing:
    """Behaviour the scanner rewrite must preserve (and the suffix fix)."""

    def test_hex_literal_consumes_integer_suffixes(self):
        # 0x10UL used to lex as INT(0x10) + IDENT(UL).
        tokens = tokenize("int x = 0x10UL;")
        kinds = [token.kind for token in tokens]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT,
                         TokenKind.INT, TokenKind.PUNCT, TokenKind.EOF]
        literal = tokens[3]
        assert literal.text == "0x10UL"
        assert literal.value == 0x10

    def test_hex_digits_may_spell_f(self):
        # f/F are hex digits, not float suffixes, inside a hex literal.
        tokens = tokenize("int x = 0x1f;")
        assert tokens[3].kind == TokenKind.INT
        assert tokens[3].value == 0x1F

    def test_decimal_suffixes_and_float_suffix(self):
        tokens = tokenize("long a = 10L; float b = 2.5f; int c = 7u;")
        values = [t.value for t in tokens if t.kind in (TokenKind.INT, TokenKind.FLOAT)]
        assert values == [10, 2.5, 7]

    def test_known_escapes(self):
        tokens = tokenize(r"""char a = '\n'; char b = '\0'; char *s = "hi\t";""")
        char_values = [t.value for t in tokens if t.kind == TokenKind.CHAR]
        assert char_values == [ord("\n"), 0]
        (string,) = [t for t in tokens if t.kind == TokenKind.STRING]
        assert string.value == "hi\t"

    def test_punctuator_maximal_munch(self):
        source = "a <<= b >>= c ... -> ++ -- << >> <= >= == != && || += <"
        texts = [t.text for t in tokenize(source) if t.kind == TokenKind.PUNCT]
        assert texts == ["<<=", ">>=", "...", "->", "++", "--", "<<", ">>",
                        "<=", ">=", "==", "!=", "&&", "||", "+=", "<"]

    def test_positions_are_one_based_per_line(self):
        tokens = tokenize("int a;\n  int b;")
        ident_a = tokens[1]
        ident_b = tokens[4]
        assert (ident_a.line, ident_a.column) == (1, 5)
        assert (ident_b.line, ident_b.column) == (2, 7)

    def test_eof_token_position(self):
        tokens = tokenize("int a;\n")
        eof = tokens[-1]
        assert eof.kind == TokenKind.EOF
        assert (eof.line, eof.column) == (2, 1)

    def test_keywords_and_identifier_interning(self):
        tokens = tokenize("int foo; int foo;")
        assert tokens[0].kind == TokenKind.KEYWORD
        assert "int" in KEYWORDS
        first, second = tokens[1], tokens[4]
        # Interned spellings: repeated identifiers share one string object.
        assert first.text is second.text

    def test_comments_and_preprocessor_lines_skipped(self):
        tokens = tokenize("#include <x.h>\n// line\n/* block\nstill */ int a;")
        assert [t.kind for t in tokens] == [TokenKind.KEYWORD, TokenKind.IDENT,
                                            TokenKind.PUNCT, TokenKind.EOF]
        assert tokens[0].line == 4


class TestServiceErrorContract:
    """A bad source at the serving layer: bad_request, never internal_error."""

    @pytest.mark.parametrize("source", [
        "int x = 0x;",
        "float f = 1.2.3;",
        r"char c = '\q';",
    ])
    def test_load_with_crashing_source_is_bad_request(self, source):
        session = AnalysisSession()
        envelope = handle_payload(
            session, make_request("load", id=1, name="bad", source=source))
        assert envelope["ok"] is False
        assert envelope["error_code"] == "bad_request"
        assert envelope["error_code"] != "internal_error"
        # The envelope carries the positioned compile diagnostic.
        assert "LexerError" in envelope["message"]
        assert "line" in envelope["message"]

    def test_load_with_parse_error_is_bad_request(self):
        session = AnalysisSession()
        envelope = handle_payload(
            session, make_request("load", id=2, name="bad", source="int main( {"))
        assert envelope["ok"] is False
        assert envelope["error_code"] == "bad_request"

    def test_well_formed_load_still_succeeds(self):
        session = AnalysisSession()
        envelope = handle_payload(
            session,
            make_request("load", id=3, name="ok",
                         source="int main(void) { return 0; }"))
        assert envelope["ok"] is True
