"""Unit tests for the IR transforms: mem2reg, e-SSA, region renaming, simplify."""


from repro.frontend import compile_source
from repro.ir import (
    ConstantInt,
    FunctionType,
    INT32,
    IRBuilder,
    Module,
    PointerType,
    INT8,
    VOID,
    verify_module,
)
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    LoadInst,
    PhiInst,
    PtrAddInst,
    SigmaInst,
    StoreInst,
)
from repro.transforms import (
    PipelineOptions,
    build_essa_function,
    canonical_bases,
    eliminate_dead_code_in_function,
    fold_constants_in_function,
    is_promotable,
    prepare_module,
    promote_allocas_in_function,
    rename_region_pointers_in_function,
    simplify_module,
    split_critical_edges,
)


def compile_raw(source: str):
    """Compile without running the preparation pipeline."""
    return compile_source(source, prepare=False)


class TestMem2Reg:
    def test_scalar_slot_is_promotable(self):
        module = compile_raw("int f(int n) { int x = n + 1; return x; }")
        fn = module.get_function("f")
        allocas = [inst for inst in fn.instructions() if isinstance(inst, AllocaInst)]
        assert allocas and all(is_promotable(a) for a in allocas)

    def test_array_slot_is_not_promotable(self):
        module = compile_raw("int f(int n) { int buf[8]; buf[0] = n; return buf[0]; }")
        fn = module.get_function("f")
        arrays = [inst for inst in fn.instructions()
                  if isinstance(inst, AllocaInst) and inst.allocated_type.is_aggregate()]
        assert arrays and not any(is_promotable(a) for a in arrays)

    def test_escaping_slot_is_not_promotable(self):
        module = compile_raw("""
        void sink(int* p);
        int f(int n) { int x = n; sink(&x); return x; }
        """)
        fn = module.get_function("f")
        slot = next(inst for inst in fn.instructions()
                    if isinstance(inst, AllocaInst) and inst.name.startswith("x"))
        assert not is_promotable(slot)

    def test_promotion_removes_loads_and_stores(self):
        module = compile_raw("int f(int n) { int x = 0; x = n + 2; return x; }")
        fn = module.get_function("f")
        promoted = promote_allocas_in_function(fn)
        assert promoted >= 1
        remaining = [inst for inst in fn.instructions()
                     if isinstance(inst, (LoadInst, StoreInst))]
        assert remaining == []
        verify_module(module)

    def test_promotion_inserts_phi_for_branchy_assignment(self):
        module = compile_raw("""
        int f(int n) {
          int x;
          if (n > 0) { x = 1; } else { x = 2; }
          return x;
        }
        """)
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        phis = [inst for inst in fn.instructions() if isinstance(inst, PhiInst)]
        assert len(phis) == 1
        assert {v.value for v in phis[0].operands if isinstance(v, ConstantInt)} == {1, 2}

    def test_loop_counter_gets_phi(self):
        module = compile_raw("""
        int f(int n) {
          int i; int total = 0;
          for (i = 0; i < n; i++) { total = total + i; }
          return total;
        }
        """)
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        verify_module(module)
        phis = [inst for inst in fn.instructions() if isinstance(inst, PhiInst)]
        assert len(phis) >= 2  # i and total


class TestESSA:
    def test_sigma_inserted_on_both_edges(self):
        module = compile_raw("int f(int a, int b) { if (a < b) { return a; } return b; }")
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        created = build_essa_function(fn)
        assert created >= 2
        sigmas = [inst for inst in fn.instructions() if isinstance(inst, SigmaInst)]
        # Both operands of the compare are constrained on both edges.
        assert len(sigmas) == 4
        verify_module(module)

    def test_sigma_bounds_encode_the_comparison(self):
        module = compile_raw("int f(int a, int b) { if (a < b) { return a; } return b; }")
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        build_essa_function(fn)
        upper_constrained = [s for s in fn.instructions()
                             if isinstance(s, SigmaInst) and s.upper is not None
                             and s.upper_adjust == -1]
        lower_constrained = [s for s in fn.instructions()
                             if isinstance(s, SigmaInst) and s.lower is not None
                             and s.lower_adjust == +1]
        assert upper_constrained and lower_constrained

    def test_dominated_uses_are_rewritten(self):
        module = compile_raw("""
        int f(int a, int b) {
          int r = 0;
          if (a < b) { r = a + 1; }
          return r;
        }
        """)
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        build_essa_function(fn)
        # The a + 1 in the guarded block must use the sigma, not the raw argument.
        adds = [inst for inst in fn.instructions()
                if isinstance(inst, BinaryInst) and inst.opcode == "add"
                and isinstance(inst.rhs, ConstantInt) and inst.rhs.value == 1]
        assert adds and isinstance(adds[0].lhs, SigmaInst)

    def test_equality_branch_gets_point_constraint(self):
        module = compile_raw("int f(int a, int b) { if (a == b) { return a; } return 0; }")
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        build_essa_function(fn)
        sigmas = [s for s in fn.instructions() if isinstance(s, SigmaInst)]
        both_bounds = [s for s in sigmas if s.lower is not None and s.upper is not None]
        assert both_bounds

    def test_critical_edge_splitting(self):
        module = compile_raw("""
        int f(int a, int b) {
          int r = 0;
          while (a < b) { a = a + 1; }
          return a;
        }
        """)
        fn = module.get_function("f")
        promote_allocas_in_function(fn)
        blocks_before = len(fn.blocks)
        split = split_critical_edges(fn)
        assert len(fn.blocks) == blocks_before + split
        verify_module(module)

    def test_pipeline_runs_all_stages(self):
        module = compile_raw("int f(int a, int b) { if (a < b) { return a; } return b; }")
        result = prepare_module(module)
        assert result.promoted_allocas >= 1
        assert result.sigmas_created >= 2
        assert "verify" in result.stages_run

    def test_pipeline_options_disable_stages(self):
        module = compile_raw("int f(int a, int b) { if (a < b) { return a; } return b; }")
        result = prepare_module(module, PipelineOptions(build_essa=False))
        assert result.sigmas_created == 0
        assert "essa" not in result.stages_run


class TestRegionRename:
    def _function_with_two_indexed_stores(self):
        module = Module("m")
        fn = module.create_function(
            "f", FunctionType(VOID, [PointerType(INT8), INT32]), ["p", "i"])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        p, i = fn.args
        first = builder.ptradd(p, i, scale=4, offset=0, name="a0")
        second = builder.ptradd(p, i, scale=4, offset=4, name="a1")
        builder.store(ConstantInt(1), first)
        builder.store(ConstantInt(2), second)
        builder.ret()
        return module, fn

    def test_offsets_share_a_canonical_base(self):
        module, fn = self._function_with_two_indexed_stores()
        created = rename_region_pointers_in_function(fn)
        assert created == 0  # the zero-offset ptradd already is the canonical base
        bases = canonical_bases(fn)
        assert len(bases) == 1
        # The +4 computation is now expressed as canonical base + 4.
        rewritten = [inst for inst in fn.instructions()
                     if isinstance(inst, PtrAddInst) and inst.index is None and inst.offset == 4]
        assert rewritten and rewritten[0].base is bases[0]
        verify_module(module)

    def test_canonical_base_created_when_missing(self):
        module = Module("m")
        fn = module.create_function(
            "f", FunctionType(VOID, [PointerType(INT8), INT32]), ["p", "i"])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        p, i = fn.args
        only = builder.ptradd(p, i, scale=2, offset=6, name="a")
        builder.store(ConstantInt(0), only)
        builder.ret()
        created = rename_region_pointers_in_function(fn)
        assert created == 1
        assert len(canonical_bases(fn)) == 1
        verify_module(module)


class TestSimplify:
    def test_constant_folding(self):
        module = Module("m")
        fn = module.create_function("f", FunctionType(INT32, []), [])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        summed = builder.add(ConstantInt(2), ConstantInt(3))
        doubled = builder.mul(summed, ConstantInt(4))
        builder.ret(doubled)
        folds = fold_constants_in_function(fn)
        assert folds == 2
        ret = fn.blocks[0].terminator
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 20

    def test_identity_folding(self):
        module = Module("m")
        fn = module.create_function("f", FunctionType(INT32, [INT32]), ["n"])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        same = builder.add(fn.args[0], ConstantInt(0))
        builder.ret(same)
        fold_constants_in_function(fn)
        assert fn.blocks[0].terminator.value is fn.args[0]

    def test_icmp_folding(self):
        module = Module("m")
        fn = module.create_function("f", FunctionType(INT32, []), [])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        cmp = builder.icmp("slt", ConstantInt(1), ConstantInt(2))
        builder.ret(cmp)
        fold_constants_in_function(fn)
        assert fn.blocks[0].terminator.value.value == 1

    def test_dead_code_elimination(self):
        module = Module("m")
        fn = module.create_function("f", FunctionType(INT32, [INT32]), ["n"])
        entry = fn.append_block("entry")
        builder = IRBuilder(entry)
        builder.add(fn.args[0], ConstantInt(1))  # dead
        builder.mul(fn.args[0], ConstantInt(2))  # dead
        builder.ret(fn.args[0])
        removed = eliminate_dead_code_in_function(fn)
        assert removed == 2
        assert fn.instruction_count() == 1

    def test_dce_preserves_side_effects(self):
        module = compile_raw("""
        void f(char* p, int n) { *p = n; malloc(n); }
        """)
        fn = module.get_function("f")
        eliminate_dead_code_in_function(fn)
        stores = [inst for inst in fn.instructions() if isinstance(inst, StoreInst)]
        mallocs = [inst for inst in fn.instructions() if inst.opcode == "malloc"]
        assert stores and mallocs

    def test_simplify_module_runs_everywhere(self):
        module = compile_raw("""
        int a() { return 1 + 2; }
        int b() { return 3 * 0; }
        """)
        assert simplify_module(module) >= 2
