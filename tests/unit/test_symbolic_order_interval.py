"""Unit tests for the symbolic partial order and the SymbRanges lattice."""

import pytest

from repro.symbolic import (
    EMPTY_INTERVAL,
    NEG_INF,
    Ordering,
    POS_INF,
    SymbolicInterval,
    TOP_INTERVAL,
    compare,
    limit_interval,
    sym,
    sym_max,
    sym_min,
)
from repro.symbolic.order import (
    definitely_eq,
    definitely_ge,
    definitely_gt,
    definitely_le,
    definitely_lt,
    definitely_ne,
)

N = sym("N")
M = sym("M")
K = sym("k")


class TestCompare:
    @pytest.mark.parametrize("a, b, expected", [
        (1, 2, Ordering.LESS),
        (2, 1, Ordering.GREATER),
        (3, 3, Ordering.EQUAL),
        (N, N + 1, Ordering.LESS),
        (N + 1, N, Ordering.GREATER),
        (N, N, Ordering.EQUAL),
        (N, M, Ordering.UNKNOWN),
        (N, 0, Ordering.UNKNOWN),
        (2 * N, N, Ordering.UNKNOWN),
        (NEG_INF, N, Ordering.LESS),
        (N, POS_INF, Ordering.LESS),
        (POS_INF, N, Ordering.GREATER),
        (NEG_INF, POS_INF, Ordering.LESS),
    ])
    def test_basic_orderings(self, a, b, expected):
        assert compare(a, b) is expected

    def test_min_below_its_arms(self):
        assert definitely_le(sym_min(N, M), N)
        assert definitely_le(sym_min(N, M), M)

    def test_max_above_its_arms(self):
        assert definitely_ge(sym_max(N, M), N)
        assert definitely_ge(sym_max(N, M), M)

    def test_min_strictly_below_larger_value(self):
        assert definitely_lt(sym_min(N - 1, M), N)

    def test_min_vs_max_through_common_symbol(self):
        # min(N-1, …) <= N-1 < N <= max(N, …)
        assert definitely_lt(sym_min(N - 1, sym_max(0, N + 1)), sym_max(0, N))

    def test_value_below_max_arm(self):
        assert definitely_le(N, sym_max(N, M))
        assert definitely_lt(N - 1, sym_max(N, M))

    def test_value_vs_min_requires_both_arms(self):
        assert not definitely_le(N, sym_min(N + 1, M))  # unknown vs M
        assert definitely_le(N, sym_min(N + 1, N + 2))

    def test_unknown_is_not_a_claim(self):
        assert not definitely_lt(N, M)
        assert not definitely_gt(N, M)
        assert not definitely_eq(N, M)
        assert not definitely_ne(N, M)

    def test_definitely_ne_for_strict_orderings(self):
        assert definitely_ne(N, N + 2)
        assert definitely_ne(1, 2)


class TestIntervalBasics:
    def test_point_interval(self):
        interval = SymbolicInterval.point(N)
        assert interval.lower == N and interval.upper == N
        assert not interval.is_empty

    def test_empty_interval_has_no_bounds(self):
        assert EMPTY_INTERVAL.is_empty
        with pytest.raises(ValueError):
            _ = EMPTY_INTERVAL.lower

    def test_top_interval(self):
        assert TOP_INTERVAL.is_top
        assert TOP_INTERVAL.lower == NEG_INF and TOP_INTERVAL.upper == POS_INF

    def test_is_constant_and_symbolic(self):
        assert SymbolicInterval(0, 5).is_constant()
        assert not SymbolicInterval(0, N).is_constant()
        assert SymbolicInterval(0, N).is_symbolic()
        assert not SymbolicInterval(0, 5).is_symbolic()

    def test_symbols(self):
        assert SymbolicInterval(N, M + 1).symbols() == {"N", "M"}

    def test_equality_and_hash(self):
        assert SymbolicInterval(0, N) == SymbolicInterval(0, N)
        assert hash(SymbolicInterval(0, N)) == hash(SymbolicInterval(0, N))
        assert SymbolicInterval(0, N) != SymbolicInterval(1, N)
        assert EMPTY_INTERVAL == SymbolicInterval.empty()


class TestIntervalLattice:
    def test_join_with_empty_is_identity(self):
        interval = SymbolicInterval(0, N)
        assert EMPTY_INTERVAL.join(interval) == interval
        assert interval.join(EMPTY_INTERVAL) == interval

    def test_join_takes_min_and_max(self):
        joined = SymbolicInterval(0, 3).join(SymbolicInterval(5, 9))
        assert joined == SymbolicInterval(0, 9)

    def test_join_with_top_is_top(self):
        assert SymbolicInterval(0, 1).join(TOP_INTERVAL).is_top

    def test_meet_disjoint_is_empty(self):
        assert SymbolicInterval(0, 3).meet(SymbolicInterval(5, 9)).is_empty
        assert SymbolicInterval(0, N - 1).meet(SymbolicInterval(N, N + K)).is_empty

    def test_meet_overlapping(self):
        met = SymbolicInterval(0, N + 1).meet(SymbolicInterval(1, N + 2))
        assert met == SymbolicInterval(1, N + 1)

    def test_meet_with_top_is_identity(self):
        interval = SymbolicInterval(0, N)
        assert interval.meet(TOP_INTERVAL) == interval
        assert TOP_INTERVAL.meet(interval) == interval

    def test_contains_interval(self):
        assert SymbolicInterval(0, 10).contains_interval(SymbolicInterval(2, 5))
        assert not SymbolicInterval(2, 5).contains_interval(SymbolicInterval(0, 10))
        assert SymbolicInterval(0, N).contains_interval(SymbolicInterval(1, N - 1))

    def test_join_all(self):
        total = SymbolicInterval.join_all(
            [SymbolicInterval(0, 1), SymbolicInterval(4, 5), SymbolicInterval(2, 2)])
        assert total == SymbolicInterval(0, 5)
        assert SymbolicInterval.join_all([]).is_empty


class TestWideningNarrowing:
    def test_widen_identical_is_stable(self):
        interval = SymbolicInterval(0, N)
        assert interval.widen(interval) == interval

    def test_widen_growing_upper_goes_to_infinity(self):
        widened = SymbolicInterval(0, 1).widen(SymbolicInterval(0, 5))
        assert widened == SymbolicInterval(0, POS_INF)

    def test_widen_shrinking_lower_goes_to_minus_infinity(self):
        widened = SymbolicInterval(0, 5).widen(SymbolicInterval(-2, 5))
        assert widened == SymbolicInterval(NEG_INF, 5)

    def test_widen_both_directions(self):
        widened = SymbolicInterval(0, 0).widen(SymbolicInterval(-1, 1))
        assert widened.is_top

    def test_widen_symbolic_upper(self):
        widened = SymbolicInterval(0, N).widen(SymbolicInterval(0, N + 1))
        assert widened == SymbolicInterval(0, POS_INF)

    def test_narrow_refines_infinite_bounds_only(self):
        narrowed = SymbolicInterval(0, POS_INF).narrow(SymbolicInterval(0, N - 1))
        assert narrowed == SymbolicInterval(0, N - 1)
        unchanged = SymbolicInterval(0, 7).narrow(SymbolicInterval(1, 5))
        assert unchanged == SymbolicInterval(0, 7)

    def test_widen_from_empty_adopts_new(self):
        assert EMPTY_INTERVAL.widen(SymbolicInterval(1, 2)) == SymbolicInterval(1, 2)


class TestIntervalArithmetic:
    def test_shift(self):
        assert SymbolicInterval(0, N).shift(2) == SymbolicInterval(2, N + 2)

    def test_add_and_sub(self):
        a = SymbolicInterval(0, 2)
        b = SymbolicInterval(N, N + 1)
        assert a.add(b) == SymbolicInterval(N, N + 3)
        assert b.sub(a) == SymbolicInterval(N - 2, N + 1)

    def test_negate(self):
        assert SymbolicInterval(1, N).negate() == SymbolicInterval(-N, -1)

    def test_scale_positive_and_negative(self):
        assert SymbolicInterval(1, N).scale(4) == SymbolicInterval(4, 4 * N)
        assert SymbolicInterval(1, N).scale(-1) == SymbolicInterval(-N, -1)
        assert SymbolicInterval(1, N).scale(0) == SymbolicInterval(0, 0)

    def test_mul_by_point_interval(self):
        assert SymbolicInterval(1, N).mul(SymbolicInterval.point(3)) == SymbolicInterval(3, 3 * N)

    def test_mul_unknown_is_top(self):
        assert SymbolicInterval(1, N).mul(SymbolicInterval(0, M)).is_top

    def test_clamping(self):
        assert SymbolicInterval(0, POS_INF).clamp_upper(N - 1) == SymbolicInterval(0, N - 1)
        assert SymbolicInterval(NEG_INF, N).clamp_lower(0) == SymbolicInterval(0, N)

    def test_empty_propagates(self):
        assert EMPTY_INTERVAL.shift(3).is_empty
        assert EMPTY_INTERVAL.add(SymbolicInterval(0, 1)).is_empty


class TestDisjointness:
    def test_constant_disjoint(self):
        assert SymbolicInterval(0, 3).definitely_disjoint(SymbolicInterval(4, 9))
        assert not SymbolicInterval(0, 4).definitely_disjoint(SymbolicInterval(4, 9))

    def test_symbolic_disjoint(self):
        first = SymbolicInterval(0, N - 1)
        second = SymbolicInterval(N, N + K)
        assert first.definitely_disjoint(second)
        assert second.definitely_disjoint(first)

    def test_unknown_is_not_disjoint(self):
        assert not SymbolicInterval(0, N).definitely_disjoint(SymbolicInterval(M, M + 1))

    def test_empty_is_disjoint_from_everything(self):
        assert EMPTY_INTERVAL.definitely_disjoint(TOP_INTERVAL)

    def test_contains_value(self):
        # Containment is only reported when provable: N could be negative,
        # so [0, N] cannot even claim to contain 0.
        assert SymbolicInterval(0, 10).contains_value(0)
        assert SymbolicInterval(N, N + 2).contains_value(N + 1)
        assert not SymbolicInterval(0, N).contains_value(0)
        assert not SymbolicInterval(0, N).contains_value(N + 1)

    def test_substitute(self):
        assert SymbolicInterval(0, N).substitute({"N": 5}) == SymbolicInterval(0, 5)


class TestLimitInterval:
    def test_small_interval_unchanged(self):
        interval = SymbolicInterval(0, N)
        assert limit_interval(interval) == interval

    def test_oversized_bound_widens_to_infinity(self):
        bound = N
        for i in range(30):
            bound = sym_max(bound, sym(f"s{i}"))
        limited = limit_interval(SymbolicInterval(0, bound), budget=8)
        assert limited.upper == POS_INF
        assert limited.lower == SymbolicInterval(0, bound).lower
