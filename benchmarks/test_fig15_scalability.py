"""Benchmark E3 — Figure 15: analysis runtime vs. program size.

The paper analyses the 50 largest LLVM test-suite programs (~800k
instructions) in 8.36 seconds and reports linear correlation coefficients of
0.982 (time vs. instructions) and 0.975 (time vs. pointers).  This benchmark
sweeps generated programs of increasing size, times the GR + LR fixed points
(excluding the bootstrap integer range analysis and query time, as in the
paper) and checks the linear-scaling claim.
"""

import pytest

from repro.evaluation import format_figure15, run_scalability_experiment


@pytest.fixture(scope="module")
def scalability_report(scalability_points):
    return run_scalability_experiment(program_count=scalability_points)


def test_fig15_scalability_sweep(benchmark, scalability_points):
    report = benchmark.pedantic(
        run_scalability_experiment,
        kwargs={"program_count": scalability_points},
        iterations=1, rounds=1)
    print()
    print(format_figure15(report))
    assert len(report.points) == scalability_points


def test_fig15_linear_correlation(scalability_report):
    """Paper: R ≈ 0.98 against instructions, 0.975 against pointers.

    The strict gate is on the solver-step correlation, which is
    deterministic (no timing involved) and therefore stable on loaded CI
    runners; the wall-time correlations are asserted loosely — they reach
    0.9+ on an idle box but jitter under load.
    """
    assert scalability_report.correlation_steps_vs_instructions() > 0.9
    assert scalability_report.correlation_time_vs_instructions() > 0.5
    assert scalability_report.correlation_time_vs_pointers() > 0.5


def test_fig15_throughput_is_reported(scalability_report):
    """The paper's headline is ~100k instructions/second on an i7; a pure
    Python interpreter is slower, but throughput must be finite and stable."""
    assert scalability_report.instructions_per_second() > 1000


def test_fig15_solver_steps_are_reported(scalability_report):
    """Every point carries the sparse solver's fixpoint step count, and the
    solver stays sparse: a bounded number of transfer applications per
    instruction (a dense schedule would re-evaluate every value each pass)."""
    assert all(point.solver_steps > 0 for point in scalability_report.points)
    assert scalability_report.total_solver_steps() > 0
    assert scalability_report.steps_per_instruction() < 10.0


def test_fig15_single_program_analysis_time(benchmark):
    """Micro-benchmark: GR+LR fixed point on one mid-sized program."""
    from repro.benchgen import GeneratorConfig, generate_module
    from repro.core import GlobalRangeAnalysis, LocalRangeAnalysis, LocationTable
    from repro.rangeanalysis import SymbolicRangeAnalysis

    program = generate_module(GeneratorConfig(name="fig15_micro", instances=20, seed=3))
    module = program.module
    ranges = SymbolicRangeAnalysis(module)

    def analyse():
        locations = LocationTable(module)
        GlobalRangeAnalysis(module, ranges=ranges, locations=locations)
        LocalRangeAnalysis(module, ranges=ranges, locations=locations)

    benchmark(analyse)
