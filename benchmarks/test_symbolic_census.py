"""Benchmark E4 — the Section 5 census: pointers with exclusively symbolic ranges.

The paper counts 20.47% of pointers whose GR ranges are symbolic rather than
numeric, arguing that classic (integer) value-set analyses could not express
them.  This benchmark regenerates the census table over the synthetic suite.
"""

import pytest

from repro.evaluation import format_census, run_census, total_census


@pytest.fixture(scope="module")
def census_results(bench_programs):
    return run_census(bench_programs)


def test_symbolic_census_table(benchmark, bench_programs):
    results = benchmark.pedantic(run_census, kwargs={"program_names": bench_programs},
                                 iterations=1, rounds=1)
    print()
    print(format_census(results))
    assert results


def test_symbolic_pointers_are_a_substantial_minority(census_results):
    """Paper: 20.47% of pointers have exclusively symbolic ranges.

    The synthetic suites skew differently, so assert the qualitative claim:
    a substantial share of tracked pointers needs symbolic bounds.
    """
    total = total_census(census_results)
    assert total.symbolic > 0
    assert 5.0 <= total.symbolic_percentage() <= 80.0


def test_census_covers_every_program(census_results, bench_programs):
    expected = len(bench_programs) if bench_programs is not None else 22
    assert len(census_results) == expected
    for result in census_results:
        assert result.pointers > 0
