"""Microbenchmarks of the symbolic-expression hot paths.

These are the repo's first *operation-level* perf records: expression
construction through the intern table, memoized partial-order comparison
and the interval lattice operations — the three kernels every fixpoint
step exercises.  The asserted properties keep the benchmarks honest
(hash-consing identity, oracle agreement); the timings land in the
pytest-benchmark report uploaded by the perf-smoke CI job.
"""

from repro.symbolic import (
    EMPTY_INTERVAL,
    NEG_INF,
    POS_INF,
    SymbolicInterval,
    compare,
    compare_uncached,
    sym,
    sym_add,
    sym_max,
    sym_min,
    sym_mul,
    sym_sub,
)

_NAMES = ["N", "M", "k", "len", "cap", "idx"]


def _expression_batch():
    """A deterministic mix of linear forms, folds and opaque min/max atoms."""
    symbols = [sym(name) for name in _NAMES]
    out = []
    for index, symbol in enumerate(symbols):
        linear = sym_add(sym_mul(symbol, index + 1), index - 3)
        for other in symbols[:3]:
            linear = sym_add(linear, other)
        out.append(linear)
        out.append(sym_sub(linear, symbols[(index + 1) % len(symbols)]))
        out.append(sym_min(linear, sym_add(symbols[(index + 2) % len(symbols)], 4)))
        out.append(sym_max(out[-1], 0))
    return out


def test_expr_construction(benchmark):
    batch = benchmark.pedantic(_expression_batch, iterations=20, rounds=5)
    # Hash-consing invariant: re-running the exact construction sequence
    # yields the identical objects, not equal copies.
    again = _expression_batch()
    assert all(a is b for a, b in zip(batch, again))


def test_compare_memoized(benchmark):
    exprs = _expression_batch() + [NEG_INF, POS_INF]
    pairs = [(a, b) for a in exprs for b in exprs]

    def run():
        return [compare(a, b) for a, b in pairs]

    orderings = benchmark.pedantic(run, iterations=5, rounds=5)
    assert len(orderings) == len(pairs)
    # Spot-check the memo against the oracle on a deterministic slice.
    for (a, b), ordering in list(zip(pairs, orderings))[::37]:
        assert ordering is compare_uncached(a, b)


def test_interval_join_widen_narrow(benchmark):
    exprs = _expression_batch()
    intervals = [SymbolicInterval(sym_min(a, b), sym_max(a, b))
                 for a, b in zip(exprs, exprs[1:])]
    intervals.append(SymbolicInterval(NEG_INF, POS_INF))

    def run():
        joined = EMPTY_INTERVAL
        for interval in intervals:
            joined = joined.join(interval)
        widened = intervals[0]
        for interval in intervals[1:]:
            widened = widened.widen(interval)
        narrowed = widened
        for interval in intervals:
            narrowed = narrowed.narrow(interval)
        return joined, widened, narrowed

    joined, widened, narrowed = benchmark.pedantic(run, iterations=10, rounds=5)
    assert not joined.is_empty
    for interval in intervals:
        assert widened.contains_interval(interval)
    assert widened.contains_interval(narrowed)
