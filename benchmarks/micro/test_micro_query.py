"""Microbenchmark of the batched alias-query path over warm analyses.

``query_many`` is the serving layer's hot loop: the analyses are already
built, so what this measures is pair-key construction, memo probes and the
global/local disambiguation tests themselves.
"""

import pytest

from repro.benchgen import build_program
from repro.core.queries import QueryPairMemo
from repro.engine import keys
from repro.engine.manager import AnalysisManager
from repro.evaluation.harness import enumerate_query_pairs

_PROGRAM = "anagram"
_MAX_PAIRS = 200


@pytest.fixture(scope="module")
def warm_rbaa():
    program = build_program(_PROGRAM)
    manager = AnalysisManager(program.module)
    analysis = manager.get(keys.RBAA)
    pairs = [(pair.a, pair.b)
             for pair in enumerate_query_pairs(program.module, _MAX_PAIRS)]
    return analysis, pairs


def test_query_many_batch(benchmark, warm_rbaa):
    analysis, pairs = warm_rbaa

    def run():
        return analysis.query_many(pairs)

    results = benchmark.pedantic(run, iterations=2, rounds=5)
    assert len(results) == len(pairs)


def test_query_many_with_persistent_memo(benchmark, warm_rbaa):
    """The daemon path: a cross-request memo turns repeats into dict probes."""
    analysis, pairs = warm_rbaa
    memo = QueryPairMemo()
    analysis.query_many(pairs, memo=memo)  # warm the memo once

    def run():
        return analysis.query_many(pairs, memo=memo)

    results = benchmark.pedantic(run, iterations=2, rounds=5)
    assert len(results) == len(pairs)
    assert memo.hits > 0 and memo.evictions == 0
