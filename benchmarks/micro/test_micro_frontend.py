"""Microbenchmarks of the frontend cold-compile stages.

PR 5's profiler showed cold loads dominated by the frontend; the staged
scanner/IR-builder rewrite attacks exactly these three kernels, so each
gets its own operation-level record: scanning a realistic source, parsing
its token stream, and lowering the AST to IR.  The asserted invariants keep
the benchmarks honest — token counts, stream digests and instruction
counts are all deterministic — and the timings land in the pytest-benchmark
report uploaded by the perf-smoke CI job (reported, never gated).
"""

from repro.benchgen import build_suite
from repro.frontend import (
    Parser,
    analyze,
    lower_translation_unit,
    token_stream_digest,
    tokenize,
)

#: Two small suite programs: enough tokens that per-token costs dominate,
#: small enough that a benchmark round stays in the milliseconds.
_PROGRAMS = ("allroots", "anagram")


def _sources():
    suite = build_suite(_PROGRAMS)
    return [(name, program.source) for name, program in suite.items()]


def test_lex_single_pass_scanner(benchmark):
    sources = _sources()

    def run():
        return [tokenize(source) for _, source in sources]

    streams = benchmark.pedantic(run, iterations=10, rounds=5)
    # The scanner is deterministic: same sources, same streams.
    digests = [token_stream_digest(stream) for stream in streams]
    assert digests == [token_stream_digest(tokenize(source))
                       for _, source in sources]
    assert all(stream[-1].kind == "eof" for stream in streams)


def test_parse_token_stream(benchmark):
    streams = [(name, tokenize(source)) for name, source in _sources()]

    def run():
        return [Parser(stream).parse_translation_unit() for _, stream in streams]

    units = benchmark.pedantic(run, iterations=10, rounds=5)
    assert all(unit.functions for unit in units)


def test_lower_to_ir(benchmark):
    units = [(name, Parser(tokenize(source)).parse_translation_unit())
             for name, source in _sources()]
    infos = [(name, unit, analyze(unit)) for name, unit in units]

    def run():
        return [lower_translation_unit(unit, name, info)
                for name, unit, info in infos]

    modules = benchmark.pedantic(run, iterations=5, rounds=5)
    counts = [module.instruction_count() for module in modules]
    # Lowering is deterministic: a fresh run emits identical counts.
    assert counts == [lower_translation_unit(unit, name, info).instruction_count()
                      for name, unit, info in infos]
    assert all(count > 0 for count in counts)
