"""Benchmark E5 — Figure 12: the fixed-point schedule on the Figure 1 program.

Times the full GR analysis of the paper's wrap-up example with tracing
enabled and checks the schedule (starting state → widening → two descending
steps) plus the key abstract values of Figure 12.
"""


from repro.benchgen import compile_figure1
from repro.core import GlobalAnalysisOptions, GlobalRangeAnalysis
from repro.ir.instructions import PhiInst, StoreInst


def _run_traced():
    module = compile_figure1()
    analysis = GlobalRangeAnalysis(module,
                                   options=GlobalAnalysisOptions(track_trace=True))
    return module, analysis


def test_fig12_traced_fixed_point(benchmark):
    module, analysis = benchmark.pedantic(_run_traced, iterations=1, rounds=3)
    labels = [label for label, _ in analysis.trace()]
    assert labels[0] == "starting state"
    assert "after widening" in labels
    assert labels[-1] == "descending step 2"


def test_fig12_final_ranges_match_the_paper():
    module, analysis = _run_traced()
    prepare = module.get_function("prepare")
    stores = [inst for inst in prepare.instructions() if isinstance(inst, StoreInst)]
    header_state = analysis.value_of(stores[0].pointer)
    location = header_state.support()[0]
    interval = header_state.range_for(location)
    # Figure 12 (after two descending steps): i2 = [0, N - 1].
    assert interval.lower.constant_value() == 0
    assert "N" in repr(interval.upper)


def test_fig12_widening_is_applied_at_phi_functions():
    module, analysis = _run_traced()
    trace = dict(analysis.trace())
    prepare = module.get_function("prepare")
    pointer_phis = [inst for inst in prepare.instructions()
                    if isinstance(inst, PhiInst) and inst.type.is_pointer()]
    widened = trace["after widening"]
    assert any(widened[phi].range_for(widened[phi].support()[0]).upper.is_infinite()
               for phi in pointer_phis if not widened[phi].is_bottom)
