"""Benchmarks E6/E7 — the motivating disambiguation claims of Figures 1 and 3.

E6: the stores at lines 6 and 10 of Figure 1 are independent — rbaa proves it
    (global test), the LLVM-style baselines do not.
E7: ``p[i]`` and ``p[i+1]`` in Figure 3's loop are separated by the local
    test even though their global ranges overlap.
"""


from repro.aliases import AliasResult, BasicAliasAnalysis, SCEVAliasAnalysis
from repro.benchgen import compile_figure1, compile_figure3
from repro.core import DisambiguationReason, RBAAAliasAnalysis
from repro.ir.instructions import StoreInst


def _stores(module, name):
    return [inst for inst in module.get_function(name).instructions()
            if isinstance(inst, StoreInst)]


def test_fig1_build_and_query(benchmark):
    def run():
        module = compile_figure1()
        rbaa = RBAAAliasAnalysis(module)
        stores = _stores(module, "prepare")
        return rbaa, stores

    rbaa, stores = benchmark.pedantic(run, iterations=1, rounds=3)
    header, _, payload = stores
    assert rbaa.alias_pointers(header.pointer, payload.pointer) is AliasResult.NO_ALIAS


def test_fig1_baselines_cannot_disambiguate():
    module = compile_figure1()
    header, _, payload = _stores(module, "prepare")
    assert BasicAliasAnalysis(module).alias_pointers(header.pointer, payload.pointer) \
        is AliasResult.MAY_ALIAS
    assert SCEVAliasAnalysis(module).alias_pointers(header.pointer, payload.pointer) \
        is AliasResult.MAY_ALIAS


def test_fig1_global_test_is_the_resolving_criterion():
    module = compile_figure1()
    rbaa = RBAAAliasAnalysis(module)
    header, _, payload = _stores(module, "prepare")
    from repro.aliases import MemoryAccess
    outcome = rbaa.query(MemoryAccess.of(header.pointer), MemoryAccess.of(payload.pointer))
    assert outcome.no_alias
    assert outcome.reason is DisambiguationReason.GLOBAL_DISJOINT_RANGES


def test_fig3_build_and_query(benchmark):
    def run():
        module = compile_figure3()
        rbaa = RBAAAliasAnalysis(module)
        stores = _stores(module, "accelerate")
        return rbaa, stores

    rbaa, stores = benchmark.pedantic(run, iterations=1, rounds=3)
    first, second = stores
    assert rbaa.alias_pointers(first.pointer, second.pointer) is AliasResult.NO_ALIAS


def test_fig3_local_test_is_the_resolving_criterion():
    module = compile_figure3()
    rbaa = RBAAAliasAnalysis(module)
    first, second = _stores(module, "accelerate")
    from repro.aliases import MemoryAccess
    outcome = rbaa.query(MemoryAccess.of(first.pointer), MemoryAccess.of(second.pointer))
    assert outcome.no_alias
    assert outcome.reason is DisambiguationReason.LOCAL_DISJOINT_RANGES


def test_fig3_basic_cannot_disambiguate():
    module = compile_figure3()
    first, second = _stores(module, "accelerate")
    assert BasicAliasAnalysis(module).alias_pointers(first.pointer, second.pointer) \
        is AliasResult.MAY_ALIAS
