"""Benchmark E1 — Figure 13: precision of scev / basic / rbaa / rbaa+basic.

Regenerates the per-program table of no-alias percentages over the synthetic
Prolangs / PtrDist / MallocBench suites and checks the qualitative claims of
the paper: the precision ordering, the ~1.35× improvement of rbaa over basic
(shape, not exact value) and the complementarity of the combination.
"""

import pytest

from repro.evaluation import (
    format_figure13,
    run_precision_experiment,
)


@pytest.fixture(scope="module")
def precision_report(bench_programs, max_pairs_per_function):
    return run_precision_experiment(bench_programs,
                                    max_pairs_per_function=max_pairs_per_function)


def test_fig13_precision_table(benchmark, bench_programs, max_pairs_per_function):
    """Time the whole experiment and print the regenerated table."""
    report = benchmark.pedantic(
        run_precision_experiment,
        kwargs={"program_names": bench_programs,
                "max_pairs_per_function": max_pairs_per_function},
        iterations=1, rounds=1)
    print()
    print(format_figure13(report))
    totals = report.totals()
    assert totals.queries > 0


def test_fig13_precision_ordering(precision_report):
    """Paper: %rbaa > %basic > %scev in aggregate (Figure 13's Total row)."""
    totals = precision_report.totals()
    assert totals.no_alias["rbaa"] > totals.no_alias["basic"] > totals.no_alias["scev"]


def test_fig13_improvement_factor(precision_report):
    """Paper: rbaa disambiguates ~1.35x more queries than basic.

    The synthetic suites are not the original C programs, so only the shape
    is asserted: a clear improvement, within a generous band.
    """
    factor = precision_report.improvement_over_basic()
    assert 1.1 <= factor <= 4.0


def test_fig13_combination_is_complementary(precision_report):
    """Paper: combining rbaa with basic extends the set of resolved queries."""
    totals = precision_report.totals()
    assert totals.no_alias["r+b"] >= totals.no_alias["rbaa"]
    assert totals.no_alias["r+b"] > totals.no_alias["basic"]
