"""Benchmark E2 — Figure 14: how many queries the *global test* resolves.

The paper reports that 239,008 of rbaa's 1,290,457 no-alias answers
(18.52%) come from the global range-disjointness criterion; the remainder is
split between the local test and disjoint allocation sites ("comparing
offsets from different locations").  This benchmark regenerates the
per-program (noalias, global) table and checks that every disambiguation
channel contributes.
"""

import pytest

from repro.evaluation import format_figure14, run_precision_experiment


@pytest.fixture(scope="module")
def precision_report(bench_programs, max_pairs_per_function):
    return run_precision_experiment(bench_programs,
                                    max_pairs_per_function=max_pairs_per_function)


def test_fig14_global_test_table(benchmark, bench_programs, max_pairs_per_function,
                                 precision_report):
    """Print the regenerated Figure 14 table (timing the rbaa-only query pass)."""
    def rerun():
        return run_precision_experiment(bench_programs,
                                        max_pairs_per_function=max_pairs_per_function)

    report = benchmark.pedantic(rerun, iterations=1, rounds=1)
    print()
    print(format_figure14(report))
    assert report.results


def test_fig14_global_test_contributes_a_minority_share(precision_report):
    """Paper: the global test answers a real but minority share (18.52%)."""
    fraction = precision_report.global_test_fraction()
    assert 0.0 < fraction < 0.6


def test_fig14_every_channel_contributes(precision_report):
    totals = precision_report.totals()
    extra = totals.extra["rbaa"]
    assert extra["answered_by_global"] > 0
    assert extra["answered_by_local"] > 0
    assert totals.no_alias["rbaa"] >= extra["answered_by_global"] + extra["answered_by_local"]
