"""Benchmark E8 — ablation of the design choices called out in DESIGN.md.

Compares the full configuration against: global-test-only, local-test-only,
no descending (narrowing) sequence, intraprocedural-only, and no e-SSA.
"""

import pytest

from repro.evaluation import ABLATION_VARIANTS, format_ablation, run_ablation

ABLATION_PROGRAMS = ["cfrac", "allroots", "anagram", "ft", "fixoutput", "ks"]


@pytest.fixture(scope="module")
def ablation_totals(max_pairs_per_function):
    return run_ablation(program_names=ABLATION_PROGRAMS,
                        max_pairs_per_function=max_pairs_per_function)


def test_ablation_sweep(benchmark, max_pairs_per_function):
    totals = benchmark.pedantic(
        run_ablation,
        kwargs={"program_names": ABLATION_PROGRAMS,
                "max_pairs_per_function": max_pairs_per_function},
        iterations=1, rounds=1)
    print()
    print(format_ablation(totals))
    assert set(totals) == {variant.name for variant in ABLATION_VARIANTS}


def test_ablation_both_tests_needed(ablation_totals):
    """Global-only and local-only each answer fewer queries than the full analysis."""
    full = ablation_totals["full"][1]
    assert ablation_totals["global-only"][1] < full
    assert ablation_totals["local-only"][1] < full


def test_ablation_essa_matters(ablation_totals):
    """Without σ nodes the ranges of loop pointers never tighten, costing precision."""
    assert ablation_totals["no-essa"][1] <= ablation_totals["full"][1]
