"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The full
suite is sizeable, so the default configuration uses a representative slice
of the 22 programs and caps the quadratic query enumeration per function;
set ``REPRO_BENCH_FULL=1`` to run everything at full scale (matching the
per-experiment index in DESIGN.md / EXPERIMENTS.md), or
``REPRO_BENCH_QUICK=1`` for the minimal smoke configuration CI uses.
"""

import os

import pytest

#: Slice of the suite used by default (one program per suite plus extremes).
DEFAULT_PROGRAMS = ["cfrac", "espresso", "allroots", "football", "bc", "anagram"]
#: Minimal slice for the CI smoke job.
QUICK_PROGRAMS = ["allroots", "anagram"]

FULL_RUN = os.environ.get("REPRO_BENCH_FULL", "") == "1"
QUICK_RUN = os.environ.get("REPRO_BENCH_QUICK", "") == "1" and not FULL_RUN


@pytest.fixture(scope="session")
def bench_programs():
    """Program names used by the precision/census benchmarks."""
    if FULL_RUN:
        return None
    return QUICK_PROGRAMS if QUICK_RUN else DEFAULT_PROGRAMS


@pytest.fixture(scope="session")
def max_pairs_per_function():
    """Cap on enumerated pointer pairs per function (None = no cap)."""
    if FULL_RUN:
        return None
    return 500 if QUICK_RUN else 3000


@pytest.fixture(scope="session")
def scalability_points():
    """Number of generated programs for the Figure 15 sweep."""
    if FULL_RUN:
        return 50
    return 6 if QUICK_RUN else 12
