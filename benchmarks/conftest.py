"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The full
suite is sizeable, so the default configuration uses a representative slice
of the 22 programs and caps the quadratic query enumeration per function;
set ``REPRO_BENCH_FULL=1`` to run everything at full scale (matching the
per-experiment index in DESIGN.md / EXPERIMENTS.md).
"""

import os

import pytest

#: Slice of the suite used by default (one program per suite plus extremes).
DEFAULT_PROGRAMS = ["cfrac", "espresso", "allroots", "football", "bc", "anagram"]

FULL_RUN = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def bench_programs():
    """Program names used by the precision/census benchmarks."""
    return None if FULL_RUN else DEFAULT_PROGRAMS


@pytest.fixture(scope="session")
def max_pairs_per_function():
    """Cap on enumerated pointer pairs per function (None = no cap)."""
    return None if FULL_RUN else 3000


@pytest.fixture(scope="session")
def scalability_points():
    """Number of generated programs for the Figure 15 sweep."""
    return 50 if FULL_RUN else 12
