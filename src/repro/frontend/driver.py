"""One-call compilation driver: mini-C source text to analysis-ready IR.

The driver chains the explicit frontend stages (see
:mod:`repro.frontend.stages`): scan → parse → analyze → lower → prepare.
When a phase collector is active (:func:`repro.frontend.stages.collect_phases`)
each stage's wall time plus token/instruction counts and determinism digests
are recorded; otherwise the stages run without any timing overhead.
"""

from __future__ import annotations

from hashlib import sha256
from time import perf_counter
from typing import Optional

from ..ir.module import Module
from ..transforms.pipeline import PipelineOptions, prepare_module
from .cparser import Parser
from .lexer import tokenize
from .lowering import lower_translation_unit
from .sema import analyze
from .stages import active_collector, module_digest, token_stream_digest

__all__ = ["compile_source"]


def compile_source(source: str, name: str = "module", *,
                   prepare: bool = True,
                   pipeline_options: Optional[PipelineOptions] = None) -> Module:
    """Compile mini-C ``source`` into an IR :class:`~repro.ir.module.Module`.

    Args:
        source: the program text.
        name: module name (used in diagnostics and reports).
        prepare: when true (default), run the standard preparation pipeline
            (mem2reg, simplification, e-SSA) so the module is ready for the
            pointer analyses; when false, return the raw ``-O0``-style IR.
        pipeline_options: overrides for the preparation pipeline.
    """
    collector = active_collector()
    if collector is None:
        unit = Parser(tokenize(source)).parse_translation_unit()
        info = analyze(unit)
        module = lower_translation_unit(unit, name, info)
        if prepare:
            prepare_module(module, pipeline_options)
        return module

    start = perf_counter()
    tokens = tokenize(source)
    t_lex = perf_counter()
    unit = Parser(tokens).parse_translation_unit()
    t_parse = perf_counter()
    info = analyze(unit)
    t_sema = perf_counter()
    module = lower_translation_unit(unit, name, info)
    t_lower = perf_counter()
    if prepare:
        prepare_module(module, pipeline_options)
    t_prepare = perf_counter()

    collector.lex_seconds += t_lex - start
    collector.parse_seconds += t_parse - t_lex
    collector.sema_seconds += t_sema - t_parse
    collector.lower_seconds += t_lower - t_sema
    collector.prepare_seconds += t_prepare - t_lower
    collector.tokens += len(tokens)
    collector.instructions += module.instruction_count()
    # Digests chain across compiles so a collector spanning several modules
    # still yields one order-sensitive deterministic fingerprint.
    collector.token_digest = _chain(collector.token_digest, token_stream_digest(tokens))
    collector.ir_digest = _chain(collector.ir_digest, module_digest(module))
    return module


def _chain(previous: str, digest: str) -> str:
    if not previous:
        return digest
    return sha256(f"{previous}\x1e{digest}".encode()).hexdigest()
