"""One-call compilation driver: mini-C source text to analysis-ready IR."""

from __future__ import annotations

from typing import Optional

from ..ir.module import Module
from ..transforms.pipeline import PipelineOptions, prepare_module
from .cparser import parse
from .lowering import lower_translation_unit
from .sema import analyze

__all__ = ["compile_source"]


def compile_source(source: str, name: str = "module", *,
                   prepare: bool = True,
                   pipeline_options: Optional[PipelineOptions] = None) -> Module:
    """Compile mini-C ``source`` into an IR :class:`~repro.ir.module.Module`.

    Args:
        source: the program text.
        name: module name (used in diagnostics and reports).
        prepare: when true (default), run the standard preparation pipeline
            (mem2reg, simplification, e-SSA) so the module is ready for the
            pointer analyses; when false, return the raw ``-O0``-style IR.
        pipeline_options: overrides for the preparation pipeline.
    """
    unit = parse(source)
    info = analyze(unit)
    module = lower_translation_unit(unit, name, info)
    if prepare:
        prepare_module(module, pipeline_options)
    return module
