"""Mini-C frontend: lexer, parser, semantic analysis and lowering to IR.

The frontend exists so the reproduction can run the paper's motivating C
programs (Figures 1, 3 and 10) and realistic benchmark idioms end-to-end,
playing the role clang plays in the original LLVM-based implementation.
"""

from .cparser import ParseError, Parser, parse
from .driver import compile_source
from .lexer import LexerError, Token, TokenKind, tokenize
from .lowering import LoweringError, lower_translation_unit
from .sema import SemanticError, SemanticInfo, analyze
from .stages import (
    PhaseTimings,
    collect_phases,
    module_digest,
    token_stream_digest,
)

__all__ = [
    "ParseError",
    "Parser",
    "parse",
    "compile_source",
    "LexerError",
    "Token",
    "TokenKind",
    "tokenize",
    "LoweringError",
    "lower_translation_unit",
    "SemanticError",
    "SemanticInfo",
    "analyze",
    "PhaseTimings",
    "collect_phases",
    "module_digest",
    "token_stream_digest",
]
