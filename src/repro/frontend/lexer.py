"""Tokenizer for the mini-C frontend.

The frontend accepts the C subset the paper's benchmarks exercise: scalar
and pointer types, arrays, structs, pointer arithmetic, loops and calls to a
handful of library routines.  The lexer is a single-pass hand-written scanner
producing a flat token list consumed by the recursive-descent parser.

Scanner shape (the cold-load hot path, so it is written for speed):

* one position loop with ``line``/``line_start`` bookkeeping — a column is
  ``position - line_start + 1``, so nothing recounts characters;
* punctuators dispatch through 3/2/1-character tables (maximal munch without
  a longest-first linear scan);
* token texts are interned, so keyword checks and parser punctuator
  comparisons degenerate to pointer comparisons.

Every rejection — malformed literal, unknown escape, unterminated construct,
stray character — raises :class:`LexerError` carrying line/column.  Bare
``ValueError`` must never escape ``tokenize``: the serving layer maps
``LexerError`` to a ``bad_request`` envelope and anything else to
``internal_error``.
"""

from __future__ import annotations

from sys import intern
from typing import List, Optional

__all__ = ["Token", "TokenKind", "LexerError", "tokenize", "KEYWORDS"]


class TokenKind:
    """Token categories (plain strings keep the parser readable)."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "int", "char", "float", "double", "void", "long", "short", "unsigned", "signed",
    "struct", "typedef", "sizeof",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "const", "static", "extern", "NULL",
})

# Punctuator dispatch tables: maximal munch tries the 3-char slice, then the
# 2-char slice, then the single character.  The mapped values are the
# canonical interned spellings shared by every emitted token.
_PUNCT3 = {p: intern(p) for p in ("<<=", ">>=", "...")}
_PUNCT2 = {p: intern(p) for p in (
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)}
_PUNCT1 = {p: intern(p) for p in "+-*/%=<>!&|^~(){}[];,.?:"}

_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CHARS = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")
_INT_SUFFIXES = frozenset("uUlL")
_NUM_SUFFIXES = frozenset("uUlLfF")


class LexerError(Exception):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class Token:
    """One lexical token (slotted: tokens dominate cold-compile allocation)."""

    __slots__ = ("kind", "text", "line", "column", "value")

    def __init__(self, kind: str, text: str, line: int, column: int,
                 value: Optional[object] = None):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column
        self.value = value

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind == other.kind and self.text == other.text
                and self.line == other.line and self.column == other.column
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.line, self.column, self.value))

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


def tokenize(source: str) -> List[Token]:
    """Convert ``source`` into a token list terminated by an EOF token."""
    tokens: List[Token] = []
    append = tokens.append
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    KW = KEYWORDS
    IDENT = TokenKind.IDENT
    KEYWORD = TokenKind.KEYWORD
    INT = TokenKind.INT
    FLOAT = TokenKind.FLOAT
    PUNCT = TokenKind.PUNCT

    while position < length:
        char = source[position]
        # Whitespace.
        if char == " " or char == "\t" or char == "\r":
            position += 1
            continue
        if char == "\n":
            position += 1
            line += 1
            line_start = position
            continue
        start_line = line
        start_column = position - line_start + 1
        # Identifiers / keywords (most common token class first).
        if char in _IDENT_START:
            end = position + 1
            while end < length and source[end] in _IDENT_CHARS:
                end += 1
            text = intern(source[position:end])
            append(Token(KEYWORD if text in KW else IDENT, text, start_line, start_column))
            position = end
            continue
        # Punctuators (second most common; 3/2/1-char table dispatch).
        if char in _PUNCT1:
            chunk = source[position:position + 3]
            text = _PUNCT3.get(chunk)
            if text is None:
                text = _PUNCT2.get(chunk[:2])
            if text is None:
                # Comments win over "/" division.
                if char == "/" and chunk[1:2] in ("/", "*"):
                    if chunk[1] == "/":
                        newline = source.find("\n", position + 2)
                        position = length if newline < 0 else newline
                        continue
                    end = source.find("*/", position + 2)
                    if end < 0:
                        raise LexerError("unterminated block comment",
                                         start_line, start_column)
                    newlines = source.count("\n", position, end)
                    if newlines:
                        line += newlines
                        line_start = source.rindex("\n", position, end) + 1
                    position = end + 2
                    continue
                text = _PUNCT1[char]
            append(Token(PUNCT, text, start_line, start_column))
            position += len(text)
            continue
        # Numbers.
        if char in _DIGITS:
            end = position + 1
            if char == "0" and end < length and (source[end] == "x" or source[end] == "X"):
                end += 1
                digits_start = end
                while end < length and source[end] in _HEX_DIGITS:
                    end += 1
                if end == digits_start:
                    raise LexerError(
                        f"malformed hex literal {source[position:end]!r}: "
                        "expected at least one hex digit",
                        start_line, start_column)
                value = int(source[digits_start:end], 16)
                # Suffixes (U, L) are accepted and ignored, on hex too.
                while end < length and source[end] in _INT_SUFFIXES:
                    end += 1
                append(Token(INT, intern(source[position:end]),
                             start_line, start_column, value))
                position = end
                continue
            dots = 0
            while end < length:
                nxt = source[end]
                if nxt in _DIGITS:
                    end += 1
                elif nxt == ".":
                    dots += 1
                    end += 1
                else:
                    break
            is_float = dots > 0
            # Suffixes (L, U, f) are accepted and ignored.
            numeric_end = end
            while end < length and source[end] in _NUM_SUFFIXES:
                if source[end] == "f" or source[end] == "F":
                    is_float = True
                end += 1
            text = source[position:end]
            if dots > 1:
                raise LexerError(f"malformed number literal {text!r}",
                                 start_line, start_column)
            numeric = source[position:numeric_end]
            try:
                value = float(numeric) if is_float else int(numeric, 10)
            except ValueError:
                raise LexerError(f"malformed number literal {text!r}",
                                 start_line, start_column) from None
            append(Token(FLOAT if is_float else INT, intern(text),
                         start_line, start_column, value))
            position = end
            continue
        # Preprocessor lines (skipped: headers are implicit).
        if char == "#":
            newline = source.find("\n", position + 1)
            position = length if newline < 0 else newline
            continue
        # Character literals.
        if char == "'":
            end = position + 1
            if end < length and source[end] == "\\":
                escape = source[end + 1] if end + 1 < length else ""
                if escape and escape not in _ESCAPES:
                    raise LexerError(f"unknown escape sequence '\\{escape}'",
                                     start_line, start_column)
                value = ord(_ESCAPES[escape]) if escape else 0
                end += 2
            else:
                value = ord(source[end]) if end < length else 0
                end += 1
            if end >= length or source[end] != "'":
                raise LexerError("unterminated character literal",
                                 start_line, start_column)
            end += 1
            append(Token(TokenKind.CHAR, source[position:end],
                         start_line, start_column, value))
            position = end
            continue
        # String literals.
        if char == '"':
            end = position + 1
            chars: List[str] = []
            while end < length and source[end] != '"':
                if source[end] == "\\" and end + 1 < length:
                    escape = source[end + 1]
                    mapped = _ESCAPES.get(escape)
                    if mapped is None:
                        raise LexerError(f"unknown escape sequence '\\{escape}'",
                                         start_line, start_column)
                    chars.append(mapped)
                    end += 2
                else:
                    chars.append(source[end])
                    end += 1
            if end >= length:
                raise LexerError("unterminated string literal",
                                 start_line, start_column)
            end += 1
            newlines = source.count("\n", position, end)
            if newlines:
                line += newlines
                line_start = source.rindex("\n", position, end) + 1
            append(Token(TokenKind.STRING, source[position:end],
                         start_line, start_column, "".join(chars)))
            position = end
            continue
        raise LexerError(f"unexpected character {char!r}", start_line, start_column)

    tokens.append(Token(TokenKind.EOF, "", line, length - line_start + 1))
    return tokens
