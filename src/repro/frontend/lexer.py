"""Tokenizer for the mini-C frontend.

The frontend accepts the C subset the paper's benchmarks exercise: scalar
and pointer types, arrays, structs, pointer arithmetic, loops and calls to a
handful of library routines.  The lexer is a straightforward hand-written
scanner producing a flat token list consumed by the recursive-descent parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Token", "TokenKind", "LexerError", "tokenize", "KEYWORDS"]


class TokenKind:
    """Token categories (plain strings keep the parser readable)."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "int", "char", "float", "double", "void", "long", "short", "unsigned", "signed",
    "struct", "typedef", "sizeof",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "const", "static", "extern", "NULL",
})

# Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


class LexerError(Exception):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    text: str
    line: int
    column: int
    value: Optional[object] = None

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


def tokenize(source: str) -> List[Token]:
    """Convert ``source`` into a token list terminated by an EOF token."""
    tokens: List[Token] = []
    position = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and source[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = source[position]
        # Whitespace.
        if char in " \t\r\n":
            advance(1)
            continue
        # Comments and preprocessor lines (skipped: headers are implicit).
        if source.startswith("//", position) or char == "#":
            while position < length and source[position] != "\n":
                advance(1)
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise LexerError("unterminated block comment", line, column)
            advance(end + 2 - position)
            continue
        start_line, start_column = line, column
        # Numbers.
        if char.isdigit():
            end = position
            is_float = False
            if source.startswith("0x", position) or source.startswith("0X", position):
                end = position + 2
                while end < length and source[end] in "0123456789abcdefABCDEF":
                    end += 1
                text = source[position:end]
                tokens.append(Token(TokenKind.INT, text, start_line, start_column, int(text, 16)))
                advance(end - position)
                continue
            while end < length and (source[end].isdigit() or source[end] == "."):
                if source[end] == ".":
                    is_float = True
                end += 1
            # Suffixes (L, U, f) are accepted and ignored.
            while end < length and source[end] in "uUlLfF":
                if source[end] in "fF":
                    is_float = True
                end += 1
            text = source[position:end]
            numeric = text.rstrip("uUlLfF")
            if is_float:
                tokens.append(
                    Token(TokenKind.FLOAT, text, start_line, start_column, float(numeric)))
            else:
                tokens.append(
                    Token(TokenKind.INT, text, start_line, start_column, int(numeric, 10)))
            advance(end - position)
            continue
        # Identifiers / keywords.
        if char.isalpha() or char == "_":
            end = position
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[position:end]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_column))
            advance(end - position)
            continue
        # Character literals.
        if char == "'":
            end = position + 1
            if end < length and source[end] == "\\":
                escape = source[end + 1] if end + 1 < length else ""
                value = ord(_ESCAPES.get(escape, escape or "?"))
                end += 2
            else:
                value = ord(source[end]) if end < length else 0
                end += 1
            if end >= length or source[end] != "'":
                raise LexerError("unterminated character literal", start_line, start_column)
            end += 1
            tokens.append(
                Token(TokenKind.CHAR, source[position:end], start_line, start_column, value))
            advance(end - position)
            continue
        # String literals.
        if char == '"':
            end = position + 1
            chars: List[str] = []
            while end < length and source[end] != '"':
                if source[end] == "\\" and end + 1 < length:
                    chars.append(_ESCAPES.get(source[end + 1], source[end + 1]))
                    end += 2
                else:
                    chars.append(source[end])
                    end += 1
            if end >= length:
                raise LexerError("unterminated string literal", start_line, start_column)
            end += 1
            tokens.append(Token(TokenKind.STRING, source[position:end], start_line, start_column,
                                "".join(chars)))
            advance(end - position)
            continue
        # Punctuators.
        for punct in _PUNCTUATORS:
            if source.startswith(punct, position):
                tokens.append(Token(TokenKind.PUNCT, punct, start_line, start_column))
                advance(len(punct))
                break
        else:
            raise LexerError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
