"""Semantic analysis for the mini-C frontend.

The semantic pass resolves syntactic type specifications to IR types, builds
the struct table, collects function signatures (including prototypes for
external functions) and global variables, and reports basic errors
(duplicate definitions, unknown struct names).  The heavy lifting of
expression typing happens during lowering, which consults the
:class:`SemanticInfo` produced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.types import (
    ArrayType,
    DOUBLE,
    FLOAT,
    FunctionType,
    INT32,
    INT64,
    INT8,
    PointerType,
    StructType,
    Type,
    VOID,
)
from .ast_nodes import (
    ArrayTypeSpec,
    FunctionDecl,
    IntLiteral,
    NamedTypeSpec,
    PointerTypeSpec,
    StructTypeSpec,
    TranslationUnit,
    TypeSpec,
    VarDecl,
)

__all__ = ["SemanticError", "SemanticInfo", "analyze"]

_BUILTIN_TYPES: Dict[str, Type] = {
    "void": VOID,
    "char": INT8,
    "int": INT32,
    "long": INT64,
    "float": FLOAT,
    "double": DOUBLE,
}

#: Signatures of the library functions the frontend knows about.  Pointers
#: returned by these calls become symbolic/unknown values in the analyses.
KNOWN_EXTERNALS: Dict[str, FunctionType] = {
    "malloc": FunctionType(PointerType(INT8), [INT32]),
    "calloc": FunctionType(PointerType(INT8), [INT32, INT32]),
    "realloc": FunctionType(PointerType(INT8), [PointerType(INT8), INT32]),
    "free": FunctionType(VOID, [PointerType(INT8)]),
    "strlen": FunctionType(INT32, [PointerType(INT8)]),
    "strcpy": FunctionType(PointerType(INT8), [PointerType(INT8), PointerType(INT8)]),
    "strncpy": FunctionType(PointerType(INT8), [PointerType(INT8), PointerType(INT8), INT32]),
    "strcmp": FunctionType(INT32, [PointerType(INT8), PointerType(INT8)]),
    "strcat": FunctionType(PointerType(INT8), [PointerType(INT8), PointerType(INT8)]),
    "memcpy": FunctionType(PointerType(INT8), [PointerType(INT8), PointerType(INT8), INT32]),
    "memset": FunctionType(PointerType(INT8), [PointerType(INT8), INT32, INT32]),
    "atoi": FunctionType(INT32, [PointerType(INT8)]),
    "abs": FunctionType(INT32, [INT32]),
    "rand": FunctionType(INT32, []),
    "printf": FunctionType(INT32, [PointerType(INT8)], is_vararg=True),
    "puts": FunctionType(INT32, [PointerType(INT8)]),
    "getchar": FunctionType(INT32, []),
    "exit": FunctionType(VOID, [INT32]),
}


class SemanticError(Exception):
    """Raised for problems the frontend cannot lower meaningfully."""


@dataclass
class SemanticInfo:
    """Resolved module-level information consumed by the lowerer."""

    structs: Dict[str, StructType] = field(default_factory=dict)
    function_types: Dict[str, FunctionType] = field(default_factory=dict)
    function_decls: Dict[str, FunctionDecl] = field(default_factory=dict)
    global_decls: List[VarDecl] = field(default_factory=list)

    def resolve(self, spec: TypeSpec) -> Type:
        """Resolve a syntactic type specification to an IR type."""
        if isinstance(spec, NamedTypeSpec):
            try:
                return _BUILTIN_TYPES[spec.name]
            except KeyError as error:
                raise SemanticError(f"unknown type name {spec.name!r}") from error
        if isinstance(spec, StructTypeSpec):
            if spec.name not in self.structs:
                raise SemanticError(f"unknown struct {spec.name!r}")
            return self.structs[spec.name]
        if isinstance(spec, PointerTypeSpec):
            return PointerType(self.resolve(spec.pointee))
        if isinstance(spec, ArrayTypeSpec):
            element = self.resolve(spec.element)
            size = 0
            if isinstance(spec.size, IntLiteral):
                size = spec.size.value
            elif spec.size is not None:
                raise SemanticError("array sizes must be integer literals")
            return ArrayType(element, size)
        raise SemanticError(f"unsupported type specification {spec!r}")

    def signature_for_call(self, name: str) -> Optional[FunctionType]:
        """Signature of a called function: module-defined, prototype or known external."""
        if name in self.function_types:
            return self.function_types[name]
        return KNOWN_EXTERNALS.get(name)


def analyze(unit: TranslationUnit) -> SemanticInfo:
    """Run semantic analysis over a parsed translation unit."""
    info = SemanticInfo()

    # Structs first (they may reference previously declared structs).
    for struct in unit.structs:
        if struct.name in info.structs:
            raise SemanticError(f"duplicate struct {struct.name!r}")
        # Two-phase creation so self-referencing pointers (linked lists) work:
        # a pointer to an incomplete struct is modelled as a char pointer.
        fields = []
        for field_decl in struct.fields:
            try:
                field_type = info.resolve(field_decl.type_spec)
            except SemanticError:
                if _is_self_pointer(field_decl.type_spec, struct.name):
                    field_type = PointerType(INT8)
                else:
                    raise
            fields.append((field_decl.name, field_type))
        info.structs[struct.name] = StructType(struct.name, fields)

    for function in unit.functions:
        return_type = info.resolve(function.return_type)
        param_types = [info.resolve(param.type_spec) for param in function.params]
        signature = FunctionType(return_type, param_types, function.is_vararg)
        existing = info.function_types.get(function.name)
        if existing is not None and existing != signature:
            raise SemanticError(f"conflicting declarations of {function.name!r}")
        info.function_types[function.name] = signature
        if function.body is not None:
            if function.name in info.function_decls and \
                    info.function_decls[function.name].body is not None:
                raise SemanticError(f"duplicate definition of {function.name!r}")
            info.function_decls[function.name] = function
        else:
            info.function_decls.setdefault(function.name, function)

    seen_globals = set()
    for variable in unit.globals:
        if variable.name in seen_globals:
            raise SemanticError(f"duplicate global {variable.name!r}")
        seen_globals.add(variable.name)
        info.resolve(variable.type_spec)  # validate eagerly
        info.global_decls.append(variable)
    return info


def _is_self_pointer(spec: TypeSpec, struct_name: str) -> bool:
    return (isinstance(spec, PointerTypeSpec)
            and isinstance(spec.pointee, StructTypeSpec)
            and spec.pointee.name == struct_name)
