"""Abstract syntax tree of the mini-C frontend.

Nodes are slotted dataclasses (ASTs dominate cold-compile allocation, and
slots keep them compact and typo-proof); type information is attached to the
side tables of the semantic analysis (:mod:`repro.frontend.sema`), never to
the nodes themselves, and consumed during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    # type syntax
    "TypeSpec", "NamedTypeSpec", "PointerTypeSpec", "ArrayTypeSpec", "StructTypeSpec",
    # expressions
    "Expr", "IntLiteral", "FloatLiteral", "CharLiteral", "StringLiteral", "NullLiteral",
    "Identifier", "UnaryOp", "BinaryOp", "Assignment", "Conditional", "Call",
    "ArrayIndex", "Member", "Cast", "SizeOf",
    # statements
    "Stmt", "DeclStmt", "ExprStmt", "CompoundStmt", "IfStmt", "WhileStmt", "DoWhileStmt",
    "ForStmt", "ReturnStmt", "BreakStmt", "ContinueStmt", "EmptyStmt",
    # declarations
    "ParamDecl", "VarDecl", "FieldDecl", "StructDecl", "FunctionDecl", "TranslationUnit",
]


# ---------------------------------------------------------------------------
# Type syntax
# ---------------------------------------------------------------------------

class TypeSpec:
    """Base class for syntactic type specifications."""

    __slots__ = ()


@dataclass(slots=True)
class NamedTypeSpec(TypeSpec):
    """A builtin scalar type name: ``int``, ``char``, ``float``, ``double``, ``void``."""

    name: str


@dataclass(slots=True)
class StructTypeSpec(TypeSpec):
    """A reference to a struct type by name: ``struct point``."""

    name: str


@dataclass(slots=True)
class PointerTypeSpec(TypeSpec):
    """A pointer to another type specification."""

    pointee: TypeSpec


@dataclass(slots=True)
class ArrayTypeSpec(TypeSpec):
    """An array with an optionally known constant size."""

    element: TypeSpec
    size: Optional["Expr"]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of expressions; ``line`` supports diagnostics."""

    __slots__ = ()

    line: int = 0


@dataclass(slots=True)
class IntLiteral(Expr):
    value: int
    line: int = 0


@dataclass(slots=True)
class FloatLiteral(Expr):
    value: float
    line: int = 0


@dataclass(slots=True)
class CharLiteral(Expr):
    value: int
    line: int = 0


@dataclass(slots=True)
class StringLiteral(Expr):
    value: str
    line: int = 0


@dataclass(slots=True)
class NullLiteral(Expr):
    line: int = 0


@dataclass(slots=True)
class Identifier(Expr):
    name: str
    line: int = 0


@dataclass(slots=True)
class UnaryOp(Expr):
    """``op operand`` where op ∈ {-, !, ~, *, &, ++, --, p++, p--}.

    Pre/post increment are encoded with ``op`` of ``++``/``--`` and
    ``is_postfix``.
    """

    op: str
    operand: Expr
    is_postfix: bool = False
    line: int = 0


@dataclass(slots=True)
class BinaryOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass(slots=True)
class Assignment(Expr):
    """``target op= value`` with ``op`` empty for plain assignment."""

    target: Expr
    value: Expr
    op: str = ""
    line: int = 0


@dataclass(slots=True)
class Conditional(Expr):
    condition: Expr
    true_value: Expr
    false_value: Expr
    line: int = 0


@dataclass(slots=True)
class Call(Expr):
    callee: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass(slots=True)
class ArrayIndex(Expr):
    base: Expr
    index: Expr
    line: int = 0


@dataclass(slots=True)
class Member(Expr):
    """``base.field`` (``is_arrow=False``) or ``base->field`` (``is_arrow=True``)."""

    base: Expr
    field_name: str
    is_arrow: bool
    line: int = 0


@dataclass(slots=True)
class Cast(Expr):
    target_type: TypeSpec
    operand: Expr
    line: int = 0


@dataclass(slots=True)
class SizeOf(Expr):
    target_type: Optional[TypeSpec]
    operand: Optional[Expr] = None
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of statements."""

    __slots__ = ()


@dataclass(slots=True)
class VarDecl:
    """One declarator of a declaration statement (or a global variable)."""

    name: str
    type_spec: TypeSpec
    initializer: Optional[Expr] = None
    line: int = 0


@dataclass(slots=True)
class DeclStmt(Stmt):
    declarations: List[VarDecl]


@dataclass(slots=True)
class ExprStmt(Stmt):
    expression: Expr


@dataclass(slots=True)
class CompoundStmt(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class IfStmt(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None


@dataclass(slots=True)
class WhileStmt(Stmt):
    condition: Expr
    body: Stmt


@dataclass(slots=True)
class DoWhileStmt(Stmt):
    body: Stmt
    condition: Expr


@dataclass(slots=True)
class ForStmt(Stmt):
    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass(slots=True)
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass(slots=True)
class BreakStmt(Stmt):
    pass


@dataclass(slots=True)
class ContinueStmt(Stmt):
    pass


@dataclass(slots=True)
class EmptyStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class ParamDecl:
    name: str
    type_spec: TypeSpec


@dataclass(slots=True)
class FieldDecl:
    name: str
    type_spec: TypeSpec


@dataclass(slots=True)
class StructDecl:
    name: str
    fields: List[FieldDecl]


@dataclass(slots=True)
class FunctionDecl:
    name: str
    return_type: TypeSpec
    params: List[ParamDecl]
    body: Optional[CompoundStmt]  # ``None`` for prototypes
    is_vararg: bool = False


@dataclass(slots=True)
class TranslationUnit:
    """A whole source file."""

    structs: List[StructDecl] = field(default_factory=list)
    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
