"""Explicit frontend stages: scan → parse → analyze → lower → prepare.

The compile pipeline is staged the way production toolchains stage theirs
(AST → HIR → MIR-style): each stage has one narrow entry point, consumes
exactly the previous stage's output, and reports failure through one typed
exception —

=========  ==========================================  =====================
Stage      API                                         Error type
=========  ==========================================  =====================
scan       :func:`repro.frontend.lexer.tokenize`       ``LexerError``
parse      :class:`repro.frontend.cparser.Parser`      ``ParseError``
analyze    :func:`repro.frontend.sema.analyze`         ``SemanticError``
lower      :func:`~repro.frontend.lowering.            ``LoweringError``
           lower_translation_unit`
prepare    :func:`repro.transforms.pipeline.           —
           prepare_module`
=========  ==========================================  =====================

All four error types carry source position context and are the only
exceptions a well-behaved stage may raise on bad input; the serving layer
maps them to ``bad_request`` envelopes (anything else is a frontend bug and
surfaces as ``internal_error``).

This module adds the two cross-cutting facilities the stages themselves
stay free of:

* **Phase telemetry** — :func:`collect_phases` installs a
  :class:`PhaseTimings` collector; while one is active,
  :func:`repro.frontend.driver.compile_source` records per-stage wall time
  and token/instruction counts into it.  The profiler uses this for the
  compile-phase breakdown in ``BENCH_profile.json``.
* **Determinism digests** — :func:`token_stream_digest` and
  :func:`module_digest` hash a token stream / printed module to a stable
  hex digest.  The evaluation records embed them, which lets the perf-smoke
  CI gate assert the frontend is byte-identical across runs and hash seeds.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Iterator, List, Optional, Sequence
from contextlib import contextmanager

from ..ir.module import Module
from ..ir.printer import print_module
from .lexer import Token

__all__ = [
    "PhaseTimings",
    "collect_phases",
    "active_collector",
    "token_stream_digest",
    "module_digest",
]


class PhaseTimings:
    """Per-module compile-phase telemetry filled in by the driver.

    Wall-clock fields end in ``_seconds`` on purpose: the evaluation's
    ``strip_volatile`` drops that suffix, so timings are reported but never
    gated, while the counts and digests recorded next to them are.
    """

    __slots__ = ("lex_seconds", "parse_seconds", "sema_seconds",
                 "lower_seconds", "prepare_seconds",
                 "tokens", "instructions", "token_digest", "ir_digest")

    def __init__(self) -> None:
        self.lex_seconds = 0.0
        self.parse_seconds = 0.0
        self.sema_seconds = 0.0
        self.lower_seconds = 0.0
        self.prepare_seconds = 0.0
        self.tokens = 0
        self.instructions = 0
        self.token_digest = ""
        self.ir_digest = ""

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}


# Collector stack, innermost active (plain module state: the frontend is
# single-threaded per process, and shard workers each get their own copy).
_collectors: List[PhaseTimings] = []


def active_collector() -> Optional[PhaseTimings]:
    """The innermost phase collector, or ``None`` when not profiling."""
    return _collectors[-1] if _collectors else None


@contextmanager
def collect_phases() -> Iterator[PhaseTimings]:
    """Collect per-stage timings/digests for compiles inside the scope.

    >>> with collect_phases() as phases:
    ...     compile_source(source, "demo")
    >>> phases.lex_seconds  # doctest: +SKIP
    """
    collector = PhaseTimings()
    _collectors.append(collector)
    try:
        yield collector
    finally:
        _collectors.pop()


def token_stream_digest(tokens: Sequence[Token]) -> str:
    """Stable hex digest of a token stream (kind, text, position, value)."""
    hasher = sha256()
    update = hasher.update
    for token in tokens:
        update(f"{token.kind}\x1f{token.text}\x1f{token.line}\x1f"
               f"{token.column}\x1f{token.value!r}\x1e".encode())
    return hasher.hexdigest()


def module_digest(module: Module) -> str:
    """Stable hex digest of a module's printed IR."""
    return sha256(print_module(module).encode()).hexdigest()
