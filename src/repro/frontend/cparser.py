"""Recursive-descent parser for the mini-C frontend.

Grammar subset (no typedefs, no function pointers, no switch):

* top level: struct declarations, global variables, function definitions and
  prototypes;
* statements: declarations, expression statements, ``if``/``else``,
  ``while``, ``do``/``while``, ``for``, ``return``, ``break``, ``continue``
  and compound blocks;
* expressions: the usual C operator precedence including assignment,
  conditional, pointer/array/member access, casts and ``sizeof``.
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    ArrayIndex,
    ArrayTypeSpec,
    Assignment,
    BinaryOp,
    BreakStmt,
    Call,
    Cast,
    CharLiteral,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    FieldDecl,
    FloatLiteral,
    ForStmt,
    FunctionDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    Member,
    NamedTypeSpec,
    NullLiteral,
    ParamDecl,
    PointerTypeSpec,
    ReturnStmt,
    SizeOf,
    Stmt,
    StringLiteral,
    StructDecl,
    StructTypeSpec,
    TranslationUnit,
    TypeSpec,
    UnaryOp,
    VarDecl,
    WhileStmt,
)
from .lexer import Token, TokenKind, tokenize

__all__ = ["ParseError", "Parser", "parse"]

_TYPE_KEYWORDS = {"int", "char", "float", "double", "void", "long", "short", "unsigned", "signed"}

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class ParseError(Exception):
    """Raised on a syntax error, with the offending token's position."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (got {token.text!r} at line {token.line})")
        self.token = token


class Parser:
    """Token-stream parser producing a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0
        self._last = len(tokens) - 1  # index of the terminating EOF token

    # -- token helpers ------------------------------------------------------
    # The token list is EOF-terminated and ``_advance`` never moves past the
    # EOF token, so ``self._position`` always indexes a real token.  The hot
    # helpers below read ``kind``/``text`` directly instead of chaining
    # through ``_peek().is_punct(...)`` — this path runs once per token per
    # grammar decision and dominated parse time before being flattened.
    def _peek(self, offset: int = 0) -> Token:
        index = self._position + offset
        if index > self._last:
            index = self._last
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.EOF:
            self._position += 1
        return token

    def _check_punct(self, text: str) -> bool:
        token = self._tokens[self._position]
        return token.kind == TokenKind.PUNCT and token.text == text

    def _check_keyword(self, text: str) -> bool:
        token = self._tokens[self._position]
        return token.kind == TokenKind.KEYWORD and token.text == text

    def _accept_punct(self, text: str) -> bool:
        token = self._tokens[self._position]
        if token.kind == TokenKind.PUNCT and token.text == text:
            self._position += 1
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        token = self._tokens[self._position]
        if token.kind == TokenKind.KEYWORD and token.text == text:
            self._position += 1
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.PUNCT or token.text != text:
            raise ParseError(f"expected {text!r}", token)
        self._position += 1
        return token

    def _expect_ident(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.IDENT:
            raise ParseError("expected identifier", token)
        self._position += 1
        return token

    # -- types ----------------------------------------------------------------
    def _at_type_start(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind != TokenKind.KEYWORD:
            return False
        return token.text in _TYPE_KEYWORDS or token.text in ("struct", "const", "static", "extern")

    def _parse_base_type(self) -> TypeSpec:
        # Skip storage/qualifier keywords.
        while self._accept_keyword("const") or self._accept_keyword("static") \
                or self._accept_keyword("extern"):
            pass
        if self._accept_keyword("struct"):
            name_token = self._expect_ident()
            return StructTypeSpec(name_token.text)
        token = self._peek()
        if token.kind == TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            # Collapse multi-word types (unsigned long, long long...) onto one name.
            names = [self._advance().text]
            while self._peek().kind == TokenKind.KEYWORD and self._peek().text in _TYPE_KEYWORDS:
                names.append(self._advance().text)
            base = "int"
            if "void" in names:
                base = "void"
            elif "double" in names:
                base = "double"
            elif "float" in names:
                base = "float"
            elif "char" in names:
                base = "char"
            return NamedTypeSpec(base)
        raise ParseError("expected a type", token)

    def _parse_pointers(self, base: TypeSpec) -> TypeSpec:
        while self._accept_punct("*"):
            while self._accept_keyword("const"):
                pass
            base = PointerTypeSpec(base)
        return base

    # -- top level ------------------------------------------------------------
    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self._peek().kind != TokenKind.EOF:
            if self._check_keyword("struct") and self._peek(2).is_punct("{"):
                unit.structs.append(self._parse_struct_decl())
                continue
            if self._check_keyword("typedef"):
                # Accepted and skipped up to the terminating semicolon.
                while not self._accept_punct(";"):
                    self._advance()
                continue
            self._parse_external_declaration(unit)
        return unit

    def _parse_struct_decl(self) -> StructDecl:
        self._advance()  # struct
        name = self._expect_ident().text
        self._expect_punct("{")
        fields: List[FieldDecl] = []
        while not self._accept_punct("}"):
            base = self._parse_base_type()
            while True:
                field_type = self._parse_pointers(base)
                field_name = self._expect_ident().text
                if self._accept_punct("["):
                    size_expr = self._parse_expression()
                    self._expect_punct("]")
                    field_type = ArrayTypeSpec(field_type, size_expr)
                fields.append(FieldDecl(field_name, field_type))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        self._expect_punct(";")
        return StructDecl(name, fields)

    def _parse_external_declaration(self, unit: TranslationUnit) -> None:
        base = self._parse_base_type()
        declarator_type = self._parse_pointers(base)
        name_token = self._expect_ident()
        if self._check_punct("("):
            unit.functions.append(self._parse_function_rest(declarator_type, name_token.text))
            return
        # Global variable(s).
        current_type = declarator_type
        current_name = name_token.text
        while True:
            if self._accept_punct("["):
                size_expr = self._parse_expression() if not self._check_punct("]") else None
                self._expect_punct("]")
                current_type = ArrayTypeSpec(current_type, size_expr)
            initializer = None
            if self._accept_punct("="):
                initializer = self._parse_assignment()
            unit.globals.append(VarDecl(current_name, current_type, initializer,
                                        line=name_token.line))
            if not self._accept_punct(","):
                break
            current_type = self._parse_pointers(base)
            current_name = self._expect_ident().text
        self._expect_punct(";")

    def _parse_function_rest(self, return_type: TypeSpec, name: str) -> FunctionDecl:
        self._expect_punct("(")
        params: List[ParamDecl] = []
        is_vararg = False
        if not self._check_punct(")"):
            if self._check_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    if self._accept_punct("..."):
                        is_vararg = True
                        break
                    param_base = self._parse_base_type()
                    param_type = self._parse_pointers(param_base)
                    param_name = ""
                    if self._peek().kind == TokenKind.IDENT:
                        param_name = self._advance().text
                    if self._accept_punct("["):
                        if not self._check_punct("]"):
                            self._parse_expression()
                        self._expect_punct("]")
                        param_type = PointerTypeSpec(param_type)
                    params.append(ParamDecl(param_name or f"arg{len(params)}", param_type))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return FunctionDecl(name, return_type, params, None, is_vararg)
        body = self._parse_compound()
        return FunctionDecl(name, return_type, params, body, is_vararg)

    # -- statements --------------------------------------------------------------
    def _parse_compound(self) -> CompoundStmt:
        self._expect_punct("{")
        statements: List[Stmt] = []
        while not self._accept_punct("}"):
            statements.append(self._parse_statement())
        return CompoundStmt(statements)

    def _parse_statement(self) -> Stmt:
        if self._check_punct("{"):
            return self._parse_compound()
        if self._accept_punct(";"):
            return EmptyStmt()
        if self._at_type_start():
            return self._parse_declaration_statement()
        if self._accept_keyword("if"):
            self._expect_punct("(")
            condition = self._parse_expression()
            self._expect_punct(")")
            then_branch = self._parse_statement()
            else_branch = self._parse_statement() if self._accept_keyword("else") else None
            return IfStmt(condition, then_branch, else_branch)
        if self._accept_keyword("while"):
            self._expect_punct("(")
            condition = self._parse_expression()
            self._expect_punct(")")
            return WhileStmt(condition, self._parse_statement())
        if self._accept_keyword("do"):
            body = self._parse_statement()
            if not self._accept_keyword("while"):
                raise ParseError("expected 'while' after do-body", self._peek())
            self._expect_punct("(")
            condition = self._parse_expression()
            self._expect_punct(")")
            self._expect_punct(";")
            return DoWhileStmt(body, condition)
        if self._accept_keyword("for"):
            self._expect_punct("(")
            init: Optional[Stmt] = None
            if not self._check_punct(";"):
                if self._at_type_start():
                    init = self._parse_declaration_statement()
                else:
                    init = ExprStmt(self._parse_expression())
                    self._expect_punct(";")
            else:
                self._advance()
            condition = None
            if not self._check_punct(";"):
                condition = self._parse_expression()
            self._expect_punct(";")
            step = None
            if not self._check_punct(")"):
                step = self._parse_expression()
            self._expect_punct(")")
            return ForStmt(init, condition, step, self._parse_statement())
        if self._accept_keyword("return"):
            value = None if self._check_punct(";") else self._parse_expression()
            self._expect_punct(";")
            return ReturnStmt(value)
        if self._accept_keyword("break"):
            self._expect_punct(";")
            return BreakStmt()
        if self._accept_keyword("continue"):
            self._expect_punct(";")
            return ContinueStmt()
        expression = self._parse_expression()
        self._expect_punct(";")
        return ExprStmt(expression)

    def _parse_declaration_statement(self) -> DeclStmt:
        base = self._parse_base_type()
        declarations: List[VarDecl] = []
        while True:
            declared_type = self._parse_pointers(base)
            name_token = self._expect_ident()
            while self._accept_punct("["):
                size_expr = self._parse_expression() if not self._check_punct("]") else None
                self._expect_punct("]")
                declared_type = ArrayTypeSpec(declared_type, size_expr)
            initializer = None
            if self._accept_punct("="):
                initializer = self._parse_assignment()
            declarations.append(VarDecl(name_token.text, declared_type, initializer,
                                        line=name_token.line))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return DeclStmt(declarations)

    # -- expressions ----------------------------------------------------------------
    def _parse_expression(self) -> Expr:
        expression = self._parse_assignment()
        while self._accept_punct(","):
            # The comma operator evaluates both and yields the right side.
            right = self._parse_assignment()
            expression = BinaryOp(",", expression, right)
        return expression

    def _parse_assignment(self) -> Expr:
        target = self._parse_conditional()
        token = self._peek()
        if token.kind == TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            op = token.text[:-1] if token.text != "=" else ""
            return Assignment(target, value, op, line=token.line)
        return target

    def _parse_conditional(self) -> Expr:
        condition = self._parse_binary(1)
        if self._accept_punct("?"):
            true_value = self._parse_expression()
            self._expect_punct(":")
            false_value = self._parse_conditional()
            return Conditional(condition, true_value, false_value)
        return condition

    def _parse_binary(self, min_precedence: int) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            precedence = (_BINARY_PRECEDENCE.get(token.text)
                          if token.kind == TokenKind.PUNCT else None)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = BinaryOp(token.text, left, right, line=token.line)

    def _is_cast_start(self) -> bool:
        """True when the upcoming ``(`` starts a cast expression."""
        if not self._check_punct("("):
            return False
        next_token = self._peek(1)
        return next_token.kind == TokenKind.KEYWORD and (
            next_token.text in _TYPE_KEYWORDS or next_token.text == "struct"
            or next_token.text == "const"
        )

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind == TokenKind.PUNCT and token.text in ("-", "!", "~", "*", "&", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return UnaryOp(token.text, operand, line=token.line)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            operand = self._parse_unary()
            return UnaryOp(token.text, operand, is_postfix=False, line=token.line)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check_punct("(") and (self._peek(1).text in _TYPE_KEYWORDS
                                           or self._peek(1).text == "struct"):
                self._expect_punct("(")
                base = self._parse_base_type()
                target = self._parse_pointers(base)
                self._expect_punct(")")
                return SizeOf(target, line=token.line)
            operand = self._parse_unary()
            return SizeOf(None, operand, line=token.line)
        if self._is_cast_start():
            self._expect_punct("(")
            base = self._parse_base_type()
            target = self._parse_pointers(base)
            self._expect_punct(")")
            operand = self._parse_unary()
            return Cast(target, operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expression = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expression = ArrayIndex(expression, index, line=token.line)
            elif token.is_punct("."):
                self._advance()
                field = self._expect_ident().text
                expression = Member(expression, field, is_arrow=False, line=token.line)
            elif token.is_punct("->"):
                self._advance()
                field = self._expect_ident().text
                expression = Member(expression, field, is_arrow=True, line=token.line)
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expression = UnaryOp(token.text, expression, is_postfix=True, line=token.line)
            elif token.is_punct("(") and isinstance(expression, Identifier):
                self._advance()
                args: List[Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expression = Call(expression.name, args, line=token.line)
            else:
                return expression

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == TokenKind.INT:
            self._advance()
            return IntLiteral(token.value, line=token.line)
        if token.kind == TokenKind.FLOAT:
            self._advance()
            return FloatLiteral(token.value, line=token.line)
        if token.kind == TokenKind.CHAR:
            self._advance()
            return CharLiteral(token.value, line=token.line)
        if token.kind == TokenKind.STRING:
            self._advance()
            return StringLiteral(token.value, line=token.line)
        if token.is_keyword("NULL"):
            self._advance()
            return NullLiteral(line=token.line)
        if token.kind == TokenKind.IDENT:
            self._advance()
            return Identifier(token.text, line=token.line)
        if token.is_punct("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        raise ParseError("expected an expression", token)


def parse(source: str) -> TranslationUnit:
    """Parse mini-C ``source`` text into an AST."""
    return Parser(tokenize(source)).parse_translation_unit()
