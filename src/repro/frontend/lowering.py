"""Lowering of the mini-C AST to the SSA IR.

The lowerer mirrors what clang does at ``-O0``: every local variable becomes
a stack slot (``alloca``) accessed through loads and stores, and the
``mem2reg`` transform later rewrites the scalar slots into SSA registers.
Pointer arithmetic is lowered to :class:`~repro.ir.instructions.PtrAddInst`
with byte scaling, struct field access to constant byte offsets, and
``malloc``/``free`` to the dedicated allocation instructions the pointer
analyses treat as location sites.

Known simplifications (documented, acceptable for static analysis targets):

* ``&&`` and ``||`` are lowered without short-circuiting (both operands are
  evaluated and combined bitwise);
* the conditional operator evaluates both arms and selects;
* struct assignment by value is not supported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.module import Module
from ..ir.types import (
    ArrayType,
    BOOL,
    DOUBLE,
    FloatType,
    INT32,
    INT64,
    INT8,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable, NullPointer, Value
from .ast_nodes import (
    ArrayIndex,
    Assignment,
    BinaryOp,
    BreakStmt,
    Call,
    Cast,
    CharLiteral,
    CompoundStmt,
    Conditional,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    Member,
    NullLiteral,
    ReturnStmt,
    SizeOf,
    Stmt,
    StringLiteral,
    TranslationUnit,
    UnaryOp,
    WhileStmt,
)
from .sema import SemanticInfo, analyze

__all__ = ["LoweringError", "lower_translation_unit"]


class LoweringError(Exception):
    """Raised when the frontend meets a construct it cannot lower."""


def _is_float_type(type_: Type) -> bool:
    return isinstance(type_, FloatType)


# Operator tables hoisted to module level: ``_lower_binary_parts`` runs once
# per binary expression and used to rebuild these dict literals on each call.
_CMP_PREDICATES = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                   ">": "sgt", ">=": "sge"}
_INT_OPCODES = {
    "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
}
_FLOAT_OPCODES = {
    "+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "srem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
}


class _FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, module_lowerer: "_ModuleLowerer", decl: FunctionDecl, function: Function):
        self.parent = module_lowerer
        self.info = module_lowerer.info
        self.module = module_lowerer.module
        self.decl = decl
        self.function = function
        self.builder = IRBuilder()
        # Scope stack: name -> (slot address, declared type).
        self.scopes: List[Dict[str, Tuple[Value, Type]]] = []
        # (continue target, break target) for the innermost loops.
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []

    # -- scope handling ------------------------------------------------------
    def _push_scope(self) -> None:
        self.scopes.append({})

    def _pop_scope(self) -> None:
        self.scopes.pop()

    def _declare_local(self, name: str, slot: Value, declared_type: Type) -> None:
        self.scopes[-1][name] = (slot, declared_type)

    def _lookup(self, name: str) -> Optional[Tuple[Value, Type]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- entry point -----------------------------------------------------------
    def lower(self) -> None:
        entry = self.function.append_block("entry")
        self.builder.position_at_end(entry)
        self._push_scope()
        # The whole body is lowered inside one batch scope: instructions land
        # in their block in one extend per block instead of one append each.
        with self.builder.batched():
            # Parameters become stack slots so they can be reassigned in the body.
            for arg in self.function.args:
                slot = self.builder.alloca(arg.type, name=f"{arg.name}.addr")
                self.builder.store(arg, slot)
                self._declare_local(arg.name, slot, arg.type)
            assert self.decl.body is not None
            self._lower_compound(self.decl.body)
            self._pop_scope()
        # Outside the batch scope: every block's instruction list is final,
        # so the terminator scan below observes complete blocks.
        self._terminate_open_blocks()

    def _terminate_open_blocks(self) -> None:
        """Give every block a terminator (fall-through returns)."""
        for block in self.function.blocks:
            if block.terminator is not None:
                continue
            self.builder.position_at_end(block)
            return_type = self.function.return_type
            if return_type == VOID:
                self.builder.ret()
            elif return_type.is_pointer():
                self.builder.ret(NullPointer(return_type))
            elif _is_float_type(return_type):
                self.builder.ret(ConstantFloat(0.0, return_type))
            else:
                self.builder.ret(ConstantInt(0, return_type))

    # -- statements --------------------------------------------------------------
    def _current_terminated(self) -> bool:
        # Routed through the builder: inside a batch scope the terminator may
        # still be pending rather than in the block's instruction list.
        return self.builder.is_terminated()

    def _lower_statement(self, stmt: Stmt) -> None:
        if self._current_terminated():
            # Code after return/break/continue: park it in an unreachable block.
            dead = self.function.append_block("dead")
            self.builder.position_at_end(dead)
        # Dispatch on the exact node class (one dict lookup instead of an
        # isinstance chain; AST nodes are never subclassed).
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")
        handler(self, stmt)

    def _lower_expr_stmt(self, stmt: ExprStmt) -> None:
        self._lower_rvalue(stmt.expression)

    def _lower_break(self, stmt: BreakStmt) -> None:
        if not self.loop_stack:
            raise LoweringError("break outside of a loop")
        self.builder.branch(self.loop_stack[-1][1])

    def _lower_continue(self, stmt: ContinueStmt) -> None:
        if not self.loop_stack:
            raise LoweringError("continue outside of a loop")
        self.builder.branch(self.loop_stack[-1][0])

    def _lower_empty(self, stmt: EmptyStmt) -> None:
        pass

    def _lower_compound(self, stmt: CompoundStmt) -> None:
        self._push_scope()
        for child in stmt.statements:
            self._lower_statement(child)
        self._pop_scope()

    def _lower_decl(self, stmt: DeclStmt) -> None:
        for decl in stmt.declarations:
            declared_type = self.info.resolve(decl.type_spec)
            slot = self.builder.alloca(declared_type, name=decl.name)
            self._declare_local(decl.name, slot, declared_type)
            if decl.initializer is not None:
                value, value_type = self._lower_rvalue(decl.initializer)
                value = self._convert(value, value_type, declared_type)
                self.builder.store(value, slot)

    def _lower_if(self, stmt: IfStmt) -> None:
        condition = self._lower_condition(stmt.condition)
        then_block = self.function.append_block("if.then")
        merge_block = self.function.append_block("if.end")
        else_block = merge_block
        if stmt.else_branch is not None:
            else_block = self.function.append_block("if.else")
        self.builder.cond_branch(condition, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._lower_statement(stmt.then_branch)
        if not self._current_terminated():
            self.builder.branch(merge_block)

        if stmt.else_branch is not None:
            self.builder.position_at_end(else_block)
            self._lower_statement(stmt.else_branch)
            if not self._current_terminated():
                self.builder.branch(merge_block)

        self.builder.position_at_end(merge_block)

    def _lower_while(self, stmt: WhileStmt) -> None:
        header = self.function.append_block("while.cond")
        body = self.function.append_block("while.body")
        exit_block = self.function.append_block("while.end")
        self.builder.branch(header)

        self.builder.position_at_end(header)
        condition = self._lower_condition(stmt.condition)
        self.builder.cond_branch(condition, body, exit_block)

        self.builder.position_at_end(body)
        self.loop_stack.append((header, exit_block))
        self._lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self._current_terminated():
            self.builder.branch(header)

        self.builder.position_at_end(exit_block)

    def _lower_do_while(self, stmt: DoWhileStmt) -> None:
        body = self.function.append_block("do.body")
        cond_block = self.function.append_block("do.cond")
        exit_block = self.function.append_block("do.end")
        self.builder.branch(body)

        self.builder.position_at_end(body)
        self.loop_stack.append((cond_block, exit_block))
        self._lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self._current_terminated():
            self.builder.branch(cond_block)

        self.builder.position_at_end(cond_block)
        condition = self._lower_condition(stmt.condition)
        self.builder.cond_branch(condition, body, exit_block)

        self.builder.position_at_end(exit_block)

    def _lower_for(self, stmt: ForStmt) -> None:
        self._push_scope()
        if stmt.init is not None:
            self._lower_statement(stmt.init)
        header = self.function.append_block("for.cond")
        body = self.function.append_block("for.body")
        step_block = self.function.append_block("for.inc")
        exit_block = self.function.append_block("for.end")
        self.builder.branch(header)

        self.builder.position_at_end(header)
        if stmt.condition is not None:
            condition = self._lower_condition(stmt.condition)
            self.builder.cond_branch(condition, body, exit_block)
        else:
            self.builder.branch(body)

        self.builder.position_at_end(body)
        self.loop_stack.append((step_block, exit_block))
        self._lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self._current_terminated():
            self.builder.branch(step_block)

        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._lower_rvalue(stmt.step)
        self.builder.branch(header)

        self.builder.position_at_end(exit_block)
        self._pop_scope()

    def _lower_return(self, stmt: ReturnStmt) -> None:
        return_type = self.function.return_type
        if stmt.value is None or return_type == VOID:
            self.builder.ret()
            return
        value, value_type = self._lower_rvalue(stmt.value)
        self.builder.ret(self._convert(value, value_type, return_type))

    # -- conditions ----------------------------------------------------------------
    def _lower_condition(self, expr: Expr) -> Value:
        value, value_type = self._lower_rvalue(expr)
        return self._to_bool(value, value_type)

    def _to_bool(self, value: Value, value_type: Type) -> Value:
        if value_type == BOOL:
            return value
        if value_type.is_pointer():
            return self.builder.icmp("ne", value, NullPointer(value_type))
        if _is_float_type(value_type):
            return self.builder.icmp("ne", value, ConstantFloat(0.0, value_type))
        return self.builder.icmp("ne", value, ConstantInt(0, value_type))

    # -- conversions ---------------------------------------------------------------
    def _convert(self, value: Value, from_type: Type, to_type: Type) -> Value:
        if from_type == to_type or to_type == VOID:
            return value
        if from_type.is_pointer() and to_type.is_pointer():
            return self.builder.cast("bitcast", value, to_type)
        if from_type.is_pointer() and to_type.is_integer():
            return self.builder.cast("ptrtoint", value, to_type)
        if from_type.is_integer() and to_type.is_pointer():
            if isinstance(value, ConstantInt) and value.value == 0:
                return NullPointer(to_type)
            return self.builder.cast("inttoptr", value, to_type)
        if from_type.is_integer() and to_type.is_integer():
            if isinstance(value, ConstantInt):
                return ConstantInt(value.value, to_type)
            assert isinstance(from_type, IntType) and isinstance(to_type, IntType)
            kind = "sext" if to_type.bits > from_type.bits else "trunc"
            return self.builder.cast(kind, value, to_type)
        if from_type.is_integer() and _is_float_type(to_type):
            return self.builder.cast("sitofp", value, to_type)
        if _is_float_type(from_type) and to_type.is_integer():
            return self.builder.cast("fptosi", value, to_type)
        if _is_float_type(from_type) and _is_float_type(to_type):
            return self.builder.cast("bitcast", value, to_type)
        return value

    # -- lvalues -----------------------------------------------------------------------
    def _lower_lvalue(self, expr: Expr) -> Tuple[Value, Type]:
        """Return the address of ``expr`` and the type of the object it names."""
        if isinstance(expr, Identifier):
            local = self._lookup(expr.name)
            if local is not None:
                return local
            global_var = self.parent.global_map.get(expr.name)
            if global_var is not None:
                return global_var, global_var.value_type
            raise LoweringError(f"use of undeclared identifier {expr.name!r}")
        if isinstance(expr, UnaryOp) and expr.op == "*":
            pointer, pointer_type = self._lower_rvalue(expr.operand)
            if not pointer_type.is_pointer():
                raise LoweringError("cannot dereference a non-pointer value")
            return pointer, pointer_type.pointee
        if isinstance(expr, ArrayIndex):
            return self._lower_index_address(expr)
        if isinstance(expr, Member):
            return self._lower_member_address(expr)
        raise LoweringError(f"expression is not an lvalue: {type(expr).__name__}")

    def _lower_index_address(self, expr: ArrayIndex) -> Tuple[Value, Type]:
        base_value, base_type = self._lower_rvalue(expr.base)
        if not base_type.is_pointer():
            raise LoweringError("subscripted value is not a pointer or array")
        element_type = base_type.pointee
        index_value, index_type = self._lower_rvalue(expr.index)
        scale = max(1, element_type.size_in_bytes())
        address_type = PointerType(element_type)
        if isinstance(index_value, ConstantInt):
            address = self.builder.ptradd(base_value, offset=index_value.value * scale,
                                          result_type=address_type)
        else:
            address = self.builder.ptradd(base_value, index_value, scale=scale,
                                          result_type=address_type)
        return address, element_type

    def _lower_member_address(self, expr: Member) -> Tuple[Value, Type]:
        if expr.is_arrow:
            base_value, base_type = self._lower_rvalue(expr.base)
            if not base_type.is_pointer() or not isinstance(base_type.pointee, StructType):
                raise LoweringError("arrow access on a non-struct-pointer value")
            struct_type = base_type.pointee
            base_address = base_value
        else:
            base_address, struct_type = self._lower_lvalue(expr.base)
            if not isinstance(struct_type, StructType):
                raise LoweringError("member access on a non-struct value")
        offset = struct_type.field_offset(expr.field_name)
        field_type = struct_type.field_type(expr.field_name)
        address = self.builder.ptradd(base_address, offset=offset,
                                      result_type=PointerType(field_type),
                                      name=f"{expr.field_name}.addr")
        return address, field_type

    # -- rvalues ----------------------------------------------------------------------------
    def _lower_rvalue(self, expr: Expr) -> Tuple[Value, Type]:
        # Dispatch on the exact node class; this runs once per expression
        # node and replaced a fourteen-way isinstance chain.
        handler = _RVALUE_DISPATCH.get(expr.__class__)
        if handler is None:
            raise LoweringError(f"unsupported expression {type(expr).__name__}")
        return handler(self, expr)

    def _lower_int_literal(self, expr: IntLiteral) -> Tuple[Value, Type]:
        return ConstantInt(expr.value, INT32), INT32

    def _lower_char_literal(self, expr: CharLiteral) -> Tuple[Value, Type]:
        return ConstantInt(expr.value, INT32), INT32

    def _lower_float_literal(self, expr: FloatLiteral) -> Tuple[Value, Type]:
        return ConstantFloat(expr.value, DOUBLE), DOUBLE

    def _lower_string_literal(self, expr: StringLiteral) -> Tuple[Value, Type]:
        return self.parent.string_literal(expr.value)

    def _lower_null_literal(self, expr: NullLiteral) -> Tuple[Value, Type]:
        pointer_type = PointerType(INT8)
        return NullPointer(pointer_type), pointer_type

    def _lower_cast_expr(self, expr: Cast) -> Tuple[Value, Type]:
        value, value_type = self._lower_rvalue(expr.operand)
        target_type = self.info.resolve(expr.target_type)
        return self._convert(value, value_type, target_type), target_type

    def _lower_sizeof(self, expr: SizeOf) -> Tuple[Value, Type]:
        if expr.target_type is not None:
            size = self.info.resolve(expr.target_type).size_in_bytes()
        else:
            assert expr.operand is not None
            _, operand_type = self._lower_rvalue(expr.operand)
            size = operand_type.size_in_bytes()
        return ConstantInt(size, INT32), INT32

    def _load_from_lvalue(self, expr: Expr) -> Tuple[Value, Type]:
        address, object_type = self._lower_lvalue(expr)
        if isinstance(object_type, ArrayType):
            # Array-to-pointer decay: the value of an array is its first element's address.
            return address, PointerType(object_type.element)
        if isinstance(object_type, StructType):
            # Structs are manipulated by address (no by-value copies).
            return address, PointerType(object_type)
        loaded = self.builder.load(address, object_type)
        return loaded, object_type

    def _lower_unary(self, expr: UnaryOp) -> Tuple[Value, Type]:
        if expr.op == "*":
            address, object_type = self._lower_lvalue(expr)
            if isinstance(object_type, (ArrayType, StructType)):
                decayed = (PointerType(object_type.element)
                           if isinstance(object_type, ArrayType) else PointerType(object_type))
                return address, decayed
            return self.builder.load(address, object_type), object_type
        if expr.op == "&":
            address, object_type = self._lower_lvalue(expr.operand)
            return address, PointerType(object_type)
        if expr.op in ("++", "--"):
            return self._lower_incdec(expr)
        value, value_type = self._lower_rvalue(expr.operand)
        if expr.op == "-":
            opcode = "fsub" if _is_float_type(value_type) else "sub"
            zero = (ConstantFloat(0.0, value_type) if _is_float_type(value_type)
                    else ConstantInt(0, value_type))
            return self.builder.binary(opcode, zero, value), value_type
        if expr.op == "!":
            boolean = self._to_bool(value, value_type)
            return self.builder.icmp("eq", boolean, ConstantInt(0, BOOL)), BOOL
        if expr.op == "~":
            return self.builder.binary("xor", value, ConstantInt(-1, value_type)), value_type
        raise LoweringError(f"unsupported unary operator {expr.op!r}")

    def _lower_incdec(self, expr: UnaryOp) -> Tuple[Value, Type]:
        address, object_type = self._lower_lvalue(expr.operand)
        old_value = self.builder.load(address, object_type)
        if object_type.is_pointer():
            element_size = max(1, object_type.pointee.size_in_bytes())
            delta = element_size if expr.op == "++" else -element_size
            new_value = self.builder.ptradd(old_value, offset=delta)
        else:
            one = ConstantInt(1, object_type)
            opcode = "add" if expr.op == "++" else "sub"
            new_value = self.builder.binary(opcode, old_value, one)
        self.builder.store(new_value, address)
        result = old_value if expr.is_postfix else new_value
        return result, object_type

    def _lower_binary(self, expr: BinaryOp) -> Tuple[Value, Type]:
        return self._lower_binary_parts(expr.op, expr.lhs, expr.rhs)

    def _lower_binary_parts(self, op: str, lhs: Expr, rhs: Expr) -> Tuple[Value, Type]:
        """Lower ``lhs op rhs``.

        Split out from :meth:`_lower_binary` so compound assignment can reuse
        it directly instead of allocating a synthetic :class:`BinaryOp` node
        per ``target op= value`` expression.
        """
        if op == ",":
            self._lower_rvalue(lhs)
            return self._lower_rvalue(rhs)
        if op == "&&" or op == "||":
            lhs_value, lhs_type = self._lower_rvalue(lhs)
            rhs_value, rhs_type = self._lower_rvalue(rhs)
            lhs_bool = self._to_bool(lhs_value, lhs_type)
            rhs_bool = self._to_bool(rhs_value, rhs_type)
            opcode = "and" if op == "&&" else "or"
            return self.builder.binary(opcode, lhs_bool, rhs_bool), BOOL
        lhs_value, lhs_type = self._lower_rvalue(lhs)
        rhs_value, rhs_type = self._lower_rvalue(rhs)
        # Pointer arithmetic.
        if (op == "+" or op == "-") and lhs_type.is_pointer() and rhs_type.is_integer():
            element_size = max(1, lhs_type.pointee.size_in_bytes())
            scale = element_size if op == "+" else -element_size
            if isinstance(rhs_value, ConstantInt):
                address = self.builder.ptradd(lhs_value, offset=rhs_value.value * scale)
            else:
                address = self.builder.ptradd(lhs_value, rhs_value, scale=scale)
            return address, lhs_type
        if op == "+" and rhs_type.is_pointer() and lhs_type.is_integer():
            element_size = max(1, rhs_type.pointee.size_in_bytes())
            if isinstance(lhs_value, ConstantInt):
                address = self.builder.ptradd(rhs_value, offset=lhs_value.value * element_size)
            else:
                address = self.builder.ptradd(rhs_value, lhs_value, scale=element_size)
            return address, rhs_type
        if op == "-" and lhs_type.is_pointer() and rhs_type.is_pointer():
            element_size = max(1, lhs_type.pointee.size_in_bytes())
            lhs_int = self.builder.cast("ptrtoint", lhs_value, INT64)
            rhs_int = self.builder.cast("ptrtoint", rhs_value, INT64)
            difference = self.builder.sub(lhs_int, rhs_int)
            if element_size > 1:
                difference = self.builder.sdiv(difference, ConstantInt(element_size, INT64))
            return difference, INT64
        # Comparisons.
        predicate = _CMP_PREDICATES.get(op)
        if predicate is not None:
            rhs_value = self._convert(rhs_value, rhs_type, lhs_type)
            return self.builder.icmp(predicate, lhs_value, rhs_value), BOOL
        # Ordinary arithmetic: unify operand types (prefer float, then wider int).
        result_type = lhs_type
        if _is_float_type(rhs_type) and not _is_float_type(lhs_type):
            result_type = rhs_type
        lhs_value = self._convert(lhs_value, lhs_type, result_type)
        rhs_value = self._convert(rhs_value, rhs_type, result_type)
        opcode_map = _FLOAT_OPCODES if _is_float_type(result_type) else _INT_OPCODES
        opcode = opcode_map.get(op)
        if opcode is None:
            raise LoweringError(f"unsupported binary operator {op!r}")
        return self.builder.binary(opcode, lhs_value, rhs_value), result_type

    def _lower_assignment(self, expr: Assignment) -> Tuple[Value, Type]:
        address, object_type = self._lower_lvalue(expr.target)
        if expr.op:
            # Compound assignment lowers as target = target <op> value (the
            # target is deliberately evaluated twice, matching the previous
            # synthetic-BinaryOp lowering instruction for instruction).
            value, value_type = self._lower_binary_parts(expr.op, expr.target, expr.value)
        else:
            value, value_type = self._lower_rvalue(expr.value)
        stored_type = object_type
        if isinstance(object_type, ArrayType):
            raise LoweringError("cannot assign to an array")
        value = self._convert(value, value_type, stored_type)
        self.builder.store(value, address)
        return value, stored_type

    def _lower_conditional(self, expr: Conditional) -> Tuple[Value, Type]:
        condition = self._lower_condition(expr.condition)
        true_value, true_type = self._lower_rvalue(expr.true_value)
        false_value, false_type = self._lower_rvalue(expr.false_value)
        false_value = self._convert(false_value, false_type, true_type)
        return self.builder.select(condition, true_value, false_value), true_type

    def _lower_call(self, expr: Call) -> Tuple[Value, Type]:
        name = expr.callee
        # Allocation / deallocation primitives get dedicated instructions.
        if name == "malloc" and len(expr.args) == 1:
            size_value, size_type = self._lower_rvalue(expr.args[0])
            size_value = self._convert(size_value, size_type, INT32)
            pointer = self.builder.malloc(size_value)
            return pointer, PointerType(INT8)
        if name == "calloc" and len(expr.args) == 2:
            count_value, count_type = self._lower_rvalue(expr.args[0])
            size_value, size_type = self._lower_rvalue(expr.args[1])
            count_value = self._convert(count_value, count_type, INT32)
            size_value = self._convert(size_value, size_type, INT32)
            total = self.builder.mul(count_value, size_value)
            pointer = self.builder.malloc(total)
            return pointer, PointerType(INT8)
        if name == "free" and len(expr.args) == 1:
            pointer_value, _ = self._lower_rvalue(expr.args[0])
            freed = self.builder.free(pointer_value)
            return freed, PointerType(INT8)

        arg_values: List[Value] = []
        for arg in expr.args:
            value, value_type = self._lower_rvalue(arg)
            arg_values.append(value)

        callee_function = self.module.get_function(name)
        signature = self.info.signature_for_call(name)
        if callee_function is not None and not callee_function.is_declaration():
            call = self.builder.call(callee_function, arg_values, name=f"{name}.ret")
            return call, callee_function.return_type
        return_type = signature.return_type if signature is not None else INT32
        call = self.builder.call(name, arg_values, return_type, name=f"{name}.ret")
        return call, return_type if return_type != VOID else INT32


# Exact-class dispatch tables (built after the class body; AST nodes are
# never subclassed, so ``expr.__class__`` lookups are equivalent to the
# isinstance chains they replaced).
_STMT_DISPATCH = {
    CompoundStmt: _FunctionLowerer._lower_compound,
    DeclStmt: _FunctionLowerer._lower_decl,
    ExprStmt: _FunctionLowerer._lower_expr_stmt,
    IfStmt: _FunctionLowerer._lower_if,
    WhileStmt: _FunctionLowerer._lower_while,
    DoWhileStmt: _FunctionLowerer._lower_do_while,
    ForStmt: _FunctionLowerer._lower_for,
    ReturnStmt: _FunctionLowerer._lower_return,
    BreakStmt: _FunctionLowerer._lower_break,
    ContinueStmt: _FunctionLowerer._lower_continue,
    EmptyStmt: _FunctionLowerer._lower_empty,
}

_RVALUE_DISPATCH = {
    IntLiteral: _FunctionLowerer._lower_int_literal,
    CharLiteral: _FunctionLowerer._lower_char_literal,
    FloatLiteral: _FunctionLowerer._lower_float_literal,
    StringLiteral: _FunctionLowerer._lower_string_literal,
    NullLiteral: _FunctionLowerer._lower_null_literal,
    Identifier: _FunctionLowerer._load_from_lvalue,
    ArrayIndex: _FunctionLowerer._load_from_lvalue,
    Member: _FunctionLowerer._load_from_lvalue,
    UnaryOp: _FunctionLowerer._lower_unary,
    BinaryOp: _FunctionLowerer._lower_binary,
    Assignment: _FunctionLowerer._lower_assignment,
    Conditional: _FunctionLowerer._lower_conditional,
    Call: _FunctionLowerer._lower_call,
    Cast: _FunctionLowerer._lower_cast_expr,
    SizeOf: _FunctionLowerer._lower_sizeof,
}


class _ModuleLowerer:
    """Lowers a whole translation unit."""

    def __init__(self, unit: TranslationUnit, info: SemanticInfo, name: str):
        self.unit = unit
        self.info = info
        self.module = Module(name)
        self.global_map: Dict[str, GlobalVariable] = {}
        self._string_count = 0

    def string_literal(self, text: str) -> Tuple[Value, Type]:
        """Intern a string literal as a constant global byte array."""
        name = f".str.{self._string_count}"
        self._string_count += 1
        array_type = ArrayType(INT8, len(text) + 1)
        variable = self.module.create_global(name, array_type, is_constant_data=True)
        return variable, PointerType(INT8)

    def lower(self) -> Module:
        self.module.struct_types.update(self.info.structs)
        for declaration in self.info.global_decls:
            value_type = self.info.resolve(declaration.type_spec)
            variable = self.module.create_global(declaration.name, value_type)
            self.global_map[declaration.name] = variable
        # Create all functions first so that calls can reference them.
        lowerers: List[_FunctionLowerer] = []
        for name, decl in self.info.function_decls.items():
            signature = self.info.function_types[name]
            function = self.module.create_function(
                name, signature, [param.name for param in decl.params])
            if decl.body is not None:
                lowerers.append(_FunctionLowerer(self, decl, function))
        for lowerer in lowerers:
            lowerer.lower()
        return self.module


def lower_translation_unit(unit: TranslationUnit, name: str = "module",
                           info: Optional[SemanticInfo] = None) -> Module:
    """Lower a parsed translation unit to an IR module (no optimisation)."""
    info = info or analyze(unit)
    return _ModuleLowerer(unit, info, name).lower()
