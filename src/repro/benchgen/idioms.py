"""A library of C idioms used to synthesise benchmark programs.

The paper evaluates on three C suites (Prolangs, PtrDist, MallocBench) that
are not redistributable here, so the synthetic suites are assembled from the
pointer idioms those programs are built of: byte-buffer serialisation,
strided numeric loops, struct field manipulation, string routines,
allocator-heavy code, linked structures and table-driven indexing.  Each
idiom is a template producing one self-contained C function; the generator
(:mod:`repro.benchgen.generator`) instantiates and composes them.

Every template receives the generator's explicitly threaded
``random.Random`` and draws its per-instance variation (strides, buffer
sizes, sentinel bytes) from it — never from ambient state or the builtin
``hash`` — so an instantiated idiom is bit-identical across interpreter
processes regardless of ``PYTHONHASHSEED``.

Every idiom advertises which analyses are expected to disambiguate its
accesses (``favours``), which is what shapes the relative precision of the
columns in the Figure 13 reproduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["Idiom", "IDIOMS", "idiom_names", "get_idiom"]


@dataclass(frozen=True)
class Idiom:
    """One C-source template."""

    name: str
    #: Analyses expected to disambiguate the idiom's accesses
    #: (subset of {"rbaa", "basic", "scev"}); purely documentary.
    favours: Sequence[str]
    #: Template: ``render(index, rng)`` returns the C source of one function
    #: named ``<name>_<index>``, drawing instance variation from ``rng``.
    render: Callable[[int, random.Random], str]
    #: A call statement exercising the function from ``main`` given the
    #: index and the names of the buffers available in ``main``.
    call: Callable[[int], str]


def _serialize(index: int, rng: random.Random) -> str:
    marker = rng.randrange(1, 127)
    return f"""
void serialize_{index}(char* buf, int n, char* payload) {{
  char* cursor;
  char* end;
  for (cursor = buf, end = buf + n; cursor < end; cursor += 2) {{
    *cursor = {marker};
    *(cursor + 1) = 0;
  }}
  {{
    char* limit = end + strlen(payload);
    while (cursor < limit) {{
      *cursor = *payload;
      cursor++;
      payload++;
    }}
  }}
}}
"""


def _strided(index: int, rng: random.Random) -> str:
    stride = 2 + rng.randrange(3)
    return f"""
void strided_{index}(float* v, float x, float y, int n) {{
  int i = 0;
  while (i < n) {{
    v[i] += x;
    v[i + 1] += y;
    i += {stride};
  }}
}}
"""


def _struct_fields(index: int, rng: random.Random) -> str:
    tag = 8 + rng.randrange(8)
    return f"""
struct record_{index} {{ int key; int count; int flags; char tag[{tag}]; }};

void update_record_{index}(struct record_{index}* r, char* name, int n) {{
  int i;
  r->key = n;
  r->count = r->count + 1;
  r->flags = 0;
  for (i = 0; i < n; i++) {{
    r->tag[i] = name[i];
  }}
}}
"""


def _split_halves(index: int, rng: random.Random) -> str:
    return f"""
void split_halves_{index}(int* data, int n) {{
  int* lo = data;
  int* hi = data + n;
  int i;
  for (i = 0; i < n; i++) {{
    lo[i] = i;
    hi[i] = -i;
  }}
}}
"""


def _string_scan(index: int, rng: random.Random) -> str:
    needle = 32 + rng.randrange(32)
    return f"""
int string_scan_{index}(char* text, char* out) {{
  int count = 0;
  char* src = text;
  char* dst = out;
  while (*src) {{
    if (*src == {needle}) {{
      count++;
    }}
    *dst = *src;
    src++;
    dst++;
  }}
  *dst = 0;
  return count;
}}
"""


def _allocator(index: int, rng: random.Random) -> str:
    chunk = 16 + rng.randrange(5) * 8
    return f"""
char* pool_alloc_{index}(int users) {{
  char* pool = (char*)malloc(users * {chunk});
  char* header = (char*)malloc(users * 4);
  int i;
  for (i = 0; i < users; i++) {{
    char* slot = pool + i * {chunk};
    *slot = 1;
    header[i] = 0;
  }}
  return pool;
}}
"""


def _linked_list(index: int, rng: random.Random) -> str:
    return f"""
struct node_{index} {{ int value; struct node_{index}* next; }};

int list_sum_{index}(int n) {{
  struct node_{index}* head = NULL;
  struct node_{index}* cur;
  int i;
  int total = 0;
  for (i = 0; i < n; i++) {{
    struct node_{index}* fresh = (struct node_{index}*)malloc(sizeof(struct node_{index}));
    fresh->value = i;
    fresh->next = (struct node_{index}*)head;
    head = fresh;
  }}
  for (cur = head; cur != NULL; cur = (struct node_{index}*)cur->next) {{
    total += cur->value;
  }}
  return total;
}}
"""


def _matrix(index: int, rng: random.Random) -> str:
    width = 8 + rng.randrange(8)
    return f"""
void matrix_fill_{index}(double* m, int rows) {{
  int r;
  int c;
  for (r = 0; r < rows; r++) {{
    double* row = m + r * {width};
    for (c = 0; c < {width}; c++) {{
      row[c] = r * c;
    }}
  }}
}}
"""


def _table_lookup(index: int, rng: random.Random) -> str:
    size = 32 + rng.randrange(4) * 16
    return f"""
int table_{index}[{size}];

int table_lookup_{index}(int* keys, int n) {{
  int i;
  int hits = 0;
  for (i = 0; i < n; i++) {{
    int slot = keys[i] % {size};
    if (table_{index}[slot] == keys[i]) {{
      hits++;
    }} else {{
      table_{index}[slot] = keys[i];
    }}
  }}
  return hits;
}}
"""


def _double_buffer(index: int, rng: random.Random) -> str:
    return f"""
void double_buffer_{index}(int n) {{
  char* front = (char*)malloc(n);
  char* back = (char*)malloc(n);
  int i;
  for (i = 0; i < n; i++) {{
    back[i] = front[i];
  }}
  for (i = 0; i < n; i++) {{
    front[i] = back[i] + 1;
  }}
  free(back);
}}
"""


def _local_scratch(index: int, rng: random.Random) -> str:
    size = 32 + rng.randrange(4) * 16
    return f"""
int local_scratch_{index}(char* input, int n) {{
  char scratch[{size}];
  int i;
  int checksum = 0;
  for (i = 0; i < n; i++) {{
    scratch[i % {size}] = input[i];
  }}
  for (i = 0; i < {size}; i++) {{
    checksum += scratch[i];
  }}
  return checksum;
}}
"""


def _conditional_buffers(index: int, rng: random.Random) -> str:
    return f"""
void conditional_buffers_{index}(int n, int which) {{
  char* small = (char*)malloc(n);
  char* large = (char*)malloc(n * 2);
  char* chosen;
  int i;
  if (which) {{
    chosen = small;
  }} else {{
    chosen = large;
  }}
  for (i = 0; i < n; i++) {{
    chosen[i] = small[i];
  }}
  free(large);
}}
"""


def _bounded_walk(index: int, rng: random.Random) -> str:
    step = 1 + rng.randrange(4)
    return f"""
int bounded_walk_{index}(int n) {{
  int* data = (int*)malloc(n * 4);
  int i;
  int total = 0;
  for (i = 0; i < n; i++) {{
    data[i] = i * {step};
  }}
  for (i = 0; i < n; i++) {{
    total += data[i];
  }}
  free(data);
  return total;
}}
"""


def _off_by_one_window(index: int, rng: random.Random) -> str:
    delta = 1 + rng.randrange(5)
    sentinel = rng.randrange(64)
    return f"""
int off_by_one_window_{index}(int n) {{
  int* win = (int*)malloc(n * 4);
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {{
    win[i] = i;
  }}
  for (i = 0; i < n - 1; i++) {{
    win[i] = win[i + 1] + {delta};
  }}
  win[n] = {sentinel};
  for (i = 0; i < n; i++) {{
    acc += win[i];
  }}
  free(win);
  return acc;
}}
"""


def _disjoint_tiles(index: int, rng: random.Random) -> str:
    bias = rng.randrange(16)
    return f"""
void disjoint_tiles_{index}(int n) {{
  int* src = (int*)malloc(n * 4);
  int* dst = (int*)malloc(n * 4);
  int i;
  for (i = 0; i < n; i++) {{
    src[i] = i;
  }}
  for (i = 0; i < n; i++) {{
    dst[i] = src[i] + {bias};
  }}
  free(src);
  free(dst);
}}
"""


def _overlapping_shift(index: int, rng: random.Random) -> str:
    fill = rng.randrange(8)
    return f"""
void overlapping_shift_{index}(int n) {{
  int* a = (int*)malloc(n * 4 + 4);
  int i;
  for (i = 0; i < n; i++) {{
    a[i] = i + {fill};
  }}
  a[n] = 0;
  for (i = 0; i < n; i++) {{
    a[i] = a[i + 1];
  }}
  free(a);
}}
"""


def _mixed_width_stride(index: int, rng: random.Random) -> str:
    """Lockstep strides of *different* access widths over one buffer.

    An ``int`` store and a ``char`` store advance by the same byte stride.
    Every instance carries both classes: a first loop whose byte store is
    provably disjoint from every iteration's 4-byte store
    (``4 <= off < stride``) and a second whose byte store lands inside the
    *next* iteration's 4-byte store (``off > stride``: a real
    cross-iteration dependence) — exactly the pair a width-swapped
    lockstep rule misjudges, which is what the differential validator
    replays.
    """
    stride = 8 + 4 * rng.randrange(2)
    near_off = 4 + rng.randrange(stride - 4)
    far_off = stride + 1 + rng.randrange(3)
    fill = rng.randrange(100)
    return f"""
void mixed_width_stride_{index}(int n) {{
  char* buf = (char*)malloc(n * 8 + {stride + 8});
  int i;
  for (i = 0; i < n * 8; i = i + {stride}) {{
    *(int*)(buf + i) = {fill};
    buf[i + {near_off}] = 1;
  }}
  for (i = 0; i < n * 8; i = i + {stride}) {{
    *(int*)(buf + i) = {fill + 1};
    buf[i + {far_off}] = 1;
  }}
  free(buf);
}}
"""


def _array_of_structs(index: int, rng: random.Random) -> str:
    return f"""
struct point_{index} {{ int x; int y; }};

void move_points_{index}(struct point_{index}* pts, int n, int dx, int dy) {{
  int i;
  for (i = 0; i < n; i++) {{
    pts[i].x += dx;
    pts[i].y += dy;
  }}
}}
"""


IDIOMS: List[Idiom] = [
    Idiom("serialize", ("rbaa",), _serialize,
          lambda i: f"serialize_{i}(bytes, n, text);"),
    Idiom("strided", ("rbaa", "scev"), _strided,
          lambda i: f"strided_{i}(floats, 1.0, 2.0, n);"),
    Idiom("struct_fields", ("rbaa", "basic"), _struct_fields,
          lambda i: f"{{ struct record_{i} rec; update_record_{i}(&rec, text, 4); }}"),
    Idiom("split_halves", ("rbaa",), _split_halves,
          lambda i: f"split_halves_{i}(ints, n / 2);"),
    Idiom("string_scan", (), _string_scan,
          lambda i: f"string_scan_{i}(text, bytes);"),
    Idiom("allocator", ("rbaa", "basic"), _allocator,
          lambda i: f"pool_alloc_{i}(n);"),
    Idiom("linked_list", ("basic",), _linked_list,
          lambda i: f"list_sum_{i}(n);"),
    Idiom("matrix", ("rbaa", "scev"), _matrix,
          lambda i: f"matrix_fill_{i}(doubles, n / 8);"),
    Idiom("table_lookup", ("basic",), _table_lookup,
          lambda i: f"table_lookup_{i}(ints, n);"),
    Idiom("double_buffer", ("rbaa", "basic"), _double_buffer,
          lambda i: f"double_buffer_{i}(n);"),
    Idiom("array_of_structs", ("rbaa", "basic"), _array_of_structs,
          lambda i: f"move_points_{i}((struct point_{i}*)bytes, n / 8, 1, 2);"),
    Idiom("local_scratch", ("basic",), _local_scratch,
          lambda i: f"local_scratch_{i}(text, n);"),
    Idiom("conditional_buffers", ("basic",), _conditional_buffers,
          lambda i: f"conditional_buffers_{i}(n, argc);"),
    # Client-analysis idioms (PR 9): shapes whose bounds/parallelizability
    # verdicts the differential validator can confirm or refute at runtime.
    Idiom("bounded_walk", ("rbaa", "scev"), _bounded_walk,
          lambda i: f"bounded_walk_{i}(n);"),
    Idiom("off_by_one_window", ("rbaa", "scev"), _off_by_one_window,
          lambda i: f"off_by_one_window_{i}(n);"),
    Idiom("disjoint_tiles", ("rbaa", "basic"), _disjoint_tiles,
          lambda i: f"disjoint_tiles_{i}(n);"),
    Idiom("overlapping_shift", ("scev",), _overlapping_shift,
          lambda i: f"overlapping_shift_{i}(n);"),
    Idiom("mixed_width_stride", ("scev",), _mixed_width_stride,
          lambda i: f"mixed_width_stride_{i}(n);"),
]


def idiom_names() -> List[str]:
    return [idiom.name for idiom in IDIOMS]


def get_idiom(name: str) -> Idiom:
    for idiom in IDIOMS:
        if idiom.name == name:
            return idiom
    raise KeyError(f"unknown idiom {name!r}")
