"""Corpus manifest: exactly which programs a benchmark run evaluated.

A manifest pins everything needed to replay a run bit-for-bit: for every
synthetic program its ``(name, seed, instances, mix)`` generator inputs and
the SHA-256 of the emitted source, plus the digests of the fixed paper
programs and a generator version that is bumped whenever the templates or
the selection logic change shape.  The evaluation runner emits it next to
the ``BENCH_*.json`` record, and CI uploads both as one artifact.

Because generation is hash-order independent (see
:mod:`repro.benchgen.generator`), two manifests produced from the same
configs are byte-identical regardless of ``PYTHONHASHSEED`` — the
determinism gate relies on that.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .generator import GeneratorConfig, generate_source, source_digest
from .paper_programs import PAPER_SOURCES
from .suites import SUITE_PROGRAMS, select_programs

__all__ = ["GENERATOR_VERSION", "manifest_entry", "corpus_manifest", "suite_configs",
           "digest_index"]

#: Bump when idiom templates, selection, or seeding change generated shapes.
#: v3: client-analysis idioms (bounded_walk, off_by_one_window,
#: disjoint_tiles, overlapping_shift) joined the pool and the suite mixes.
#: v4: mixed_width_stride joined the pool and the client fuzz mix (the
#: lockstep-stride width-swap regression class).
GENERATOR_VERSION = 4


def manifest_entry(config: GeneratorConfig, suite: Optional[str] = None) -> Dict[str, object]:
    """The manifest record for one generator config (source is regenerated)."""
    entry: Dict[str, object] = {
        "name": config.name,
        "seed": config.seed,
        "instances": config.instances,
        "mix": dict(sorted(config.mix.items())) if config.mix else None,
        "rng_key": config.rng_key,
        "source_sha256": source_digest(generate_source(config)),
    }
    if suite is not None:
        entry["suite"] = suite
    return entry


def corpus_manifest(configs: Iterable[GeneratorConfig],
                    include_paper_programs: bool = True) -> Dict[str, object]:
    """The full manifest for one evaluation run.

    Args:
        configs: generator configs of every synthetic program the run used,
            in corpus order.
        include_paper_programs: also digest the fixed paper sources.
    """
    suites = {program.name: program.suite for program in SUITE_PROGRAMS}
    programs: List[Dict[str, object]] = [
        manifest_entry(config, suites.get(config.name)) for config in configs]
    manifest: Dict[str, object] = {
        "schema": 1,
        "generator_version": GENERATOR_VERSION,
        "programs": programs,
    }
    if include_paper_programs:
        manifest["paper_programs"] = [
            {"name": name, "source_sha256": source_digest(source)}
            for name, source in sorted(PAPER_SOURCES.items())]
    return manifest


def suite_configs(names: Optional[Sequence[str]] = None,
                  max_programs: Optional[int] = None) -> List[GeneratorConfig]:
    """Generator configs of the (sliced) evaluation suite, in corpus order."""
    return [program.config() for program in select_programs(names, max_programs)]


def digest_index(names: Optional[Sequence[str]] = None) -> Dict[str, str]:
    """``name -> source_sha256`` for (a slice of) the suite corpus.

    These digests are the content addresses the analysis service's
    persistent result store keys on (together with
    :data:`GENERATOR_VERSION`); the serving-layer loadtest records them in
    ``BENCH_service.json`` so a stored answer can be traced back to the
    exact source it was computed from.
    """
    return {config.name: source_digest(generate_source(config))
            for config in suite_configs(names)}
