"""Synthetic stand-ins for the paper's benchmark suites.

Figure 13 evaluates 22 programs drawn from three suites: MallocBench
(``cfrac``, ``espresso``, ``gs``), Prolangs (``allroots`` … ``unix-tbl``)
and PtrDist (``anagram``, ``bc``, ``ft``, ``ks``, ``yacr2``).  The original
C sources are not shipped here; instead each program name maps to a
deterministic synthetic program whose *size* is proportional to the query
count the paper reports for it and whose *idiom mix* reflects the suite's
character (allocator-heavy, string/struct-heavy, or pointer-structure-heavy).

See DESIGN.md §2 for why this substitution preserves the behaviours the
evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .generator import GeneratedProgram, GeneratorConfig, generate_module, stable_seed

__all__ = ["SuiteProgram", "SUITE_PROGRAMS", "suite_names", "select_programs",
           "build_program", "build_suite"]

#: Idiom mixes per suite.
_MALLOCBENCH_MIX = {
    "allocator": 4.0, "double_buffer": 3.0, "serialize": 2.0, "linked_list": 2.0,
    "string_scan": 1.0, "table_lookup": 1.0, "conditional_buffers": 2.0,
    "disjoint_tiles": 1.0, "off_by_one_window": 1.0,
}
_PROLANGS_MIX = {
    "struct_fields": 3.0, "string_scan": 3.0, "table_lookup": 2.0, "serialize": 2.0,
    "array_of_structs": 2.0, "strided": 1.0, "split_halves": 1.0, "matrix": 1.0,
    "local_scratch": 2.0, "bounded_walk": 1.0, "overlapping_shift": 1.0,
}
_PTRDIST_MIX = {
    "linked_list": 3.0, "array_of_structs": 3.0, "allocator": 2.0, "matrix": 2.0,
    "split_halves": 2.0, "struct_fields": 1.0, "strided": 1.0, "local_scratch": 1.0,
    "bounded_walk": 1.0, "disjoint_tiles": 1.0,
}


@dataclass(frozen=True)
class SuiteProgram:
    """One named benchmark program of the synthetic evaluation."""

    name: str
    suite: str
    #: Number of idiom instances; chosen so that relative program sizes track
    #: the relative query counts of Figure 13 (within a laptop-scale budget).
    instances: int
    #: Query count the paper reports for this program (for reference only).
    paper_queries: int

    def config(self) -> GeneratorConfig:
        mix = {"MallocBench": _MALLOCBENCH_MIX,
               "Prolangs": _PROLANGS_MIX,
               "PtrDist": _PTRDIST_MIX}[self.suite]
        # stable_seed, not the builtin hash: ``hash(str)`` varies with
        # PYTHONHASHSEED, which used to reshape the whole corpus per process.
        return GeneratorConfig(name=self.name, instances=self.instances,
                               seed=stable_seed(self.name, 10_000), mix=mix)


#: The 22 programs of Figure 13 with their paper query counts.
SUITE_PROGRAMS: List[SuiteProgram] = [
    SuiteProgram("cfrac", "MallocBench", 10, 89_255),
    SuiteProgram("espresso", "MallocBench", 26, 787_223),
    SuiteProgram("gs", "MallocBench", 24, 608_374),
    SuiteProgram("allroots", "Prolangs", 2, 974),
    SuiteProgram("archie", "Prolangs", 12, 159_051),
    SuiteProgram("assembler", "Prolangs", 8, 35_474),
    SuiteProgram("bison", "Prolangs", 11, 114_025),
    SuiteProgram("cdecl", "Prolangs", 16, 301_817),
    SuiteProgram("compiler", "Prolangs", 5, 9_515),
    SuiteProgram("fixoutput", "Prolangs", 3, 3_778),
    SuiteProgram("football", "Prolangs", 20, 495_119),
    SuiteProgram("gnugo", "Prolangs", 6, 13_519),
    SuiteProgram("loader", "Prolangs", 6, 13_782),
    SuiteProgram("plot2fig", "Prolangs", 7, 27_372),
    SuiteProgram("simulator", "Prolangs", 7, 25_591),
    SuiteProgram("unix-smail", "Prolangs", 9, 61_246),
    SuiteProgram("unix-tbl", "Prolangs", 10, 85_339),
    SuiteProgram("anagram", "PtrDist", 3, 3_114),
    SuiteProgram("bc", "PtrDist", 14, 198_674),
    SuiteProgram("ft", "PtrDist", 4, 7_660),
    SuiteProgram("ks", "PtrDist", 5, 14_377),
    SuiteProgram("yacr2", "PtrDist", 8, 38_262),
]


def suite_names() -> List[str]:
    return sorted({program.suite for program in SUITE_PROGRAMS})


def select_programs(names: Optional[Sequence[str]] = None,
                    max_programs: Optional[int] = None) -> List[SuiteProgram]:
    """The suite slice in canonical corpus order.

    Both the serial experiments and the sharded parallel runner select
    through this helper, so their program order — and therefore their merged
    result order — is identical by construction.
    """
    selected = [program for program in SUITE_PROGRAMS
                if names is None or program.name in names]
    if max_programs is not None:
        selected = selected[:max_programs]
    return selected


def build_program(name: str) -> GeneratedProgram:
    """Generate and compile one named suite program."""
    for program in SUITE_PROGRAMS:
        if program.name == name:
            return generate_module(program.config())
    raise KeyError(f"unknown suite program {name!r}")


def build_suite(names: Optional[Sequence[str]] = None,
                max_programs: Optional[int] = None) -> Dict[str, GeneratedProgram]:
    """Generate and compile the whole synthetic evaluation suite.

    Args:
        names: restrict to these program names (default: all 22).
        max_programs: additionally cap the number of programs (useful for
            quick benchmark runs).
    """
    return {program.name: generate_module(program.config())
            for program in select_programs(names, max_programs)}
