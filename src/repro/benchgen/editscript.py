"""Seeded edit scenarios: sequences of single-function body mutations.

The analysis service's incremental path is exercised by *edit scripts*: a
program plus a sequence of sources, each differing from its predecessor in
exactly one function body.  This module derives such scripts from the same
deterministic substrate as the corpus itself — all randomness flows from
:func:`~repro.benchgen.generator.stable_seed`, so a scenario is a pure
function of ``(config, edits, seed)`` and replays byte-identically in any
process under any ``PYTHONHASHSEED``.

Two mutation strategies, tried in order per edit:

1. **Template re-render** — the chosen idiom instance is re-rendered with a
   variant rng, producing the kind of change a developer edit makes
   (different strides, markers, sentinel bytes).  Accepted only when the
   change is *function-local*: the piece's prelude (struct declarations,
   file-scope arrays) and the function header must survive verbatim,
   because the service's function-granular invalidation requires globals
   and signatures to be stable.
2. **Literal bump** — many idiom bodies are rng-free; for those a drawn
   integer literal of the body is perturbed.  The mutation never touches
   the prelude or header, so it is function-local by construction.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .generator import (
    GeneratorConfig,
    _compose_source,
    _derive_rng,
    _instance_rng,
    _pick_idioms,
    _rng_label,
    stable_seed,
)

__all__ = ["EditStep", "EditScenario", "edit_scenario"]

#: Variant renders tried per chosen instance before falling back to a
#: literal bump.
_RENDER_ATTEMPTS = 6

#: Matches a function header line: ``ret name_3(...) {`` (the capture is the
#: identifier directly before the parameter list).
_HEADER_RE = re.compile(r"^[A-Za-z_][\w \t*]*?[ \t*]([A-Za-z_]\w*)\s*\(.*\{\s*$")

#: Matches a standalone integer literal (not part of an identifier).
_LITERAL_RE = re.compile(r"(?<![\w.])(\d+)(?![\w.])")


@dataclass(frozen=True)
class EditStep:
    """One state of an edit script.

    ``index`` 0 is the unedited program; step ``k`` differs from step
    ``k - 1`` in exactly the body of ``function``.
    """

    index: int
    #: Mutated function name (``""`` for the initial step).
    function: str
    #: Idiom-instance index the mutation targeted (``-1`` initially).
    instance: int
    #: Full program source after this step.
    source: str


@dataclass(frozen=True)
class EditScenario:
    """A program plus a seeded sequence of single-function edits."""

    config: GeneratorConfig
    steps: Tuple[EditStep, ...]

    @property
    def name(self) -> str:
        return self.config.name

    def edited_functions(self) -> List[str]:
        return [step.function for step in self.steps if step.index > 0]


def _split_piece(piece: str) -> Optional[Tuple[List[str], str, List[str]]]:
    """Split a rendered idiom piece into ``(prelude, header, body)`` lines."""
    lines = piece.splitlines()
    for position, line in enumerate(lines):
        if _HEADER_RE.match(line):
            return lines[:position], line, lines[position + 1:]
    return None


def _function_name(header: str) -> str:
    match = _HEADER_RE.match(header)
    assert match is not None
    return match.group(1)


def _function_local_change(old_piece: str, new_piece: str) -> Optional[str]:
    """The mutated function's name when the change is function-local.

    Function-local means: identical prelude (struct/global declarations),
    identical header (name + signature), different body.  Returns ``None``
    when the mutation leaks outside the body or changes nothing.
    """
    old_parts = _split_piece(old_piece)
    new_parts = _split_piece(new_piece)
    if old_parts is None or new_parts is None:
        return None
    old_prelude, old_header, old_body = old_parts
    new_prelude, new_header, new_body = new_parts
    if old_prelude != new_prelude or old_header != new_header:
        return None
    if old_body == new_body:
        return None
    return _function_name(new_header)


def _bump_literal(piece: str, rng: random.Random) -> Optional[str]:
    """Perturb one drawn integer literal of the piece's function body."""
    parts = _split_piece(piece)
    if parts is None:
        return None
    prelude, header, body = parts
    positions = [(line_index, match)
                 for line_index, line in enumerate(body)
                 for match in _LITERAL_RE.finditer(line)]
    if not positions:
        return None
    line_index, match = positions[rng.randrange(len(positions))]
    delta = 1 + rng.randrange(7)
    replacement = str(int(match.group(1)) + delta)
    line = body[line_index]
    body[line_index] = line[:match.start(1)] + replacement + line[match.end(1):]
    return "\n".join(prelude + [header] + body)


def _mutate_instance(config: GeneratorConfig, idiom, instance: int,
                     current_piece: str, edit_index: int,
                     rng: random.Random) -> Optional[Tuple[str, str]]:
    """One function-local mutation of ``instance``: ``(new piece, fn name)``."""
    for attempt in range(_RENDER_ATTEMPTS):
        label = f"{_rng_label(config)}#{instance}~edit{edit_index}.{attempt}"
        candidate = idiom.render(instance, random.Random(stable_seed(label)))
        name = _function_local_change(current_piece, candidate)
        if name is not None:
            return candidate, name
    candidate = _bump_literal(current_piece, rng)
    if candidate is None:
        return None
    name = _function_local_change(current_piece, candidate)
    if name is None:
        return None
    return candidate, name


def edit_scenario(config: GeneratorConfig, edits: int = 3,
                  seed: int = 0) -> EditScenario:
    """Derive a deterministic edit script for ``config``.

    Step 0 is byte-identical to :func:`~repro.benchgen.generator
    .generate_source` for the same config, so a scenario slots into any
    corpus manifest; each subsequent step mutates one function body chosen
    by the scenario rng.
    """
    scenario_rng = random.Random(
        stable_seed(f"editscript:{_rng_label(config)}:{seed}"))
    chosen = _pick_idioms(config, _derive_rng(config))
    rendered = [idiom.render(index, _instance_rng(config, index))
                for index, idiom in enumerate(chosen)]
    steps: List[EditStep] = [
        EditStep(0, "", -1, _compose_source(config, chosen, rendered))]

    for edit_index in range(1, max(0, edits) + 1):
        order = list(range(len(chosen)))
        scenario_rng.shuffle(order)
        mutation: Optional[Tuple[int, str, str]] = None
        for instance in order:
            result = _mutate_instance(config, chosen[instance], instance,
                                      rendered[instance], edit_index,
                                      scenario_rng)
            if result is not None:
                mutation = (instance, result[0], result[1])
                break
        if mutation is None:
            raise ValueError(
                f"no function-local mutation found for {config.name!r} "
                f"(edit {edit_index})")
        instance, piece, function_name = mutation
        rendered[instance] = piece
        steps.append(EditStep(edit_index, function_name, instance,
                              _compose_source(config, chosen, rendered)))
    return EditScenario(config=config, steps=tuple(steps))
