"""Deterministic synthetic-program generator.

Given a size budget and an idiom mix, the generator emits a mini-C source
composed of independently generated functions plus a ``main`` that allocates
shared buffers and calls every generated routine.  The same
``(name, seed, size)`` triple always produces the same program — bit for
bit, in any interpreter process, under any ``PYTHONHASHSEED`` — so
benchmark results are reproducible run to run.

Determinism contract: all randomness flows from one ``random.Random``
seeded via :func:`stable_seed` (a SHA-256 digest, never the builtin
``hash``), idiom pools and mixes are iterated in sorted order, and idiom
templates draw their per-instance variation from the explicitly threaded
rng rather than from any ambient state.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..frontend import compile_source
from ..ir.module import Module
from .idioms import IDIOMS, Idiom, get_idiom

__all__ = ["GeneratorConfig", "GeneratedProgram", "generate_source", "generate_module",
           "stable_seed", "source_digest", "ExecutionInputs", "execution_inputs"]


def stable_seed(text: str, modulus: Optional[int] = None) -> int:
    """A hash-order-independent integer seed for ``text``.

    The builtin ``hash`` of a string changes with ``PYTHONHASHSEED``; this
    digest does not, so program shapes derived from it are identical in
    every interpreter process.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big")
    return value % modulus if modulus else value


def source_digest(source: str) -> str:
    """SHA-256 hex digest of a generated source (manifest / replay identity)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


_MAIN_PREAMBLE = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* bytes = (char*)malloc(n);
  char* text = argv[2];
  int* ints = (int*)malloc(n * 4);
  float* floats = (float*)malloc(n * 4);
  double* doubles = (double*)malloc(n * 8);
"""

_MAIN_EPILOGUE = """  return 0;
}
"""


@dataclass(frozen=True)
class GeneratorConfig:
    """What to generate."""

    name: str
    #: Number of idiom instances (roughly proportional to program size).
    instances: int = 10
    #: Random seed; combined with the name so every program is unique.
    seed: int = 0
    #: Idiom mix: mapping idiom name -> relative weight (unlisted idioms get
    #: weight 0).  ``None`` means the uniform mix over all idioms.
    mix: Optional[Dict[str, float]] = None
    #: Override of the rng derivation label (default ``"{name}:{seed}"``).
    #: Programs sharing one ``rng_key`` draw the same idiom selection stream
    #: and the same per-instance template constants (each instance's render
    #: rng is derived from ``(rng_key, index)``), so a size sweep over them
    #: varies *size only* — a smaller program's functions are exactly the
    #: first functions of a larger one, which is what makes the Figure-15
    #: scaling measurement compare like with like.
    rng_key: Optional[str] = None


@dataclass
class GeneratedProgram:
    """A generated source plus its compiled module."""

    config: GeneratorConfig
    source: str
    module: Module

    @property
    def name(self) -> str:
        return self.config.name


def _rng_label(config: GeneratorConfig) -> str:
    return config.rng_key if config.rng_key is not None else f"{config.name}:{config.seed}"


def _derive_rng(config: GeneratorConfig) -> random.Random:
    """The rng the idiom *selection* stream flows from."""
    return random.Random(stable_seed(_rng_label(config)))


def _instance_rng(config: GeneratorConfig, index: int) -> random.Random:
    """The rng instance ``index``'s template constants flow from.

    Keyed by ``(label, index)`` rather than drawn from the selection stream:
    this keeps instance ``i``'s rendered body independent of how many
    instances the program has, so configs sharing an ``rng_key`` produce
    programs that are literal prefixes of one another.
    """
    return random.Random(stable_seed(f"{_rng_label(config)}#{index}"))


def _pick_idioms(config: GeneratorConfig, rng: random.Random) -> List[Idiom]:
    if config.mix:
        # Sorted so the selection sequence is independent of mix insertion
        # (and of any future mapping type whose iteration order varies).
        names = sorted(name for name, weight in config.mix.items() if weight > 0)
        weights = [config.mix[name] for name in names]
        pool = [get_idiom(name) for name in names]
    else:
        pool = list(IDIOMS)
        weights = [1.0] * len(pool)
    return [pool[rng.choices(range(len(pool)), weights=weights)[0]]
            for _ in range(config.instances)]


def _compose_source(config: GeneratorConfig, chosen: List[Idiom],
                    rendered: List[str]) -> str:
    """Assemble the final source from already-rendered idiom pieces.

    Shared by :func:`generate_source` and the edit-scenario generator
    (:mod:`repro.benchgen.editscript`), which re-renders single pieces to
    produce sources differing in exactly one function body.
    """
    pieces: List[str] = [f"/* synthetic program {config.name!r} "
                         f"({config.instances} idiom instances, seed {config.seed}) */"]
    calls: List[str] = []
    for index, idiom in enumerate(chosen):
        pieces.append(rendered[index])
        calls.append(f"  {idiom.call(index)}")
    pieces.append(_MAIN_PREAMBLE)
    pieces.extend(calls)
    pieces.append(_MAIN_EPILOGUE)
    return "\n".join(pieces)


def generate_source(config: GeneratorConfig) -> str:
    """Emit the mini-C source for ``config``."""
    rng = _derive_rng(config)
    chosen = _pick_idioms(config, rng)
    rendered = [idiom.render(index, _instance_rng(config, index))
                for index, idiom in enumerate(chosen)]
    return _compose_source(config, chosen, rendered)


def generate_module(config: GeneratorConfig) -> GeneratedProgram:
    """Generate and compile one synthetic program."""
    source = generate_source(config)
    module = compile_source(source, config.name)
    return GeneratedProgram(config=config, source=source, module=module)


@dataclass(frozen=True)
class ExecutionInputs:
    """Concrete ``main`` inputs for interpreting one generated program.

    Every generated ``main`` reads its workload from ``argv``:
    ``n = atoi(argv[1])`` sizes the shared buffers and bounds every loop,
    and ``argv[2]`` is the text payload.  Keeping ``n`` small and the text
    shorter than ``n`` makes execution terminate quickly and keeps
    string-copy loops inside the buffers ``main`` allocates.
    """

    n: int
    text: str
    argv0: str = "bench"

    def argv(self) -> List[str]:
        return [self.argv0, str(self.n), self.text]


def execution_inputs(config: GeneratorConfig) -> ExecutionInputs:
    """Deterministic bounded inputs for ``config`` (seeded like the source).

    Derived from the same :func:`stable_seed` scheme as program generation,
    so a ``(name, seed)`` pair pins both the program *and* its concrete
    execution — the replay identity the soundness oracle reports.
    """
    rng = random.Random(stable_seed(f"{_rng_label(config)}::inputs"))
    n = 8 + rng.randrange(5)
    letters = "abcdefghijklmnopqrstuvwxyz"
    text = "".join(rng.choice(letters) for _ in range(max(1, n - 2)))
    return ExecutionInputs(n=n, text=text)
