"""Deterministic synthetic-program generator.

Given a size budget and an idiom mix, the generator emits a mini-C source
composed of independently generated functions plus a ``main`` that allocates
shared buffers and calls every generated routine.  The same
``(name, seed, size)`` triple always produces the same program, so benchmark
results are reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..frontend import compile_source
from ..ir.module import Module
from .idioms import IDIOMS, Idiom, get_idiom

__all__ = ["GeneratorConfig", "GeneratedProgram", "generate_source", "generate_module"]

_MAIN_PREAMBLE = """
int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  char* bytes = (char*)malloc(n);
  char* text = argv[2];
  int* ints = (int*)malloc(n * 4);
  float* floats = (float*)malloc(n * 4);
  double* doubles = (double*)malloc(n * 8);
"""

_MAIN_EPILOGUE = """  return 0;
}
"""


@dataclass
class GeneratorConfig:
    """What to generate."""

    name: str
    #: Number of idiom instances (roughly proportional to program size).
    instances: int = 10
    #: Random seed; combined with the name so every program is unique.
    seed: int = 0
    #: Idiom mix: mapping idiom name -> relative weight (unlisted idioms get
    #: weight 0).  ``None`` means the uniform mix over all idioms.
    mix: Optional[Dict[str, float]] = None


@dataclass
class GeneratedProgram:
    """A generated source plus its compiled module."""

    config: GeneratorConfig
    source: str
    module: Module

    @property
    def name(self) -> str:
        return self.config.name


def _pick_idioms(config: GeneratorConfig) -> List[Idiom]:
    rng = random.Random(f"{config.name}:{config.seed}")
    if config.mix:
        names = [name for name, weight in config.mix.items() if weight > 0]
        weights = [config.mix[name] for name in names]
        pool = [get_idiom(name) for name in names]
    else:
        pool = list(IDIOMS)
        weights = [1.0] * len(pool)
    return [pool[rng.choices(range(len(pool)), weights=weights)[0]]
            for _ in range(config.instances)]


def generate_source(config: GeneratorConfig) -> str:
    """Emit the mini-C source for ``config``."""
    chosen = _pick_idioms(config)
    pieces: List[str] = [f"/* synthetic program {config.name!r} "
                         f"({config.instances} idiom instances, seed {config.seed}) */"]
    calls: List[str] = []
    for index, idiom in enumerate(chosen):
        pieces.append(idiom.render(index))
        calls.append(f"  {idiom.call(index)}")
    pieces.append(_MAIN_PREAMBLE)
    pieces.extend(calls)
    pieces.append(_MAIN_EPILOGUE)
    return "\n".join(pieces)


def generate_module(config: GeneratorConfig) -> GeneratedProgram:
    """Generate and compile one synthetic program."""
    source = generate_source(config)
    module = compile_source(source, config.name)
    return GeneratedProgram(config=config, source=source, module=module)
