"""The motivating programs of the paper, as mini-C sources.

These are used by the examples, the integration tests and the trace
benchmark (Figure 12):

* :data:`FIGURE1_SOURCE` — the message-serialisation routine ``prepare``
  plus its ``main`` driver (Figures 1, 2 and 7);
* :data:`FIGURE3_SOURCE` — the ``accelerate`` loop whose accesses need the
  local test (Figures 3 and 4);
* :data:`FIGURE10_SOURCE` — the φ/branch example showing the imprecision of
  the global analysis without path sensitivity (Figure 10).
"""

from __future__ import annotations

from typing import Dict

from ..frontend import compile_source
from ..ir.module import Module

__all__ = [
    "FIGURE1_SOURCE",
    "FIGURE3_SOURCE",
    "FIGURE10_SOURCE",
    "PAPER_SOURCES",
    "compile_figure1",
    "compile_figure3",
    "compile_figure10",
]

FIGURE1_SOURCE = r"""
/* Figure 1: messages serialised as byte arrays; the identifier is written
   by the first loop and the payload by the second one. */
void prepare(char* p, int N, char* m) {
  char *i, *e, *f;
  for (i = p, e = p + N; i < e; i += 2) {
    *i = 0;
    *(i + 1) = 0xFF;
  }
  for (f = e + strlen(m); i < f; i++) {
    *i = *m;
    m++;
  }
}

int main(int argc, char** argv) {
  int Z = atoi(argv[1]);
  char* b = (char*)malloc(Z);
  char* s = (char*)malloc(strlen(argv[2]));
  strcpy(s, argv[2]);
  prepare(b, Z, s);
  return 0;
}
"""

FIGURE3_SOURCE = r"""
/* Figure 3: the two stores in the loop body never touch the same address
   at the same iteration, but their global ranges overlap. */
void accelerate(float* p, float X, float Y, int N) {
  int i = 0;
  while (i < N) {
    p[i] += X;
    p[i + 1] += Y;
    i += 2;
  }
}

int main(int argc, char** argv) {
  int n = atoi(argv[1]);
  float* v = (float*)malloc(n * 4);
  accelerate(v, 1.0, 2.0, n);
  return 0;
}
"""

FIGURE10_SOURCE = r"""
/* Figure 10: a2 may or may not advance past a1, so the φ joining them has a
   non-singleton range; a4 and a5 can only be separated by the local test. */
int pick(char* a4, char* a5, int c) {
  if (c) { return *a4; }
  return *a5;
}

int main(int argc, char** argv) {
  char* a1 = (char*)malloc(2);
  char* a3;
  int cond = atoi(argv[1]);
  if (cond) {
    a3 = a1 + 1;
  } else {
    a3 = a1;
  }
  return pick(a3 + 1, a3 + 2, cond);
}
"""


#: Fixed (non-generated) corpus members, by name — the corpus manifest
#: digests these alongside the synthetic programs so a replay can detect a
#: drifted template just as it detects a drifted generator.
PAPER_SOURCES: Dict[str, str] = {
    "figure1": FIGURE1_SOURCE,
    "figure3": FIGURE3_SOURCE,
    "figure10": FIGURE10_SOURCE,
}


def compile_figure1() -> Module:
    """Compile the Figure 1 program to analysis-ready IR."""
    return compile_source(FIGURE1_SOURCE, "figure1")


def compile_figure3() -> Module:
    """Compile the Figure 3 program to analysis-ready IR."""
    return compile_source(FIGURE3_SOURCE, "figure3")


def compile_figure10() -> Module:
    """Compile the Figure 10 program to analysis-ready IR."""
    return compile_source(FIGURE10_SOURCE, "figure10")
