"""Benchmark-program substrate: paper figures, idioms, generator, suites."""

from .generator import (
    ExecutionInputs,
    GeneratedProgram,
    GeneratorConfig,
    execution_inputs,
    generate_module,
    generate_source,
    source_digest,
    stable_seed,
)
from .editscript import EditScenario, EditStep, edit_scenario
from .idioms import IDIOMS, Idiom, get_idiom, idiom_names
from .manifest import (GENERATOR_VERSION, corpus_manifest, digest_index,
                       manifest_entry, suite_configs)
from .paper_programs import (
    FIGURE1_SOURCE,
    FIGURE3_SOURCE,
    FIGURE10_SOURCE,
    PAPER_SOURCES,
    compile_figure1,
    compile_figure3,
    compile_figure10,
)
from .suites import (
    SUITE_PROGRAMS,
    SuiteProgram,
    build_program,
    build_suite,
    select_programs,
    suite_names,
)

__all__ = [
    "ExecutionInputs",
    "execution_inputs",
    "GeneratedProgram",
    "GeneratorConfig",
    "generate_module",
    "generate_source",
    "source_digest",
    "stable_seed",
    "EditScenario",
    "EditStep",
    "edit_scenario",
    "IDIOMS",
    "Idiom",
    "get_idiom",
    "idiom_names",
    "GENERATOR_VERSION",
    "corpus_manifest",
    "digest_index",
    "manifest_entry",
    "suite_configs",
    "FIGURE1_SOURCE",
    "FIGURE3_SOURCE",
    "FIGURE10_SOURCE",
    "PAPER_SOURCES",
    "compile_figure1",
    "compile_figure3",
    "compile_figure10",
    "SUITE_PROGRAMS",
    "SuiteProgram",
    "build_program",
    "build_suite",
    "select_programs",
    "suite_names",
]
