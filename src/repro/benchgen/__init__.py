"""Benchmark-program substrate: paper figures, idioms, generator, suites."""

from .generator import GeneratedProgram, GeneratorConfig, generate_module, generate_source
from .idioms import IDIOMS, Idiom, get_idiom, idiom_names
from .paper_programs import (
    FIGURE1_SOURCE,
    FIGURE3_SOURCE,
    FIGURE10_SOURCE,
    compile_figure1,
    compile_figure3,
    compile_figure10,
)
from .suites import SUITE_PROGRAMS, SuiteProgram, build_program, build_suite, suite_names

__all__ = [
    "GeneratedProgram",
    "GeneratorConfig",
    "generate_module",
    "generate_source",
    "IDIOMS",
    "Idiom",
    "get_idiom",
    "idiom_names",
    "FIGURE1_SOURCE",
    "FIGURE3_SOURCE",
    "FIGURE10_SOURCE",
    "compile_figure1",
    "compile_figure3",
    "compile_figure10",
    "SUITE_PROGRAMS",
    "SuiteProgram",
    "build_program",
    "build_suite",
    "suite_names",
]
