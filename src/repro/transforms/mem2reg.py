"""Promotion of stack slots to SSA registers (``mem2reg``).

The mini-C frontend lowers every local variable to an ``alloca`` plus
loads/stores, which keeps lowering simple and mirrors what clang emits at
``-O0``.  This pass promotes the promotable slots to SSA values with
φ-functions placed on iterated dominance frontiers (Cytron et al.), which is
a precondition for every sparse analysis in the repository.

A slot is promotable when its address is only ever used directly by loads
and stores (it never escapes through a call, a store *of* the pointer,
pointer arithmetic, or a cast) and it holds a scalar (integer, float or
pointer).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..analysis.dominance import DominatorTree, dominance_frontiers
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import AllocaInst, LoadInst, PhiInst, StoreInst
from ..ir.module import Module
from ..ir.values import ConstantInt, UndefValue, Value

__all__ = ["promote_allocas_in_function", "promote_allocas", "is_promotable"]


def is_promotable(alloca: AllocaInst) -> bool:
    """True when every use of the slot is a direct scalar load or store."""
    if alloca.allocated_type.is_aggregate():
        return False
    if not isinstance(alloca.count, ConstantInt) or alloca.count.value != 1:
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca and user.value is not alloca:
            continue
        return False
    return True


def _defining_blocks(alloca: AllocaInst) -> List[BasicBlock]:
    blocks: List[BasicBlock] = []
    for use in alloca.uses:
        user = use.user
        if isinstance(user, StoreInst) and user.pointer is alloca and user.parent is not None:
            if user.parent not in blocks:
                blocks.append(user.parent)
    return blocks


def _place_phis(function: Function, alloca: AllocaInst,
                frontiers: Dict[BasicBlock, Set[BasicBlock]]) -> Dict[BasicBlock, PhiInst]:
    """Insert φs for one slot on the iterated dominance frontier of its stores."""
    phis: Dict[BasicBlock, PhiInst] = {}
    worklist = list(_defining_blocks(alloca))
    processed: Set[BasicBlock] = set(worklist)
    while worklist:
        block = worklist.pop()
        for frontier_block in frontiers.get(block, ()):  # type: ignore[arg-type]
            if frontier_block in phis:
                continue
            phi = PhiInst(alloca.allocated_type,
                          function.uniquify_name(f"{alloca.name}.phi"))
            frontier_block.insert_phi(phi)
            phis[frontier_block] = phi
            if frontier_block not in processed:
                processed.add(frontier_block)
                worklist.append(frontier_block)
    return phis


def _rename(function: Function, dom_tree: DominatorTree,
            allocas: List[AllocaInst],
            phis: Dict[AllocaInst, Dict[BasicBlock, PhiInst]]) -> None:
    """Walk the dominator tree, tracking the reaching definition of every slot."""
    phi_owner: Dict[PhiInst, AllocaInst] = {}
    for alloca, block_map in phis.items():
        for phi in block_map.values():
            phi_owner[phi] = alloca

    initial: Dict[AllocaInst, Value] = {
        alloca: UndefValue(alloca.allocated_type) for alloca in allocas
    }

    entry = function.entry_block
    if entry is None:
        return
    # Explicit work stack (block, reaching definitions at its entry) so deep
    # dominator trees from generated programs cannot overflow Python's stack.
    stack = [(entry, initial)]
    while stack:
        block, reaching = stack.pop()
        current = dict(reaching)
        for inst in list(block.instructions):
            if isinstance(inst, PhiInst) and inst in phi_owner:
                current[phi_owner[inst]] = inst
            elif isinstance(inst, LoadInst) and isinstance(inst.pointer, AllocaInst) \
                    and inst.pointer in current:
                inst.replace_all_uses_with(current[inst.pointer])
                inst.erase_from_parent()
            elif isinstance(inst, StoreInst) and isinstance(inst.pointer, AllocaInst) \
                    and inst.pointer in current:
                current[inst.pointer] = inst.value
                inst.erase_from_parent()
        for successor in block.successors():
            for phi, owner in phi_owner.items():
                if phi.parent is successor:
                    phi.add_incoming(current[owner], block)
        for child in dom_tree.children(block):
            stack.append((child, current))


def promote_allocas_in_function(function: Function) -> int:
    """Promote every promotable slot of ``function``; returns how many were promoted."""
    if function.is_declaration():
        return 0
    allocas = [inst for inst in function.instructions()
               if isinstance(inst, AllocaInst) and is_promotable(inst)]
    if not allocas:
        return 0
    dom_tree = DominatorTree.compute(function)
    frontiers = dominance_frontiers(function, dom_tree)
    phis: Dict[AllocaInst, Dict[BasicBlock, PhiInst]] = {
        alloca: _place_phis(function, alloca, frontiers) for alloca in allocas
    }
    _rename(function, dom_tree, allocas, phis)
    for alloca in allocas:
        # All loads/stores are gone; the slot itself can be dropped.
        if not alloca.uses:
            alloca.erase_from_parent()
    _prune_dead_phis(function)
    return len(allocas)


def _prune_dead_phis(function: Function) -> None:
    """Remove φs that are unused or trivially redundant (single distinct input)."""
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                if not phi.uses:
                    phi.erase_from_parent()
                    changed = True
                    continue
                distinct = {value for value in phi.operands
                            if value is not phi and not isinstance(value, UndefValue)}
                if len(distinct) == 1:
                    phi.replace_all_uses_with(next(iter(distinct)))
                    phi.erase_from_parent()
                    changed = True


def promote_allocas(module: Module) -> int:
    """Run :func:`promote_allocas_in_function` over every function of ``module``."""
    return sum(promote_allocas_in_function(function)
               for function in module.defined_functions())
