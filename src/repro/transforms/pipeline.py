"""The standard preparation pipeline run before the analyses.

Figure 5 of the paper shows the overall flow: the original program is
bootstrapped by the symbolic range analysis, then renamed (e-SSA / region
renaming) before the global and local pointer analyses run.  This module
bundles the IR-level part of that flow so callers (examples, benchmark
harness, tests) can go from a freshly lowered module to analysis-ready e-SSA
in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..ir.module import Module
from ..ir.verifier import verify_module
from .essa import build_essa
from .mem2reg import promote_allocas
from .region_rename import rename_region_pointers
from .simplify import simplify_module

__all__ = ["PipelineOptions", "PipelineResult", "prepare_module"]


@dataclass
class PipelineOptions:
    """Switches for the preparation pipeline (used by the ablation benchmarks)."""

    promote_allocas: bool = True
    simplify: bool = True
    build_essa: bool = True
    rename_region_pointers: bool = False
    verify: bool = True


@dataclass
class PipelineResult:
    """What each pipeline stage did, for logging and tests."""

    promoted_allocas: int = 0
    simplified: int = 0
    sigmas_created: int = 0
    canonical_bases: int = 0
    stages_run: List[str] = field(default_factory=list)


def prepare_module(module: Module, options: PipelineOptions = None) -> PipelineResult:
    """Run the standard preparation pipeline on ``module`` in place."""
    options = options or PipelineOptions()
    result = PipelineResult()
    if options.promote_allocas:
        result.promoted_allocas = promote_allocas(module)
        result.stages_run.append("mem2reg")
    if options.simplify:
        result.simplified = simplify_module(module)
        result.stages_run.append("simplify")
    if options.build_essa:
        result.sigmas_created = build_essa(module)
        result.stages_run.append("essa")
    if options.rename_region_pointers:
        result.canonical_bases = rename_region_pointers(module)
        result.stages_run.append("region-rename")
    if options.verify:
        verify_module(module)
        result.stages_run.append("verify")
    return result
