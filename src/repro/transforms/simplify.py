"""Lightweight IR clean-ups: constant folding and dead-code elimination.

These are not required for correctness of the analyses, but the frontend and
the synthetic generator occasionally emit trivially foldable arithmetic
(``0 + x``, comparisons of constants) and unused values; folding them keeps
instruction counts honest for the scalability experiment and exercises the
use-list machinery.
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import BinaryInst, ICmpInst, Instruction, PhiInst, SelectInst
from ..ir.module import Module
from ..ir.values import ConstantInt, Value

__all__ = ["fold_constants_in_function", "eliminate_dead_code_in_function", "simplify_module"]


def _fold_binary(inst: BinaryInst) -> Optional[ConstantInt]:
    """Fold a binary instruction whose operands are integer constants."""
    if not isinstance(inst.lhs, ConstantInt) or not isinstance(inst.rhs, ConstantInt):
        return None
    a, b = inst.lhs.value, inst.rhs.value
    opcode = inst.opcode
    try:
        if opcode == "add":
            return ConstantInt(a + b, inst.type)
        if opcode == "sub":
            return ConstantInt(a - b, inst.type)
        if opcode == "mul":
            return ConstantInt(a * b, inst.type)
        if opcode == "sdiv":
            quotient = abs(a) // abs(b)
            return ConstantInt(-quotient if (a < 0) != (b < 0) else quotient, inst.type)
        if opcode == "srem":
            remainder = abs(a) % abs(b)
            return ConstantInt(-remainder if a < 0 else remainder, inst.type)
        if opcode == "and":
            return ConstantInt(a & b, inst.type)
        if opcode == "or":
            return ConstantInt(a | b, inst.type)
        if opcode == "xor":
            return ConstantInt(a ^ b, inst.type)
        if opcode == "shl":
            return ConstantInt(a << b, inst.type)
        if opcode == "ashr":
            return ConstantInt(a >> b, inst.type)
    except (ZeroDivisionError, ValueError):
        return None
    return None


def _fold_icmp(inst: ICmpInst) -> Optional[ConstantInt]:
    if not isinstance(inst.lhs, ConstantInt) or not isinstance(inst.rhs, ConstantInt):
        return None
    a, b = inst.lhs.value, inst.rhs.value
    table = {
        "eq": a == b, "ne": a != b,
        "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
    }
    return ConstantInt(int(table[inst.predicate]), inst.type)


def _fold_identity(inst: BinaryInst) -> Optional[Value]:
    """``x + 0``, ``x - 0``, ``x * 1`` and friends fold to ``x``."""
    lhs, rhs = inst.lhs, inst.rhs
    if isinstance(rhs, ConstantInt):
        if rhs.value == 0 and inst.opcode in ("add", "sub", "or", "xor", "shl", "ashr"):
            return lhs
        if rhs.value == 1 and inst.opcode in ("mul", "sdiv"):
            return lhs
    if isinstance(lhs, ConstantInt):
        if lhs.value == 0 and inst.opcode == "add":
            return rhs
        if lhs.value == 1 and inst.opcode == "mul":
            return rhs
    return None


def fold_constants_in_function(function: Function) -> int:
    """Fold constant arithmetic and identities; returns the number of folds."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                replacement: Optional[Value] = None
                if isinstance(inst, BinaryInst):
                    replacement = _fold_binary(inst) or _fold_identity(inst)
                elif isinstance(inst, ICmpInst):
                    replacement = _fold_icmp(inst)
                elif isinstance(inst, SelectInst) and isinstance(inst.condition, ConstantInt):
                    replacement = inst.true_value if inst.condition.value else inst.false_value
                if replacement is not None:
                    inst.replace_all_uses_with(replacement)
                    inst.erase_from_parent()
                    folded += 1
                    changed = True
    return folded


def _has_side_effects(inst: Instruction) -> bool:
    return (inst.is_terminator() or inst.may_write_memory() or inst.may_read_memory()
            or inst.is_allocation_site() or inst.opcode in ("call", "free"))


def eliminate_dead_code_in_function(function: Function) -> int:
    """Remove side-effect-free instructions whose results are never used."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in reversed(list(block.instructions)):
                if _has_side_effects(inst) or isinstance(inst, PhiInst):
                    continue
                if not inst.uses:
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def simplify_module(module: Module) -> int:
    """Constant folding followed by DCE over every function; returns total changes."""
    total = 0
    for function in module.defined_functions():
        total += fold_constants_in_function(function)
        total += eliminate_dead_code_in_function(function)
    return total
