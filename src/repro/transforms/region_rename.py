"""Pointer renaming inside single-entry regions (Section 2, Figure 4).

The local disambiguation test works on addresses that "spring from the same
base pointer": ``p[i]`` and ``p[i + 1]`` inside a loop body are different
constant offsets of the *same* runtime address ``p + i``.  The paper makes
this structure explicit by renaming the varying base to a fresh pointer
(``newp = p + i``) so that the two accesses become ``newp[0]`` and
``newp[1]``.

This transform performs that renaming at the IR level: every
:class:`~repro.ir.instructions.PtrAddInst` with a non-constant index is
rewritten into a *canonical base* (``base + index*scale``, offset 0) shared
by all pointer computations in the function that use the same
``(base, index, scale)`` triple, followed by a constant-offset ``ptradd``.
The canonical bases are recorded so the local analysis can treat them as
fresh locations (``LR(newp) = loc_new + [0, 0]``).

The :class:`~repro.core.local_analysis.LocalRangeAnalysis` applies the same
keying internally even when the transform has not been run, so running this
pass is optional; it exists to materialise the paper's Figure 4 shape in the
IR and to support the ablation experiments.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.function import Function
from ..ir.instructions import PtrAddInst
from ..ir.module import Module
from ..ir.values import ConstantInt, Value

__all__ = ["rename_region_pointers_in_function", "rename_region_pointers", "canonical_bases"]


def _is_varying_index(inst: PtrAddInst) -> bool:
    return inst.index is not None and not isinstance(inst.index, ConstantInt)


def rename_region_pointers_in_function(function: Function) -> int:
    """Rewrite varying-index pointer arithmetic through shared canonical bases.

    Returns the number of canonical base pointers created.
    """
    if function.is_declaration():
        return 0
    bases: Dict[Tuple[Value, Value, int], PtrAddInst] = {}
    created = 0
    for block in function.blocks:
        for inst in list(block.instructions):
            if not isinstance(inst, PtrAddInst) or not _is_varying_index(inst):
                continue
            key = (inst.base, inst.index, inst.scale)
            canonical = bases.get(key)
            if canonical is None:
                if inst.offset == 0:
                    # The instruction itself is already in canonical shape
                    # (``base + index*scale``) and becomes the shared name.
                    bases[key] = inst
                    continue
                canonical = PtrAddInst(inst.base, inst.index, scale=inst.scale, offset=0,
                                       name=function.uniquify_name(f"{inst.name or 'p'}.base"))
                position = block.instructions.index(inst)
                block.insert(position, canonical)
                bases[key] = canonical
                created += 1
            if canonical is inst:
                continue
            # Rewrite: inst becomes canonical + constant offset.
            replacement = PtrAddInst(canonical, None, scale=1, offset=inst.offset,
                                     name=function.uniquify_name(f"{inst.name or 'p'}.off"))
            position = block.instructions.index(inst)
            block.insert(position, replacement)
            inst.replace_all_uses_with(replacement)
            inst.erase_from_parent()
    return created


def rename_region_pointers(module: Module) -> int:
    """Run the renaming over every function; returns total canonical bases created."""
    return sum(rename_region_pointers_in_function(function)
               for function in module.defined_functions())


def canonical_bases(function: Function) -> List[PtrAddInst]:
    """Canonical base pointers (``base + index*scale`` with zero constant offset)."""
    return [inst for inst in function.instructions()
            if isinstance(inst, PtrAddInst) and _is_varying_index(inst) and inst.offset == 0]
