"""IR-to-IR transformations: SSA promotion, e-SSA, renaming and clean-ups."""

from .essa import build_essa, build_essa_function, split_critical_edges
from .mem2reg import is_promotable, promote_allocas, promote_allocas_in_function
from .pipeline import PipelineOptions, PipelineResult, prepare_module
from .region_rename import (
    canonical_bases,
    rename_region_pointers,
    rename_region_pointers_in_function,
)
from .simplify import (
    eliminate_dead_code_in_function,
    fold_constants_in_function,
    simplify_module,
)

__all__ = [
    "build_essa",
    "build_essa_function",
    "split_critical_edges",
    "is_promotable",
    "promote_allocas",
    "promote_allocas_in_function",
    "PipelineOptions",
    "PipelineResult",
    "prepare_module",
    "canonical_bases",
    "rename_region_pointers",
    "rename_region_pointers_in_function",
    "eliminate_dead_code_in_function",
    "fold_constants_in_function",
    "simplify_module",
]
