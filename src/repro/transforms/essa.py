"""Extended SSA (e-SSA) construction: live-range splitting after conditionals.

Following Bodik, Gupta and Sarkar's ABCD representation (which the paper
adopts), every conditional branch on a comparison ``a <op> b`` defines new
names for ``a`` and ``b`` on each out-edge, constrained by the comparison:

    if (a < b)  →  true edge : a' = a ∩ [-inf, b-1],  b' = b ∩ [a+1, +inf]
                   false edge: a' = a ∩ [b, +inf],     b' = b ∩ [-inf, a]

The new names are :class:`~repro.ir.instructions.SigmaInst` instructions
placed at the top of the edge's target block; uses of the original value
dominated by that block are rewritten to the σ.  Critical edges are split
first so that each σ is guaranteed to apply only on its own path.

e-SSA is what makes both range analyses *sparse*: the information "i < e
holds here" becomes ordinary data flow attached to a fresh variable name.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.dominance import DominatorTree
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BranchInst,
    ICmpInst,
    Instruction,
    PhiInst,
    SigmaInst,
)
from ..ir.module import Module
from ..ir.values import Argument, Value

__all__ = ["build_essa_function", "build_essa", "split_critical_edges"]


def _needs_split(source: BasicBlock, target: BasicBlock) -> bool:
    """A critical edge: the source has several successors and the target several predecessors."""
    return len(source.successors()) > 1 and len(target.predecessors()) > 1


def split_critical_edges(function: Function) -> int:
    """Split every critical edge by inserting a forwarding block.

    Returns the number of edges split.  φ-functions in the old target are
    updated to route the incoming value through the new block.
    """
    split_count = 0
    for block in list(function.blocks):
        terminator = block.terminator
        if not isinstance(terminator, BranchInst) or not terminator.is_conditional():
            continue
        for target in list(terminator.targets()):
            if not _needs_split(block, target):
                continue
            middle = function.append_block(f"{block.name}.{target.name}.split")
            middle_branch = BranchInst(target)
            middle.append(middle_branch)
            terminator.replace_target(target, middle)
            for phi in target.phis():
                for position, incoming_block in enumerate(phi.incoming_blocks):
                    if incoming_block is block:
                        phi.incoming_blocks[position] = middle
            split_count += 1
    return split_count


#: For a predicate that holds, the constraints on (lhs, rhs):
#: each entry is (lower_bound_source, lower_adjust, upper_bound_source, upper_adjust)
#: where the bound source is "other" (the opposite operand) or None (unbounded).
_TRUE_EDGE_CONSTRAINTS: Dict[str, Tuple[Tuple, Tuple]] = {
    # lhs constraint, rhs constraint
    "slt": ((None, 0, "other", -1), ("other", +1, None, 0)),
    "sle": ((None, 0, "other", 0), ("other", 0, None, 0)),
    "sgt": (("other", +1, None, 0), (None, 0, "other", -1)),
    "sge": (("other", 0, None, 0), (None, 0, "other", 0)),
    "eq": (("other", 0, "other", 0), ("other", 0, "other", 0)),
    "ne": ((None, 0, None, 0), (None, 0, None, 0)),
}


def _constraints_for(predicate: str, on_true_edge: bool) -> Optional[Tuple[Tuple, Tuple]]:
    """Constraints for (lhs, rhs) on the given edge of a branch on ``predicate``."""
    if on_true_edge:
        return _TRUE_EDGE_CONSTRAINTS.get(predicate)
    inverse = ICmpInst._INVERSES.get(predicate)
    if inverse is None:
        return None
    return _TRUE_EDGE_CONSTRAINTS.get(inverse)


def _is_renameable(value: Value) -> bool:
    """σs are only created for SSA variables (not constants)."""
    return isinstance(value, (Instruction, Argument))


def _rewrite_dominated_uses(value: Value, replacement: SigmaInst, block: BasicBlock,
                            dom_tree: DominatorTree) -> None:
    """Redirect uses of ``value`` that are dominated by ``block`` to ``replacement``.

    For φ uses, domination is checked against the incoming edge's source
    block rather than the φ's own block.
    """
    for use in list(value.uses):
        user = use.user
        if user is replacement:
            continue
        if isinstance(user, SigmaInst) and user.parent is block and user.source is value:
            continue
        if isinstance(user, PhiInst):
            incoming_block = user.incoming_blocks[use.index]
            if dom_tree.dominates(block, incoming_block):
                user.set_operand(use.index, replacement)
            continue
        if user.parent is None:
            continue
        if user.parent is block:
            # Same block: only instructions after the σ region are dominated.
            if not isinstance(user, (PhiInst, SigmaInst)):
                user.set_operand(use.index, replacement)
            continue
        if dom_tree.dominates(block, user.parent):
            user.set_operand(use.index, replacement)


def build_essa_function(function: Function) -> int:
    """Insert σ instructions for every conditional branch on a comparison.

    Returns the number of σs created.  The function is left in valid e-SSA
    form: σs appear after the φs of their block and all dominated uses are
    renamed.
    """
    if function.is_declaration():
        return 0
    split_critical_edges(function)
    dom_tree = DominatorTree.compute(function)
    created = 0
    for block in list(function.blocks):
        terminator = block.terminator
        if not isinstance(terminator, BranchInst) or not terminator.is_conditional():
            continue
        condition = terminator.condition
        if not isinstance(condition, ICmpInst):
            continue
        lhs, rhs = condition.lhs, condition.rhs
        for target, on_true_edge in ((terminator.true_target, True),
                                     (terminator.false_target, False)):
            if target is None or len(target.predecessors()) != 1:
                continue
            constraints = _constraints_for(condition.predicate, on_true_edge)
            if constraints is None:
                continue
            for operand, other, spec in ((lhs, rhs, constraints[0]), (rhs, lhs, constraints[1])):
                if not _is_renameable(operand):
                    continue
                lower_source, lower_adjust, upper_source, upper_adjust = spec
                lower = other if lower_source == "other" else None
                upper = other if upper_source == "other" else None
                if lower is None and upper is None:
                    continue
                sigma = SigmaInst(
                    operand,
                    lower=lower,
                    upper=upper,
                    lower_adjust=lower_adjust if lower is not None else 0,
                    upper_adjust=upper_adjust if upper is not None else 0,
                    origin_block=block,
                    name=function.uniquify_name(f"{operand.name or 'v'}.s"),
                )
                target.insert_sigma(sigma)
                created += 1
                _rewrite_dominated_uses(operand, sigma, target, dom_tree)
    return created


def build_essa(module: Module) -> int:
    """Run e-SSA construction over every function of ``module``."""
    return sum(build_essa_function(function) for function in module.defined_functions())
