"""One service protocol, every transport: typed requests, dispatch, envelopes.

Every entry point into the analysis service — the in-process
:class:`~repro.service.session.AnalysisSession`, the stdin/stdout daemon
(:mod:`repro.service.daemon`) and the concurrent socket server
(:mod:`repro.service.server`) — speaks the contract defined here, so a
request behaves identically no matter which transport carries it.

Wire shape
----------

A request is one JSON object: ``{"op": <name>, "v": <version>,
"id": <any>, ...fields}``.  ``v`` is the protocol version and is
**required**: a request omitting it or carrying a different version is
rejected with a structured ``protocol_mismatch`` error (the pre-versioned
grace period ended after one release).  ``id`` is an arbitrary
client-chosen correlation token echoed verbatim on the response, which is
what makes pipelined and multiplexed traffic attributable.

A response is one JSON object: ``{"ok": true, "v": 1, "id": ..,
...result}`` on success, and on failure::

    {"ok": false, "v": 1, "id": .., "error_code": "<stable code>",
     "message": "<human text>"}

``error_code`` is machine-readable and stable (see :data:`ERROR_CODES`).
The pre-v1 free-form ``"error"`` string rode along for one deprecation
release and is gone — clients match on ``error_code``.

Access sizes
------------

``size_a``/``size_b`` (and the optional third/fourth elements of a
``query_many`` pair) accept exactly three spellings, normalised in one
place (:func:`coerce_size`) for every transport:

* omitted or the string ``"default"`` — the access covers the pointee
  size (:data:`DEFAULT_SIZE`);
* ``null`` or the string ``"unknown"`` — unbounded access extent;
* a non-negative integer — that many bytes.

Requests are dataclasses (one per op, registered in :data:`REQUESTS` — the
dispatch table that replaced the daemon's if/elif chain); responses for the
common query ops have typed counterparts (:class:`QueryResponse`, …) used
by the bundled clients.  :func:`handle_payload` is the single entry point
transports call: parse, dispatch, envelope — it never raises.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "PROTOCOL_MISMATCH",
    "BAD_REQUEST",
    "UNKNOWN_OP",
    "UNKNOWN_MODULE",
    "UNKNOWN_FUNCTION",
    "UNKNOWN_VALUE",
    "UNKNOWN_ANALYSIS",
    "EDIT_REJECTED",
    "INTERNAL_ERROR",
    "WORKER_UNAVAILABLE",
    "DEADLINE_EXCEEDED",
    "OVERLOADED",
    "ServiceError",
    "DEFAULT_SIZE",
    "UNKNOWN_SIZE",
    "coerce_size",
    "encode_size",
    "Request",
    "REQUESTS",
    "parse_request",
    "handle_payload",
    "success_envelope",
    "error_envelope",
    "make_request",
    "check_response",
    "encode_line",
    "decode_line",
    "LoadResponse",
    "QueryResponse",
    "QueryManyResponse",
    "QueryFunctionResponse",
    "ValuesResponse",
    "RangeResponse",
    "CheckBoundsResponse",
    "ParallelLoopsResponse",
]

#: The protocol version every transport speaks.  Bump on wire-incompatible
#: changes; requests carrying another version are rejected with
#: ``protocol_mismatch`` instead of being half-understood.
PROTOCOL_VERSION = 1

# -- stable machine-readable error codes --------------------------------------

PROTOCOL_MISMATCH = "protocol_mismatch"
BAD_REQUEST = "bad_request"
UNKNOWN_OP = "unknown_op"
UNKNOWN_MODULE = "unknown_module"
UNKNOWN_FUNCTION = "unknown_function"
UNKNOWN_VALUE = "unknown_value"
UNKNOWN_ANALYSIS = "unknown_analysis"
EDIT_REJECTED = "edit_rejected"
INTERNAL_ERROR = "internal_error"
#: The addressed worker process died before answering (PR 10).  The
#: supervisor respawns the shard and replays its journal, so the request
#: is *safely retryable*: reads are side-effect free and the journal only
#: records mutations the dead worker acknowledged — an unacknowledged
#: load/edit was never applied to the state a respawn rebuilds.
WORKER_UNAVAILABLE = "worker_unavailable"
#: The request's ``timeout_ms`` budget expired (PR 10): either the worker
#: abandoned its fixed point cooperatively (solver budget hook) or the
#: front end's wall-clock backstop fired while the worker was wedged.  Not
#: blindly retryable — for a mutating op the effect may still apply.
DEADLINE_EXCEEDED = "deadline_exceeded"
#: The addressed shard is at its in-flight bound and shed the request
#: instead of queueing it (PR 10).  Nothing was executed; safely retryable
#: with backoff for every op.
OVERLOADED = "overloaded"

#: The closed set of error codes clients may match on.  Codes are part of
#: the protocol contract: adding one is fine, renaming or removing one is a
#: wire-incompatible change (bump :data:`PROTOCOL_VERSION`).
ERROR_CODES = frozenset({
    PROTOCOL_MISMATCH,
    BAD_REQUEST,
    UNKNOWN_OP,
    UNKNOWN_MODULE,
    UNKNOWN_FUNCTION,
    UNKNOWN_VALUE,
    UNKNOWN_ANALYSIS,
    EDIT_REJECTED,
    INTERNAL_ERROR,
    WORKER_UNAVAILABLE,
    DEADLINE_EXCEEDED,
    OVERLOADED,
})

#: Codes a client may retry *blindly* (same payload, any op): the request
#: provably did not execute (``overloaded`` sheds before dispatch) or did
#: not commit (``worker_unavailable`` — the per-shard journal records a
#: mutation only once its worker acknowledged it, so a failed-over request
#: left no trace in the state the respawned worker rebuilds).
#: ``deadline_exceeded`` is deliberately absent: a backstopped mutating op
#: may still have applied inside the wedged worker.
RETRYABLE_ERROR_CODES = frozenset({WORKER_UNAVAILABLE, OVERLOADED})


class ServiceError(ValueError):
    """A request the service cannot serve, carrying its stable error code."""

    def __init__(self, message: str, code: str = BAD_REQUEST):
        super().__init__(message)
        self.code = code if code in ERROR_CODES else BAD_REQUEST


# -- access-size schema --------------------------------------------------------

class _DefaultSize:
    """Singleton marker: access size defaults to the pointee size."""

    _instance: ClassVar[Optional["_DefaultSize"]] = None

    def __new__(cls) -> "_DefaultSize":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DEFAULT_SIZE"

    def __reduce__(self):
        return (_DefaultSize, ())


#: Schema-level default: the access covers the pointee size.
DEFAULT_SIZE = _DefaultSize()

#: Wire spelling of an unknown (unbounded) access size.
UNKNOWN_SIZE = "unknown"

#: Wire spelling of the pointee-size default inside ``query_many`` pairs,
#: where positional encoding cannot express omission.
_DEFAULT_SIZE_WORD = "default"


def coerce_size(raw: Any) -> Any:
    """Normalise any accepted size spelling to ``DEFAULT_SIZE | None | int``.

    ``None`` is the normalised unknown (unbounded) extent.  Everything else
    is rejected with ``bad_request`` — this is the one place the size
    schema is defined, so all transports round-trip identically.
    """
    if raw is DEFAULT_SIZE or raw == _DEFAULT_SIZE_WORD:
        return DEFAULT_SIZE
    if raw is None or raw == UNKNOWN_SIZE:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ServiceError(
            f"bad access size {raw!r}: expected a non-negative integer, "
            f"null/{UNKNOWN_SIZE!r}, or omission/{_DEFAULT_SIZE_WORD!r}")
    if raw < 0:
        raise ServiceError(f"bad access size {raw}: must be non-negative")
    return raw


def encode_size(size: Any) -> Any:
    """The canonical wire spelling of a normalised size."""
    if size is DEFAULT_SIZE:
        return _DEFAULT_SIZE_WORD
    return size  # None (unknown) or int


def _parse_size_field(payload: Dict[str, Any], key: str) -> Any:
    return coerce_size(payload[key]) if key in payload else DEFAULT_SIZE


# -- field helpers -------------------------------------------------------------

def _string(payload: Dict[str, Any], key: str) -> str:
    if key not in payload:
        raise ServiceError(f"missing required field {key!r}")
    value = payload[key]
    if not isinstance(value, str):
        raise ServiceError(
            f"field {key!r} must be a string, got {type(value).__name__}")
    return value


def _optional_string(payload: Dict[str, Any], key: str) -> Optional[str]:
    value = payload.get(key)
    if value is not None and not isinstance(value, str):
        raise ServiceError(
            f"field {key!r} must be a string or null, got {type(value).__name__}")
    return value


def _optional_int(payload: Dict[str, Any], key: str) -> Optional[int]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            f"field {key!r} must be an integer or null, got {type(value).__name__}")
    return value


# -- typed requests ------------------------------------------------------------

#: op name -> request type: the dispatch table (replaces the daemon's
#: if/elif chain).  Populated by :func:`_register`.
REQUESTS: Dict[str, Type["Request"]] = {}


def _register(cls: Type["Request"]) -> Type["Request"]:
    REQUESTS[cls.op] = cls
    return cls


def _parse_timeout_ms(payload: Dict[str, Any]) -> Optional[int]:
    value = payload.get("timeout_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ServiceError(
            f"field 'timeout_ms' must be a non-negative integer or null, "
            f"got {value!r}")
    return value


@dataclass(kw_only=True)
class Request:
    """Base of every typed request; ``id`` echoes back on the response."""

    op: ClassVar[str] = ""
    #: Name of the field that addresses a resident module (``None`` for
    #: module-less ops) — the socket front end shards on it.
    route: ClassVar[Optional[str]] = None
    #: Whether the op changes session state.  Mutating requests are
    #: journaled by the supervisor (for crash replay) and are *not* retried
    #: transparently on worker death — the client gets ``worker_unavailable``
    #: and may safely retry, because an unacknowledged mutation was never
    #: journaled.  They also skip the cooperative solver budget: aborting an
    #: in-place incremental refresh would corrupt retained fixed points.
    mutating: ClassVar[bool] = False

    id: Any = None
    #: Additive deadline (milliseconds).  ``None`` means no deadline — the
    #: pre-PR-10 wire shape is untouched, so no protocol version bump.
    timeout_ms: Optional[int] = None

    def routing_module(self) -> Optional[str]:
        """The module this request targets (sharding key), if any."""
        return getattr(self, self.route) if self.route else None

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Request":
        return cls(id=payload.get("id"),
                   timeout_ms=_parse_timeout_ms(payload),
                   **cls._parse(payload))

    @classmethod
    def _parse(cls, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {}

    def to_payload(self) -> Dict[str, Any]:
        """The canonical wire form (round-trips through :func:`parse_request`)."""
        payload: Dict[str, Any] = {"op": self.op, "v": PROTOCOL_VERSION}
        payload.update(self._encode())
        if self.id is not None:
            payload["id"] = self.id
        if self.timeout_ms is not None:
            payload["timeout_ms"] = self.timeout_ms
        return payload

    def _encode(self) -> Dict[str, Any]:
        return {}

    def apply(self, session: Any) -> Dict[str, Any]:
        raise NotImplementedError


@_register
@dataclass(kw_only=True)
class PingRequest(Request):
    op: ClassVar[str] = "ping"

    def apply(self, session: Any) -> Dict[str, Any]:
        return {"pong": True}


@_register
@dataclass(kw_only=True)
class LoadRequest(Request):
    op: ClassVar[str] = "load"
    route: ClassVar[str] = "name"
    mutating: ClassVar[bool] = True

    name: str
    source: str

    @classmethod
    def _parse(cls, payload):
        return {"name": _string(payload, "name"),
                "source": _string(payload, "source")}

    def _encode(self):
        return {"name": self.name, "source": self.source}

    def apply(self, session):
        return session.load_source(self.name, self.source)


@_register
@dataclass(kw_only=True)
class LoadProgramRequest(Request):
    op: ClassVar[str] = "load_program"
    route: ClassVar[str] = "name"
    mutating: ClassVar[bool] = True

    name: str

    @classmethod
    def _parse(cls, payload):
        return {"name": _string(payload, "name")}

    def _encode(self):
        return {"name": self.name}

    def apply(self, session):
        return session.load_program(self.name)


@_register
@dataclass(kw_only=True)
class EditRequest(Request):
    op: ClassVar[str] = "edit"
    route: ClassVar[str] = "name"
    mutating: ClassVar[bool] = True

    name: str
    source: str

    @classmethod
    def _parse(cls, payload):
        return {"name": _string(payload, "name"),
                "source": _string(payload, "source")}

    def _encode(self):
        return {"name": self.name, "source": self.source}

    def apply(self, session):
        return session.edit_source(self.name, self.source)


@_register
@dataclass(kw_only=True)
class QueryRequest(Request):
    op: ClassVar[str] = "query"
    route: ClassVar[str] = "module"

    module: str
    analysis: str
    function: str
    a: str
    b: str
    size_a: Any = DEFAULT_SIZE
    size_b: Any = DEFAULT_SIZE

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "analysis": _string(payload, "analysis"),
                "function": _string(payload, "function"),
                "a": _string(payload, "a"),
                "b": _string(payload, "b"),
                "size_a": _parse_size_field(payload, "size_a"),
                "size_b": _parse_size_field(payload, "size_b")}

    def _encode(self):
        encoded = {"module": self.module, "analysis": self.analysis,
                   "function": self.function, "a": self.a, "b": self.b}
        if self.size_a is not DEFAULT_SIZE:
            encoded["size_a"] = encode_size(self.size_a)
        if self.size_b is not DEFAULT_SIZE:
            encoded["size_b"] = encode_size(self.size_b)
        return encoded

    def apply(self, session):
        return session.query(self.module, self.analysis, self.function,
                             self.a, self.b, self.size_a, self.size_b)


def _parse_pairs(payload: Dict[str, Any]) -> List[Tuple[str, str, Any, Any]]:
    raw = payload.get("pairs")
    if not isinstance(raw, list):
        raise ServiceError("field 'pairs' must be a list of [a, b] or "
                           "[a, b, size_a, size_b] entries")
    pairs: List[Tuple[str, str, Any, Any]] = []
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) not in (2, 4):
            raise ServiceError("each pair must be [a, b] or [a, b, sa, sb]")
        a, b = entry[0], entry[1]
        if not isinstance(a, str) or not isinstance(b, str):
            raise ServiceError("pair value names must be strings")
        if len(entry) == 2:
            pairs.append((a, b, DEFAULT_SIZE, DEFAULT_SIZE))
        else:
            pairs.append((a, b, coerce_size(entry[2]), coerce_size(entry[3])))
    return pairs


def encode_pair(a: str, b: str, size_a: Any, size_b: Any) -> List[Any]:
    """The canonical wire form of one normalised query pair."""
    if size_a is DEFAULT_SIZE and size_b is DEFAULT_SIZE:
        return [a, b]
    return [a, b, encode_size(size_a), encode_size(size_b)]


@_register
@dataclass(kw_only=True)
class QueryManyRequest(Request):
    op: ClassVar[str] = "query_many"
    route: ClassVar[str] = "module"

    module: str
    analysis: str
    function: str
    #: Normalised ``(a, b, size_a, size_b)`` tuples.
    pairs: List[Tuple[str, str, Any, Any]]

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "analysis": _string(payload, "analysis"),
                "function": _string(payload, "function"),
                "pairs": _parse_pairs(payload)}

    def _encode(self):
        return {"module": self.module, "analysis": self.analysis,
                "function": self.function,
                "pairs": [encode_pair(*pair) for pair in self.pairs]}

    def apply(self, session):
        return session.query_many(self.module, self.analysis, self.function,
                                  [list(pair) for pair in self.pairs])


@_register
@dataclass(kw_only=True)
class QueryFunctionRequest(Request):
    op: ClassVar[str] = "query_function"
    route: ClassVar[str] = "module"

    module: str
    analysis: str
    function: Optional[str] = None
    max_pairs: Optional[int] = None

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "analysis": _string(payload, "analysis"),
                "function": _optional_string(payload, "function"),
                "max_pairs": _optional_int(payload, "max_pairs")}

    def _encode(self):
        encoded = {"module": self.module, "analysis": self.analysis}
        if self.function is not None:
            encoded["function"] = self.function
        if self.max_pairs is not None:
            encoded["max_pairs"] = self.max_pairs
        return encoded

    def apply(self, session):
        return session.query_function(self.module, self.analysis,
                                      self.function, self.max_pairs)


@_register
@dataclass(kw_only=True)
class ValuesRequest(Request):
    op: ClassVar[str] = "values"
    route: ClassVar[str] = "module"

    module: str
    function: str

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "function": _string(payload, "function")}

    def _encode(self):
        return {"module": self.module, "function": self.function}

    def apply(self, session):
        return session.values(self.module, self.function)


@_register
@dataclass(kw_only=True)
class RangeRequest(Request):
    op: ClassVar[str] = "range"
    route: ClassVar[str] = "module"

    module: str
    function: str
    value: str

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "function": _string(payload, "function"),
                "value": _string(payload, "value")}

    def _encode(self):
        return {"module": self.module, "function": self.function,
                "value": self.value}

    def apply(self, session):
        return session.range_of(self.module, self.function, self.value)


@_register
@dataclass(kw_only=True)
class CheckBoundsRequest(Request):
    op: ClassVar[str] = "check_bounds"
    route: ClassVar[str] = "module"

    module: str
    function: Optional[str] = None

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "function": _optional_string(payload, "function")}

    def _encode(self):
        encoded = {"module": self.module}
        if self.function is not None:
            encoded["function"] = self.function
        return encoded

    def apply(self, session):
        return session.check_bounds(self.module, self.function)


@_register
@dataclass(kw_only=True)
class ParallelLoopsRequest(Request):
    op: ClassVar[str] = "parallel_loops"
    route: ClassVar[str] = "module"

    module: str
    function: Optional[str] = None

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module"),
                "function": _optional_string(payload, "function")}

    def _encode(self):
        encoded = {"module": self.module}
        if self.function is not None:
            encoded["function"] = self.function
        return encoded

    def apply(self, session):
        return session.parallel_loops(self.module, self.function)


@_register
@dataclass(kw_only=True)
class StatsRequest(Request):
    op: ClassVar[str] = "stats"
    route: ClassVar[str] = "module"

    module: str

    @classmethod
    def _parse(cls, payload):
        return {"module": _string(payload, "module")}

    def _encode(self):
        return {"module": self.module}

    def apply(self, session):
        return session.stats(self.module)


@_register
@dataclass(kw_only=True)
class ModulesRequest(Request):
    op: ClassVar[str] = "modules"

    def apply(self, session):
        return {"modules": session.modules()}


@_register
@dataclass(kw_only=True)
class UnloadRequest(Request):
    op: ClassVar[str] = "unload"
    route: ClassVar[str] = "name"
    mutating: ClassVar[bool] = True

    name: str

    @classmethod
    def _parse(cls, payload):
        return {"name": _string(payload, "name")}

    def _encode(self):
        return {"name": self.name}

    def apply(self, session):
        return session.unload(self.name)


@_register
@dataclass(kw_only=True)
class ShutdownRequest(Request):
    op: ClassVar[str] = "shutdown"

    def apply(self, session):
        return {"shutdown": True}


# -- parsing and dispatch ------------------------------------------------------

def parse_request(payload: Any) -> Request:
    """Decode one request payload into its typed dataclass.

    Raises :class:`ServiceError` with ``bad_request`` (not an object /
    malformed fields), ``protocol_mismatch`` (missing or wrong ``v``) or
    ``unknown_op``.
    """
    if not isinstance(payload, dict):
        raise ServiceError("request must be a JSON object")
    if "v" not in payload:
        raise ServiceError(
            f"request is missing the protocol version field 'v' "
            f"(this service speaks v{PROTOCOL_VERSION})", PROTOCOL_MISMATCH)
    version = payload["v"]
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            f"protocol version {version!r} is not supported "
            f"(this service speaks v{PROTOCOL_VERSION})", PROTOCOL_MISMATCH)
    op = payload.get("op")
    if not isinstance(op, str):
        raise ServiceError("request needs a string 'op' field")
    request_type = REQUESTS.get(op)
    if request_type is None:
        raise ServiceError(
            f"unknown op {op!r} (known: {', '.join(sorted(REQUESTS))})",
            UNKNOWN_OP)
    return request_type.from_payload(payload)


def request_id_of(payload: Any) -> Any:
    """The correlation id of a raw payload (``None`` if absent/unreadable)."""
    return payload.get("id") if isinstance(payload, dict) else None


def success_envelope(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {"ok": True, "v": PROTOCOL_VERSION}
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(result)
    return envelope


def error_envelope(code: str, message: str,
                   request_id: Any = None) -> Dict[str, Any]:
    """The structured failure envelope."""
    if code not in ERROR_CODES:
        code = INTERNAL_ERROR
    envelope: Dict[str, Any] = {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error_code": code,
        "message": message,
    }
    if request_id is not None:
        envelope["id"] = request_id
    return envelope


def _apply_with_deadline(request: Request, session: Any) -> Dict[str, Any]:
    """Dispatch one request, honouring its ``timeout_ms`` cooperatively.

    Read-only requests run under a solver budget: every fixpoint the engine
    runs on their behalf checks the wall-clock deadline before each
    transfer application and abandons the solve the moment it expires (the
    partially built analysis is discarded, never cached — a later request
    rebuilds it cleanly).  Mutating requests deliberately ignore the budget:
    aborting an in-place incremental refresh mid-flight would corrupt the
    retained fixed points, so their only guard is the front end's
    wall-clock backstop.
    """
    if request.timeout_ms is None or request.mutating:
        return success_envelope(request.id, request.apply(session))
    from ..engine.solver import SolverInterrupted, solver_budget

    deadline = time.monotonic() + request.timeout_ms / 1000.0
    if time.monotonic() >= deadline:  # timeout_ms == 0: already expired
        raise ServiceError(
            f"deadline of {request.timeout_ms} ms expired before evaluation",
            DEADLINE_EXCEEDED)
    try:
        with solver_budget(lambda: time.monotonic() < deadline):
            return success_envelope(request.id, request.apply(session))
    except SolverInterrupted as interrupted:
        raise ServiceError(
            f"deadline of {request.timeout_ms} ms exceeded: {interrupted}",
            DEADLINE_EXCEEDED) from interrupted


def handle_payload(session: Any, payload: Any) -> Dict[str, Any]:
    """Parse, dispatch and envelope one request.  Never raises.

    This is the single entry point all three transports route through;
    a malformed request yields the same ``error_code`` envelope (with the
    request id echoed) no matter which transport carried it.
    """
    request_id = request_id_of(payload)
    try:
        request = parse_request(payload)
        return _apply_with_deadline(request, session)
    except ServiceError as error:
        return error_envelope(error.code, str(error), request_id)
    except (KeyError, TypeError, ValueError) as error:
        return error_envelope(BAD_REQUEST, f"{type(error).__name__}: {error}",
                              request_id)
    except Exception as error:  # a request bug must not kill the transport
        return error_envelope(INTERNAL_ERROR,
                              f"{type(error).__name__}: {error}", request_id)


# -- client-side helpers -------------------------------------------------------

def make_request(op: str, *, id: Any = None, **fields: Any) -> Dict[str, Any]:
    """A versioned request payload (clients should always stamp ``v``)."""
    payload: Dict[str, Any] = {"op": op, "v": PROTOCOL_VERSION}
    payload.update(fields)
    if id is not None:
        payload["id"] = id
    return payload


def check_response(envelope: Any) -> Dict[str, Any]:
    """Return a successful envelope; raise :class:`ServiceError` otherwise."""
    if not isinstance(envelope, dict):
        raise ServiceError("response must be a JSON object")
    if envelope.get("ok"):
        return envelope
    raise ServiceError(str(envelope.get("message") or "request failed"),
                       envelope.get("error_code") or BAD_REQUEST)


def encode_line(payload: Dict[str, Any]) -> str:
    """One line-delimited JSON wire frame."""
    return json.dumps(payload, sort_keys=True) + "\n"


def decode_line(line: str) -> Any:
    return json.loads(line)


class _Response:
    """Mixin: build a typed response from a (successful) envelope."""

    @classmethod
    def from_envelope(cls, envelope: Dict[str, Any]):
        check_response(envelope)
        try:
            return cls(**{spec.name: envelope[spec.name]
                          for spec in dataclass_fields(cls)})
        except KeyError as missing:
            raise ServiceError(
                f"response is missing field {missing} for {cls.__name__}")


@dataclass(frozen=True)
class LoadResponse(_Response):
    module: str
    functions: List[str]
    instructions: int


@dataclass(frozen=True)
class QueryResponse(_Response):
    module: str
    analysis: str
    function: str
    a: str
    b: str
    result: str


@dataclass(frozen=True)
class QueryManyResponse(_Response):
    module: str
    analysis: str
    function: str
    results: List[str]


@dataclass(frozen=True)
class QueryFunctionResponse(_Response):
    module: str
    analysis: str
    function: Optional[str]
    queries: int
    no_alias: int
    no_alias_indices: List[int]


@dataclass(frozen=True)
class ValuesResponse(_Response):
    module: str
    function: str
    values: List[Dict[str, Any]]


@dataclass(frozen=True)
class RangeResponse(_Response):
    module: str
    function: str
    value: str
    range: str


@dataclass(frozen=True)
class CheckBoundsResponse(_Response):
    module: str
    function: Optional[str]
    functions: List[Dict[str, Any]]
    summary: Dict[str, int]


@dataclass(frozen=True)
class ParallelLoopsResponse(_Response):
    module: str
    function: Optional[str]
    functions: List[Dict[str, Any]]
    summary: Dict[str, int]
