"""Persistent content-addressed analysis-result store.

The corpus manifest (:mod:`repro.benchgen.manifest`) already pins every
program by ``source_sha256`` and a ``GENERATOR_VERSION``; this store turns
those into cache keys for *served answers*.  Every deterministic query
response — alias pair verdicts, function sweeps, value listings, symbolic
ranges, load metadata — is a pure function of the module source, so it is
stored under ``sha256(namespace ‖ source_sha256 ‖ kind ‖ request-parts)``
where the namespace bakes in the result-schema version, the protocol
version and ``GENERATOR_VERSION``.  Bumping any of those silently
invalidates the whole store (old entries simply stop being addressed).

A restarted server pointed at a warm store therefore answers its first
query without re-running the compile-and-bootstrap path at all: the
session keeps the module *lazy* (source held, nothing compiled) until a
store miss forces materialisation.  Alias pairs are stored individually —
not per batch — so the socket front end's request coalescing never changes
what is addressable across restarts.

Entries are one JSON file each under ``root/<key[:2]>/<key>.json``,
written atomically (temp file + ``os.replace``) so shared-nothing workers
can share one store directory without locks.  A corrupt or foreign entry
is counted, deleted and bypassed — the session recomputes.  Counters
(``hits``/``misses``/``bypasses``/``corrupt_entries``/``writes``) surface
through the service ``stats`` op.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional

from ..benchgen import manifest as _manifest
from .protocol import PROTOCOL_VERSION

__all__ = ["RESULT_SCHEMA_VERSION", "ResultStore"]

#: Bump when the shape of stored values changes (invalidates every entry).
RESULT_SCHEMA_VERSION = 1


class ResultStore:
    """A content-addressed key/value store of serialized analysis results."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.corrupt_entries = 0
        self.writes = 0

    # -- keys ------------------------------------------------------------------
    def namespace(self) -> List[int]:
        """The version triple every key is scoped under.

        ``GENERATOR_VERSION`` is read at call time, so a bump invalidates
        even a store object that outlives the import.
        """
        return [RESULT_SCHEMA_VERSION, PROTOCOL_VERSION,
                _manifest.GENERATOR_VERSION]

    def key(self, source_sha256: str, kind: str, parts: Any = None) -> str:
        """The content address of one result of ``kind`` for one source."""
        blob = json.dumps([self.namespace(), source_sha256, kind, parts],
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- IO --------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """The stored value, or ``None`` (miss / corrupt-entry bypass)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._discard_corrupt(path)
            return None
        if not isinstance(entry, dict) or entry.get("key") != key \
                or "value" not in entry:
            self._discard_corrupt(path)
            return None
        self.hits += 1
        return entry["value"]

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (safe under concurrent workers)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"schema": RESULT_SCHEMA_VERSION, "key": key, "value": value}
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
        os.replace(temporary, path)
        self.writes += 1

    def _discard_corrupt(self, path: str) -> None:
        """Count, delete and bypass an unreadable entry (a miss recomputes)."""
        self.corrupt_entries += 1
        self.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- telemetry -------------------------------------------------------------
    def note_bypass(self) -> None:
        """Record a request the store cannot serve (non-deterministic op)."""
        self.bypasses += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "namespace": self.namespace(),
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "corrupt_entries": self.corrupt_entries,
            "writes": self.writes,
        }
