"""Worker supervision: crash detection, failover, and state replay.

The front end (:mod:`repro.service.server`) used to talk to the pool
directly, which meant a worker that died outside ``handle_payload`` (OOM
kill, stray signal, interpreter bug) left its pump thread blocked on
``responses.get()`` forever and every in-flight future unresolved.  The
:class:`WorkerSupervisor` owns all of that plumbing now and makes worker
death a *handled* event:

* **Detection** — one watcher thread per worker process blocks on
  ``process.join()`` (the process sentinel) and trampolines a death event
  onto the event loop; a generation counter on each worker filters stale
  notifications once a shard has been replaced.
* **Failover** — on death the supervisor unwedges and joins the dead
  shard's pump, settles any responses that did arrive, then triages the
  shard's in-flight jobs: *mutating* requests fail fast with a structured
  ``worker_unavailable`` envelope (their effect is unknown — the client
  owns the retry decision), *read-only* requests are deterministic and are
  resubmitted transparently (bounded retries), and replay jobs are simply
  dropped (the journal still holds them).  The shard is then respawned and
  its journal replayed before any retry or new traffic reaches it.
* **Replay** — sessions are pure functions of their acknowledged request
  stream, so the supervisor journals every *successful* mutating payload
  (``load``/``load_program``/``edit``/``unload``) per shard, exactly once:
  a payload is appended only when its success envelope arrives, and replay
  submissions are never re-journaled.  An edit the dead worker never
  acknowledged is therefore absent from both the journal and the replayed
  state — which is exactly what ``worker_unavailable`` tells the client.
  With a warm content-addressed store the replay is near-free: loads stay
  lazy and the respawned shard keeps answering with zero solver steps.

Admission is gated per shard on an :class:`asyncio.Event` that failover
clears, so nothing new is enqueued onto a dead worker's (abandoned)
queues; journal replays and transparent retries use a private side door.

The chaos harness (:mod:`repro.service.chaos`) observes the supervisor
through the ``on_response`` hook — every worker envelope passes through it
— which is how a fault plan's "kill worker N after K responses" trigger
counts deterministically.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .pool import WorkerPool
from .protocol import WORKER_UNAVAILABLE, error_envelope

__all__ = ["WorkerSupervisor"]


@dataclass
class _Job:
    """One in-flight worker request and everything failover needs to triage
    it: the verbatim payload (for journal/replay), whether it mutates
    session state, and how often it has already been transparently
    resubmitted."""

    shard: int
    payload: Dict[str, Any]
    future: asyncio.Future
    mutating: bool = False
    request_id: Any = None
    replay: bool = False
    retries: int = 0


@dataclass
class SupervisorStats:
    """Counters the loadtest and the chaos harness read back."""

    worker_deaths: int = 0
    respawns: int = 0
    failed_jobs: int = 0
    retried_jobs: int = 0
    replayed_payloads: int = 0
    replay_errors: int = 0
    journal_entries: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "failed_jobs": self.failed_jobs,
            "retried_jobs": self.retried_jobs,
            "replayed_payloads": self.replayed_payloads,
            "replay_errors": self.replay_errors,
            "journal_entries": {str(shard): count for shard, count
                                in sorted(self.journal_entries.items())},
        }


class WorkerSupervisor:
    """Owns worker plumbing: pumps, watchers, in-flight jobs, failover."""

    #: Transparent resubmissions of one deterministic read-only job before
    #: the supervisor gives up and surfaces ``worker_unavailable`` (a shard
    #: crashing three times on the same query is not a transient fault).
    MAX_READ_RETRIES = 3

    def __init__(self, pool: WorkerPool,
                 on_response: Optional[Callable[[int, Dict[str, Any]], None]]
                 = None):
        self.pool = pool
        self.on_response = on_response
        self.stats = SupervisorStats()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._jobs: Dict[int, _Job] = {}
        self._job_ids = itertools.count(1)
        self._journal: Dict[int, List[Dict[str, Any]]] = {}
        self._pumps: Dict[int, threading.Thread] = {}
        self._available: Dict[int, asyncio.Event] = {}
        self._failovers: set = set()
        self._closing = False

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.pool.start()
        for shard in range(self.pool.workers):
            self._journal[shard] = []
            self._available[shard] = asyncio.Event()
            self._available[shard].set()
            self._attach(shard)

    def _attach(self, shard: int) -> None:
        """Start the pump and watcher threads for a shard's *current*
        process generation (called at start and after every respawn)."""
        worker = self.pool.worker(shard)
        pump = threading.Thread(
            target=self._pump, args=(worker,),
            name=f"repro-service-pump-{shard}.g{worker.generation}",
            daemon=True)
        pump.start()
        self._pumps[shard] = pump
        watcher = threading.Thread(
            target=self._watch, args=(worker,),
            name=f"repro-service-watch-{shard}.g{worker.generation}",
            daemon=True)
        watcher.start()

    async def stop(self, timeout: float = 30.0) -> None:
        """Orderly close: drain workers, join pumps, settle leftovers.

        In-flight jobs are failed with envelopes — never exceptions — so a
        late ``await`` on one of them still sees a structured answer.  The
        jobs map is *snapshotted* first: pump callbacks scheduled before
        the pumps exited may still ``pop`` entries concurrently.
        """
        if self._closing:
            return
        self._closing = True
        for task in list(self._failovers):
            task.cancel()
        self.pool.close(timeout)  # posts pump sentinels, even for crashers
        for pump in self._pumps.values():
            if pump.is_alive():
                await asyncio.to_thread(pump.join, timeout)
        for job in list(self._jobs.values()):
            if not job.future.done():
                job.future.set_result(error_envelope(
                    WORKER_UNAVAILABLE, "server stopped", job.request_id))
        self._jobs.clear()
        for event in self._available.values():
            event.set()  # unblock submitters so they observe the failures

    # -- submission ------------------------------------------------------------
    def ready(self, shard: int) -> "asyncio.Event":
        """The admission gate failover clears while a shard is down."""
        return self._available[shard]

    async def submit(self, shard: int, payload: Dict[str, Any], *,
                     mutating: bool = False,
                     request_id: Any = None) -> asyncio.Future:
        """Enqueue one payload; returns the future its envelope resolves.

        Waits out any in-progress failover first so the job lands on the
        live replacement process, never on an abandoned queue.
        """
        await self._available[shard].wait()
        job = _Job(shard=shard, payload=payload, mutating=mutating,
                   request_id=request_id, future=self._loop.create_future())
        self._post(job)
        return job.future

    def _post(self, job: _Job) -> None:
        job_id = next(self._job_ids)
        self._jobs[job_id] = job
        self.pool.submit(job.shard, job_id, job.payload)

    # -- response path ---------------------------------------------------------
    def _pump(self, worker: Any) -> None:
        """Blocking drain of one worker generation's response queue."""
        while True:
            try:
                item = worker.responses.get()
            except (EOFError, OSError):  # pragma: no cover - torn queue
                return
            if item is None:
                return
            job_id, envelope = item
            try:
                self._loop.call_soon_threadsafe(self._resolve, job_id,
                                                envelope, worker.index)
            except RuntimeError:  # pragma: no cover - loop already closed
                return

    def _resolve(self, job_id: int, envelope: Dict[str, Any],
                 shard: int) -> None:
        job = self._jobs.pop(job_id, None)
        if self.on_response is not None:
            self.on_response(shard, envelope)
        if job is None:  # failover already settled it; late answer discarded
            return
        if job.mutating and envelope.get("ok") and not job.replay:
            # Exactly-once journaling: only *acknowledged* mutations enter
            # the journal, and a replayed payload never re-enters it.
            self._journal[job.shard].append(job.payload)
            self.stats.journal_entries[job.shard] = \
                len(self._journal[job.shard])
        if job.replay:
            if not envelope.get("ok"):  # pragma: no cover - divergence guard
                self.stats.replay_errors += 1
            return
        if not job.future.done():
            job.future.set_result(envelope)

    # -- death handling --------------------------------------------------------
    def _watch(self, worker: Any) -> None:
        """Block on one process generation's sentinel; report its death."""
        worker.process.join()
        if self._closing:
            return
        try:
            self._loop.call_soon_threadsafe(self._death_event, worker)
        except RuntimeError:  # pragma: no cover - loop already closed
            return

    def _death_event(self, worker: Any) -> None:
        if self._closing:
            return
        if self.pool.worker(worker.index) is not worker:
            return  # stale notification: the shard was already replaced
        if worker.process.exitcode == 0:
            return  # clean exit (orderly close races the watcher)
        task = self._loop.create_task(self._failover(worker))
        self._failovers.add(task)
        task.add_done_callback(self._failovers.discard)

    async def _failover(self, worker: Any) -> None:
        """Replace a dead shard process; no in-flight job is left hanging."""
        shard = worker.index
        self._available[shard].clear()
        self.stats.worker_deaths += 1
        # Unwedge the pump (a dead worker never posts its sentinel) and let
        # every response that *did* arrive settle before triage.  The join
        # is bounded: a SIGKILL mid-write can tear the queue's byte stream,
        # in which case the pump is abandoned (its late resolutions hit
        # job ids that no longer exist — harmless no-ops).
        worker.responses.put(None)
        await asyncio.to_thread(self._pumps[shard].join, 5.0)
        await asyncio.sleep(0)
        retryable: List[_Job] = []
        for job_id in [jid for jid, job in self._jobs.items()
                       if job.shard == shard]:
            job = self._jobs.pop(job_id)
            if job.replay:
                continue  # journal still holds it; replay restarts below
            if not job.mutating and job.retries < self.MAX_READ_RETRIES:
                retryable.append(job)
                continue
            self.stats.failed_jobs += 1
            if not job.future.done():
                job.future.set_result(error_envelope(
                    WORKER_UNAVAILABLE,
                    f"worker for shard {shard} died "
                    f"(exitcode {worker.process.exitcode}) with this "
                    f"request in flight", job.request_id))
        replacement = await asyncio.to_thread(self.pool.respawn, shard)
        self.stats.respawns += 1
        self._attach(shard)
        # FIFO replay ahead of everything else: the worker queue preserves
        # order, so journal state is rebuilt before any retry executes.
        for payload in list(self._journal[shard]):
            self.stats.replayed_payloads += 1
            self._post(_Job(shard=shard, payload=payload, mutating=True,
                            request_id=payload.get("id"), replay=True,
                            future=self._loop.create_future()))
        for job in retryable:
            job.retries += 1
            self.stats.retried_jobs += 1
            self._post(job)
        assert self.pool.worker(shard) is replacement
        self._available[shard].set()
