"""``python -m repro.service`` starts the stdin/stdout daemon."""

import sys

from .daemon import main

if __name__ == "__main__":  # pragma: no cover - thin entry point
    sys.exit(main())
