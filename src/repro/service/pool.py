"""A shared-nothing pool of analysis worker processes, sharded by module.

The engine's cached analyses hold live IR object graphs that must never
cross process boundaries (the parallel evaluation runner has the same
rule), so scaling the service means *sharding*, not sharing: every worker
process owns a private :class:`~repro.service.session.AnalysisSession`,
and each resident module lives on exactly one worker.  Placement reuses
:func:`repro.evaluation.parallel.partition`'s round-robin discipline for a
known corpus (:meth:`WorkerPool.assign`), falling back to a stable
name-hash (:func:`repro.benchgen.stable_seed`) for modules that show up
unannounced — both are deterministic, so a request for module *m* reaches
the same shard on every run.

Workers speak the service protocol verbatim: a job is ``(job_id, payload)``
on the request queue, the answer is ``(job_id, envelope)`` on the response
queue, produced by :func:`repro.service.protocol.handle_payload` (which
never raises, so a malformed request cannot kill a worker).  The asyncio
front end (:mod:`repro.service.server`) multiplexes many clients onto these
queues and correlates by job id.

Workers are *replaceable*: :meth:`WorkerPool.respawn` builds a fresh
process (with fresh queues — a dead worker's queues may hold torn state)
for a shard whose process died.  The supervisor
(:mod:`repro.service.supervisor`) watches each process sentinel, fails or
retries the dead worker's in-flight jobs, and replays the shard's journal
into the replacement, so worker state stays a pure function of the
acknowledged request stream.

Workers may share one persistent content-addressed result store
(:mod:`repro.service.store`): entries are written atomically, and keys are
pure functions of module source + request, so concurrent writers are safe
and a warm store lets every worker answer without compiling anything.

Processes are *spawned*, not forked: the symbolic layer keeps
process-global memo caches, and a forked child would inherit whatever the
parent had warmed — spawn keeps worker state a pure function of the
request stream, which the loadtest's answer-identity gate relies on.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..benchgen import stable_seed
from ..evaluation.parallel import partition

__all__ = ["WorkerPool"]


def _worker_main(index: int, requests: Any, responses: Any,
                 store_root: Optional[str],
                 chaos: Optional[Dict[str, Any]] = None) -> None:
    """One worker: a resident session draining its request queue.

    Imports happen here (not at module import) only in the sense that the
    spawned interpreter re-imports this module; the loop itself is dumb on
    purpose — all protocol semantics live in ``handle_payload``.

    ``chaos`` is the deterministic fault spec of the chaos harness
    (:mod:`repro.service.chaos`): ``latency_by_id`` maps request ids to a
    sleep (seconds) injected *before* handling — how the harness makes a
    worker wedge on one scripted request — and ``latency_by_ordinal`` maps
    the 0-based arrival ordinal to a sleep.  Production runs pass ``None``.
    """
    from .protocol import handle_payload
    from .session import AnalysisSession
    from .store import ResultStore

    latency_by_id = (chaos or {}).get("latency_by_id", {})
    latency_by_ordinal = (chaos or {}).get("latency_by_ordinal", {})
    store = ResultStore(store_root) if store_root else None
    session = AnalysisSession(store=store)
    ordinal = 0
    while True:
        job = requests.get()
        if job is None:
            responses.put(None)  # lets the front end's pump thread exit
            return
        job_id, payload = job
        delay = latency_by_ordinal.get(str(ordinal))
        if delay is None and isinstance(payload, dict):
            delay = latency_by_id.get(str(payload.get("id")))
        if delay:
            time.sleep(float(delay))
        ordinal += 1
        responses.put((job_id, handle_payload(session, payload)))


@dataclass
class _Worker:
    index: int
    process: multiprocessing.process.BaseProcess
    requests: Any
    responses: Any
    #: Bumped on every respawn — lets the supervisor ignore stale death
    #: notifications for a shard that was already replaced.
    generation: int = 0


@dataclass
class WorkerPool:
    """The process pool plus the deterministic module→shard placement."""

    workers: int = 2
    #: Shared result-store directory (``None`` disables persistence).
    store_root: Optional[str] = None
    #: Deterministic fault spec per shard index (chaos harness only):
    #: ``{shard: {"latency_by_id": {...}, "latency_by_ordinal": {...}}}``.
    chaos: Optional[Dict[int, Dict[str, Any]]] = None
    #: Lifetime respawn count (the supervisor's failovers land here).
    respawns: int = 0
    _workers: List[_Worker] = field(default_factory=list)
    _placement: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.workers = max(1, int(self.workers))

    # -- placement -------------------------------------------------------------
    def assign(self, modules: Sequence[str]) -> Dict[str, int]:
        """Pin a known corpus to shards with the partition discipline.

        Modules are sorted first so placement is independent of call-site
        ordering; :func:`partition`'s round-robin then balances them across
        shards exactly like the parallel evaluation runner balances its
        corpus.
        """
        for shard, names in enumerate(partition(sorted(modules), self.workers)):
            for name in names:
                self._placement[name] = shard
        return dict(self._placement)

    def shard_of(self, module: Optional[str]) -> int:
        """The shard serving ``module`` (stable hash for unpinned names)."""
        if module is None:
            return 0
        shard = self._placement.get(module)
        if shard is None:
            shard = stable_seed(f"service/shard/{module}", self.workers)
            self._placement[module] = shard
        return shard

    # -- lifecycle -------------------------------------------------------------
    def _spawn(self, index: int, generation: int) -> _Worker:
        context = multiprocessing.get_context("spawn")
        requests = context.Queue()
        responses = context.Queue()
        chaos = (self.chaos or {}).get(index)
        process = context.Process(
            target=_worker_main,
            args=(index, requests, responses, self.store_root, chaos),
            name=f"repro-service-worker-{index}.g{generation}", daemon=True)
        process.start()
        return _Worker(index, process, requests, responses, generation)

    def start(self) -> None:
        if self._workers:
            return
        for index in range(self.workers):
            self._workers.append(self._spawn(index, generation=0))

    def worker(self, shard: int) -> _Worker:
        return self._workers[shard]

    def respawn(self, shard: int) -> _Worker:
        """Replace a dead shard process with a fresh one (fresh queues too).

        The old queues are abandoned rather than reused: a process killed
        mid-``put`` can leave a queue's pipe torn, and the supervisor has
        already drained whatever made it through.  The replacement session
        is empty — the caller (supervisor) replays the shard journal.
        """
        old = self._workers[shard]
        if old.process.is_alive():  # defensive: only dead workers come here
            old.process.terminate()
        old.process.join(5.0)
        for queue in (old.requests, old.responses):
            # A worker killed mid-put dies holding the queue's shared write
            # lock; a feeder blocked on that lock would wedge interpreter
            # exit when multiprocessing joins it.  Cancel the join and drop
            # our ends — the daemon pump/feeder threads are left behind.
            queue.cancel_join_thread()
            queue.close()
        worker = self._spawn(shard, generation=old.generation + 1)
        self._workers[shard] = worker
        self.respawns += 1
        return worker

    def submit(self, shard: int, job_id: int, payload: Dict[str, Any]) -> None:
        """Enqueue one protocol payload on a shard's resident worker."""
        self._workers[shard].requests.put((job_id, payload))

    def close(self, timeout: float = 30.0) -> None:
        """Stop every worker (each acknowledges with a ``None`` response).

        A worker that exited *without* posting its sentinel — it crashed,
        or it wedged and had to be terminated here — would leave its pump
        thread blocked on ``responses.get()`` forever, so the closer posts
        the sentinel on the response queue itself in that case (a duplicate
        sentinel is harmless: the pump exits on the first one it sees).
        """
        for worker in self._workers:
            if worker.process.is_alive():
                worker.requests.put(None)
        for worker in self._workers:
            worker.process.join(timeout)
            if worker.process.is_alive():  # pragma: no cover - hang backstop
                worker.process.terminate()
                worker.process.join(timeout)
            if worker.process.exitcode != 0:
                worker.responses.put(None)  # unwedge the pump ourselves
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
