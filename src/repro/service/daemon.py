"""The analysis daemon: the service protocol over stdin/stdout.

Each request is one JSON object per line; each response is one JSON object
per line, in request order.  The wire contract — versioning (``"v"``),
request-``id`` echo, structured ``error_code`` envelopes, the access-size
schema — is defined once in :mod:`repro.service.protocol`; this module is
only the stdio transport around :func:`repro.service.protocol.handle_payload`
(the daemon never dies on a bad request — only on EOF or ``shutdown``).

Operations (``"op"``; request types live in ``protocol.REQUESTS``):

=================  ==========================================================
``ping``           liveness check; echoes ``{"pong": true}``
``load``           ``{name, source}`` — compile and hold resident
``load_program``   ``{name}`` — generate + compile a named suite program
``edit``           ``{name, source}`` — incremental function-granular edit
``query``          ``{module, analysis, function, a, b[, size_a, size_b]}``
``query_many``     ``{module, analysis, function, pairs: [[a, b], …]}``
``query_function`` ``{module, analysis[, function, max_pairs]}``
``check_bounds``   ``{module[, function]}`` — per-access out-of-bounds
                   verdicts (``safe`` / ``maybe-oob`` / ``definitely-oob``)
``parallel_loops`` ``{module[, function]}`` — per-loop parallelizability
                   with the first blocking reason
``values``         ``{module, function}`` — queryable SSA value names
``range``          ``{module, function, value}``
``stats``          ``{module}`` — solver steps, cache + Figure-14 counters
``modules``        list resident modules
``unload``         ``{name}``
``shutdown``       acknowledge and exit
=================  ==========================================================

Requests must carry ``"v"`` (protocol version; omissions and mismatches
are rejected with ``error_code: "protocol_mismatch"``) and may carry
``"id"`` (an arbitrary correlation token echoed verbatim on the
response).  Failures are structured::

    {"ok": false, "v": 1, "id": .., "error_code": "unknown_op",
     "message": "..."}

where ``error_code`` is one of ``protocol.ERROR_CODES`` (the deprecated
pre-v1 free-form ``"error"`` string has completed its removal cycle):

======================  =====================================================
``protocol_mismatch``   ``"v"`` missing or unsupported — fix, don't retry
``bad_request``         malformed payload (missing/ill-typed field, bad size
                        word, bad ``timeout_ms``) — fix, don't retry
``unknown_op``          ``op`` not in the table above — fix, don't retry
``unknown_module``      module not resident — load it, don't retry
``unknown_function``    no such function in the module
``unknown_value``       no such SSA value name in the function
``unknown_analysis``    analysis key not registered
``edit_rejected``       edited source failed the frontend; resident module
                        untouched
``internal_error``      unexpected exception (a bug); payload echoed in
                        ``message``
``worker_unavailable``  pool front end only: the owning worker died with
                        this request in flight.  **Retryable.**  Read-only
                        requests are already retried transparently by the
                        supervisor; a mutating request (``load`` / ``edit``
                        / ``unload``) is *never* half-applied — an
                        unacknowledged mutation is excluded from the replay
                        journal, so resending applies it exactly once.
``deadline_exceeded``   the request's ``timeout_ms`` budget expired — either
                        the worker abandoned the solve cooperatively or the
                        front end's wall-clock backstop fired.  **Not
                        retryable blindly**: a backstopped mutating request
                        may still have applied.
``overloaded``          pool front end only: the shard is at its in-flight
                        bound and shed the request unstarted.  **Retryable**
                        after backoff.
======================  =====================================================

The retry contract is machine-readable: ``protocol.RETRYABLE_ERROR_CODES``
(= ``{worker_unavailable, overloaded}``) is exactly the set a client may
resend without idempotency reasoning; ``ServiceClient.send`` does so with
seeded-jitter exponential backoff (``repro.service.client.RetryPolicy``).
Requests may carry an additive ``timeout_ms`` field (non-negative integer;
``0`` expires immediately); it bounds only non-mutating evaluation —
mutating requests ignore the budget rather than risk a torn edit.

Sizes (``size_a``/``size_b`` and 4-element ``query_many`` pairs): omit or
``"default"`` for the pointee-size default; ``null`` or ``"unknown"`` for
an unknown (unbounded) access extent; a non-negative integer for a byte
count.  :func:`repro.service.protocol.coerce_size` is the single source of
truth, so the schema round-trips identically through the in-process
session, this daemon, and the socket server.

Usage::

    python -m repro.service.daemon [--store DIR]   # or: python -m repro.service

``--store`` backs the session with a persistent content-addressed result
store (:mod:`repro.service.store`): deterministic answers are reused across
restarts and module loads stay lazy while the store can answer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, IO, Optional

from .protocol import BAD_REQUEST, error_envelope, handle_payload, request_id_of
from .session import AnalysisSession
from .store import ResultStore

__all__ = ["handle_request", "serve", "main"]


def handle_request(session: AnalysisSession,
                   request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one decoded request; returns the response envelope.

    Thin alias of :func:`repro.service.protocol.handle_payload`, kept as
    the historical in-process entry point (it never raises — errors come
    back as structured envelopes).
    """
    return handle_payload(session, request)


def serve(stdin: Optional[IO[str]] = None,
          stdout: Optional[IO[str]] = None,
          session: Optional[AnalysisSession] = None) -> int:
    """Run the request loop until EOF or a ``shutdown`` request."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    session = session if session is not None else AnalysisSession()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request: Any = json.loads(line)
        except ValueError as error:
            response = error_envelope(BAD_REQUEST,
                                      f"invalid JSON: {error}", None)
        else:
            response = handle_payload(session, request)
            # handle_payload never raises; a failure is already an envelope
            # with the request id echoed for pipelined correlation.
            assert "ok" in response, request_id_of(request)
        stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        if response.get("shutdown"):
            return 0
    return 0


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - subprocess
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="line-delimited JSON analysis daemon over stdin/stdout")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="back the session with a persistent "
                             "content-addressed result store at DIR")
    options = parser.parse_args(argv)
    store = ResultStore(options.store) if options.store else None
    return serve(session=AnalysisSession(store=store))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
