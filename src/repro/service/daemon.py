"""The analysis daemon: a line-delimited JSON protocol over stdin/stdout.

Each request is one JSON object per line; each response is one JSON object
per line, in request order.  Responses always carry ``"ok"``; successful
ones embed the operation's result fields, failures carry ``"error"`` (the
daemon never dies on a bad request — only on EOF or ``shutdown``).

Operations (``"op"``):

=================  ==========================================================
``ping``           liveness check; echoes ``{"pong": true}``
``load``           ``{name, source}`` — compile and hold resident
``load_program``   ``{name}`` — generate + compile a named suite program
``edit``           ``{name, source}`` — incremental function-granular edit
``query``          ``{module, analysis, function, a, b[, size_a, size_b]}``
``query_many``     ``{module, analysis, function, pairs: [[a, b], …]}``
``query_function`` ``{module, analysis[, function, max_pairs]}``
``values``         ``{module, function}`` — queryable SSA value names
``range``          ``{module, function, value}``
``stats``          ``{module}`` — solver steps, cache + Figure-14 counters
``modules``        list resident modules
``unload``         ``{name}``
``shutdown``       acknowledge and exit
=================  ==========================================================

Sizes: omit for the pointee-size default; ``null`` or ``"unknown"`` for an
unknown (unbounded) access size.

Usage::

    python -m repro.service.daemon        # or: python -m repro.service
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, IO, Optional

from .session import AnalysisSession, ServiceError

__all__ = ["handle_request", "serve", "main"]

#: Marker used instead of the session's keyword-absent default when a size
#: key is missing from the request.
_ABSENT = object()


def _size(request: Dict[str, Any], key: str) -> Any:
    return request[key] if key in request else _ABSENT


def handle_request(session: AnalysisSession,
                   request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one decoded request; returns the response payload."""
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "load":
        return {"ok": True, **session.load_source(request["name"],
                                                  request["source"])}
    if op == "load_program":
        return {"ok": True, **session.load_program(request["name"])}
    if op == "edit":
        return {"ok": True, **session.edit_source(request["name"],
                                                  request["source"])}
    if op == "query":
        kwargs: Dict[str, Any] = {}
        for key in ("size_a", "size_b"):
            value = _size(request, key)
            if value is not _ABSENT:
                kwargs[key] = value
        return {"ok": True, **session.query(
            request["module"], request["analysis"], request["function"],
            request["a"], request["b"], **kwargs)}
    if op == "query_many":
        return {"ok": True, **session.query_many(
            request["module"], request["analysis"], request["function"],
            request["pairs"])}
    if op == "query_function":
        return {"ok": True, **session.query_function(
            request["module"], request["analysis"],
            request.get("function"), request.get("max_pairs"))}
    if op == "values":
        return {"ok": True, **session.values(request["module"],
                                             request["function"])}
    if op == "range":
        return {"ok": True, **session.range_of(
            request["module"], request["function"], request["value"])}
    if op == "stats":
        return {"ok": True, **session.stats(request["module"])}
    if op == "modules":
        return {"ok": True, "modules": session.modules()}
    if op == "unload":
        return {"ok": True, **session.unload(request["name"])}
    if op == "shutdown":
        return {"ok": True, "shutdown": True}
    raise ServiceError(f"unknown op {op!r}")


def serve(stdin: Optional[IO[str]] = None,
          stdout: Optional[IO[str]] = None) -> int:
    """Run the request loop until EOF or a ``shutdown`` request."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    session = AnalysisSession()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object")
            response = handle_request(session, request)
        except (ServiceError, KeyError, TypeError, ValueError) as error:
            response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
        stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        if response.get("shutdown"):
            return 0
    return 0


def main() -> int:  # pragma: no cover - exercised via subprocess in CI
    return serve()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
