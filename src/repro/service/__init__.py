"""The analysis service: resident modules, incremental edits, query traffic.

* :mod:`repro.service.protocol` — the one versioned wire contract every
  transport speaks: typed request dataclasses, the dispatch table,
  structured ``error_code`` envelopes with request-``id`` echo, the
  access-size schema, and client helpers.
* :mod:`repro.service.session` — :class:`AnalysisSession`, the in-process
  API: modules stay resident with warm analysis state and cross-request
  query memos; single-function edits re-run only the invalidated cone;
  optionally backed by the persistent result store.
* :mod:`repro.service.store` — :class:`ResultStore`, the persistent
  content-addressed result cache keyed by source digest + generator and
  protocol versions (warm restarts skip compile-and-bootstrap).
* :mod:`repro.service.client` — :class:`ServiceClient`, the typed client
  facade with one implementation per transport (in-process, stdio daemon,
  TCP socket).
* :mod:`repro.service.daemon` — a stdin/stdout daemon speaking
  line-delimited JSON through the protocol layer.
* :mod:`repro.service.pool` / :mod:`repro.service.server` — the concurrent
  serving layer: an asyncio TCP front end batching and multiplexing onto a
  shared-nothing pool of worker processes sharded by module.
* :mod:`repro.service.supervisor` — :class:`WorkerSupervisor`, the fault
  tolerance core: watches worker sentinels, fails in-flight jobs of a dead
  worker structurally (``worker_unavailable``), respawns the shard and
  replays its journal of acknowledged mutating requests.
* :mod:`repro.service.chaos` — the deterministic fault injector behind
  ``loadtest --chaos``: seeded kill/latency/corruption/truncation plans.
* :mod:`repro.service.bench` — the cold-build vs warm-incremental
  benchmark driven by seeded benchgen edit scenarios.
* :mod:`repro.service.loadtest` — the closed-loop multi-client loadtest
  (``BENCH_service.json``) gated on answer identity vs a serial session.
"""

from .chaos import ChaosController, FaultPlan, generate_plan
from .client import (
    DaemonClient,
    InProcessClient,
    RetryPolicy,
    ServiceClient,
    SocketClient,
)
from .daemon import handle_request, serve
from .pool import WorkerPool
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    RETRYABLE_ERROR_CODES,
    ServiceError,
    check_response,
    handle_payload,
    make_request,
    parse_request,
)
from .session import ANALYSIS_KEYS, AnalysisSession, ResidentModule
from .store import ResultStore


def __getattr__(name: str):
    # Lazy so ``python -m repro.service.server`` does not re-import the
    # module it is about to execute (runpy would warn about that).
    if name == "ServiceServer":
        from .server import ServiceServer

        return ServiceServer
    if name == "WorkerSupervisor":
        from .supervisor import WorkerSupervisor

        return WorkerSupervisor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ANALYSIS_KEYS",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "RETRYABLE_ERROR_CODES",
    "AnalysisSession",
    "ChaosController",
    "DaemonClient",
    "FaultPlan",
    "InProcessClient",
    "ResidentModule",
    "ResultStore",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "SocketClient",
    "ServiceServer",
    "WorkerPool",
    "WorkerSupervisor",
    "check_response",
    "generate_plan",
    "handle_payload",
    "handle_request",
    "make_request",
    "parse_request",
    "serve",
]
