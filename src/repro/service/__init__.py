"""The analysis service: resident modules, incremental edits, query traffic.

* :mod:`repro.service.session` — :class:`AnalysisSession`, the in-process
  API: modules stay resident with warm analysis state and cross-request
  query memos; single-function edits re-run only the invalidated cone.
* :mod:`repro.service.daemon` — a stdin/stdout daemon speaking
  line-delimited JSON over the same session API.
* :mod:`repro.service.bench` — the cold-build vs warm-incremental
  benchmark (``BENCH_service.json``) driven by seeded benchgen edit
  scenarios.
"""

from .daemon import handle_request, serve
from .session import ANALYSIS_KEYS, AnalysisSession, ResidentModule, ServiceError

__all__ = [
    "ANALYSIS_KEYS",
    "AnalysisSession",
    "ResidentModule",
    "ServiceError",
    "handle_request",
    "serve",
]
