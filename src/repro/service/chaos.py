"""Deterministic fault injection for the serving layer.

A :class:`FaultPlan` is a pure function of a seed (via
:func:`repro.benchgen.stable_seed`) and the run's shape (module→shard
placement, client count), so two invocations of ``loadtest --chaos`` with
the same seed schedule byte-identical faults:

* **kill** — SIGKILL one worker process after its K-th response (counted
  on the supervisor's response hook, so the trigger point is a protocol
  event, not a wall-clock race);
* **latency** — make a worker sleep before handling one scripted request
  id (how the harness wedges a shard to force the front end's wall-clock
  deadline backstop and to pile up admissions against ``max_inflight``);
* **corrupt** — overwrite persistent-store entries of modules on
  *non-killed* shards with garbage (the store must count, discard and
  recompute; keeping corruption off the killed shard keeps the
  respawn-warm zero-bootstrap gate meaningful);
* **truncate** — a client writes half a JSON request, drops the
  connection, reconnects and resends (the server must neither crash nor
  disturb other connections).

The :class:`ChaosController` executes only the kill part at runtime — it
counts worker responses per shard and pulls the trigger at the planned
threshold; latency is executed *inside* the worker loop
(:func:`repro.service.pool._worker_main` reads the plan's per-shard spec),
corruption is applied to the store directory between runs, and truncation
is acted out by the loadtest's chaos clients.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..benchgen import stable_seed
from .pool import WorkerPool
from .store import ResultStore

__all__ = ["FaultPlan", "ChaosController", "corrupt_store_entries",
           "generate_plan"]

#: Seconds a latency-injected ("wedged") worker sleeps on its victim
#: request — longer than any sane ``timeout_ms`` + backstop grace, so the
#: front-end backstop provably fires first.
VICTIM_DELAY_SECONDS = 2.5

#: The scripted request id the latency fault keys on.
VICTIM_REQUEST_ID = "chaos.victim"


@dataclass
class FaultPlan:
    """One seeded, fully-determined fault schedule for a chaos run."""

    seed: int
    #: shard → kill after this many worker responses from that shard.
    kills: Dict[int, int] = field(default_factory=dict)
    #: Modules resident on shards scheduled to be killed (the respawn-warm
    #: gate checks exactly these finish unmaterialised, zero solver steps).
    killed_modules: List[str] = field(default_factory=list)
    #: Modules on shards that are never killed.
    safe_modules: List[str] = field(default_factory=list)
    #: Safe-shard modules whose persistent "load" entry gets corrupted.
    corrupt_modules: List[str] = field(default_factory=list)
    #: shard → worker latency spec, the shape ``pool._worker_main`` reads.
    latency: Dict[int, Dict[str, Dict[str, float]]] = \
        field(default_factory=dict)
    #: The module the latency victim request targets.
    victim_module: Optional[str] = None
    #: client index → script ordinal at which that client truncates a
    #: request mid-line, drops the connection, reconnects and resends.
    truncate_clients: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "kills": {str(shard): after
                      for shard, after in sorted(self.kills.items())},
            "killed_modules": list(self.killed_modules),
            "safe_modules": list(self.safe_modules),
            "corrupt_modules": list(self.corrupt_modules),
            "latency": {str(shard): spec
                        for shard, spec in sorted(self.latency.items())},
            "victim_module": self.victim_module,
            "victim_request_id": VICTIM_REQUEST_ID,
            "truncate_clients": {str(index): ordinal for index, ordinal
                                 in sorted(self.truncate_clients.items())},
        }


def generate_plan(seed: int, placement: Dict[str, int],
                  clients: int) -> FaultPlan:
    """Derive the deterministic fault schedule for one chaos run.

    ``placement`` is the pool's module→shard map (every listed module is
    loaded once before client traffic starts).  The kill threshold is set
    past the shard's load responses so the crash always lands mid-query
    traffic — loads are journaled by then, which is what makes the replay
    interesting.
    """
    rng = random.Random(stable_seed(f"service/chaos/{seed}"))
    plan = FaultPlan(seed=seed)
    by_shard: Dict[int, List[str]] = {}
    for module, shard in sorted(placement.items()):
        by_shard.setdefault(shard, []).append(module)
    populated = sorted(shard for shard, names in by_shard.items() if names)
    if not populated:
        return plan
    killed_shard = populated[rng.randrange(len(populated))]
    loads_on_shard = len(by_shard[killed_shard])
    plan.kills[killed_shard] = loads_on_shard + rng.randint(2, 5)
    plan.killed_modules = list(by_shard[killed_shard])
    plan.safe_modules = sorted(
        module for module, shard in placement.items()
        if shard != killed_shard)
    if plan.safe_modules:
        plan.corrupt_modules = sorted(rng.sample(
            plan.safe_modules, min(2, len(plan.safe_modules))))
        plan.victim_module = plan.safe_modules[
            rng.randrange(len(plan.safe_modules))]
    else:  # single populated shard: the victim rides the respawned worker
        plan.victim_module = plan.killed_modules[0]
    victim_shard = placement[plan.victim_module]
    plan.latency[victim_shard] = {
        "latency_by_id": {VICTIM_REQUEST_ID: VICTIM_DELAY_SECONDS}}
    for index in sorted(rng.sample(range(clients), min(2, clients))):
        plan.truncate_clients[index] = rng.randint(1, 4)
    return plan


class ChaosController:
    """Executes a plan's kill schedule off the supervisor's response hook."""

    def __init__(self, pool: WorkerPool, plan: FaultPlan):
        self.pool = pool
        self.plan = plan
        self.responses: Dict[int, int] = {}
        #: shard → response count at which the trigger was pulled.
        self.kills_fired: Dict[int, int] = {}

    def on_response(self, shard: int, envelope: Dict[str, Any]) -> None:
        count = self.responses.get(shard, 0) + 1
        self.responses[shard] = count
        threshold = self.plan.kills.get(shard)
        if threshold is None or shard in self.kills_fired:
            return
        if count >= threshold:
            self.kills_fired[shard] = count
            self.pool.worker(shard).process.kill()


def corrupt_store_entries(store_root: str,
                          digests: Dict[str, str],
                          modules: List[str]) -> List[str]:
    """Overwrite the persistent ``load`` entry of each module with garbage.

    Keys are recomputed exactly as the sessions compute them (source
    digest + kind under the versioned namespace), so the corruption lands
    on entries a warm run *will* read — forcing the discard-and-recompute
    path, which the chaos gates then observe via ``corrupt_entries``.
    Returns the corrupted paths (missing entries are skipped, not created:
    corrupting nothing is a plan error the caller should surface).
    """
    store = ResultStore(store_root)
    corrupted: List[str] = []
    for module in modules:
        digest = digests.get(module)
        if digest is None:
            continue
        path = store._path(store.key(digest, "load"))
        if not os.path.exists(path):
            continue
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn mid-write: this is not json")
        corrupted.append(path)
    return corrupted
