"""The in-process analysis session: resident modules + incremental edits.

This is the serving layer's core.  A session keeps compiled modules
*resident* — each with its own :class:`~repro.engine.manager.AnalysisManager`
and long-lived per-analysis query memos — so a stream of alias/range
queries pays the expensive analysis builds once, and a *function edit*
(:meth:`AnalysisSession.edit_source`) re-runs only the analyses whose
dependency cone the edit touches:

* the function-scoped analyses (symbolic ranges, LR, locations, basicaa
  caches, SCEV engines, RBAA's memo) are refreshed in place, re-solving
  only the edited function's nodes;
* the interprocedural fixed points (GR, Andersen, Steensgaard) are evicted
  and rebuilt lazily on the refreshed inputs.

Everything here is deterministic: responses are pure functions of the load
and edit history, independent of wall time and ``PYTHONHASHSEED``, so a
replay against a cold rebuild must produce byte-identical outcomes (the
service determinism test enforces this).

The stdin/stdout daemon (:mod:`repro.service.daemon`) is a thin
line-delimited JSON wrapper over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..aliases.base import AliasAnalysis
from ..aliases.results import AliasResult, MemoryAccess
from ..benchgen import build_program
from ..core.queries import QueryPairMemo
from ..engine import keys
from ..engine.manager import AnalysisKey, AnalysisManager
from ..frontend import compile_source
from ..ir.function import Function
from ..ir.module import Module
from ..ir.printer import print_function
from ..ir.values import Value
from ..symbolic import compare_memo_stats
from ..evaluation.harness import enumerate_query_pairs

__all__ = ["ANALYSIS_KEYS", "AnalysisSession", "ResidentModule", "ServiceError"]

#: Protocol analysis names → engine keys.
ANALYSIS_KEYS: Dict[str, AnalysisKey] = {
    "rbaa": keys.RBAA,
    "basic": keys.BASIC,
    "andersen": keys.ANDERSEN,
    "steensgaard": keys.STEENSGAARD,
    "scev": keys.SCEV,
}

#: Unknown-access-size marker accepted by the query protocol.
UNKNOWN_SIZE = "unknown"

#: Sentinel for "size not given" (defaults to the pointee size).
_AUTO = object()


class ServiceError(ValueError):
    """A request the session cannot serve (unknown module, value, …)."""


def _solver_steps_of(analysis: Any) -> int:
    """Hardware-independent cost of one cached analysis, in solver steps."""
    statistics = getattr(analysis, "solver_statistics", None)
    return getattr(statistics, "steps", 0) or 0


@dataclass
class ResidentModule:
    """One compiled module held resident by a session."""

    name: str
    source: str
    module: Module
    manager: AnalysisManager
    #: analysis name -> long-lived cross-request query memo.
    memos: Dict[str, QueryPairMemo] = field(default_factory=dict)
    #: Solver steps of analyses that were evicted (harvested before drop).
    retired_steps: int = 0
    edits: int = 0
    #: ``EditImpact.as_dict()`` records, newest last.
    impacts: List[Dict[str, Any]] = field(default_factory=list)
    #: function name -> value name -> value (invalidated per edit).
    _value_index: Dict[str, Dict[str, Value]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.manager.on_evict = self._on_evict

    def _on_evict(self, key: AnalysisKey, value: Any) -> None:
        self.retired_steps += _solver_steps_of(value)

    def solver_steps(self) -> int:
        """Total solver steps this module has cost the session so far:
        retired analyses plus everything still cached (whose statistics
        accumulate across incremental refreshes)."""
        live = sum(_solver_steps_of(value)
                   for value in self.manager.cached_values())
        return self.retired_steps + live

    # -- name resolution -------------------------------------------------------
    def function(self, name: str) -> Function:
        function = self.module.get_function(name)
        if function is None or function.is_declaration():
            raise ServiceError(f"no function @{name} in module {self.name!r}")
        return function

    def value(self, function_name: str, value_name: str) -> Value:
        index = self._value_index.get(function_name)
        if index is None:
            function = self.function(function_name)
            index = {}
            for argument in function.args:
                index[argument.name] = argument
            for inst in function.instructions():
                if inst.name:
                    index[inst.name] = inst
            self._value_index[function_name] = index
        value = index.get(value_name)
        if value is None:
            raise ServiceError(
                f"no value %{value_name} in @{function_name} "
                f"of module {self.name!r}")
        return value

    def drop_value_index(self, function_name: str) -> None:
        self._value_index.pop(function_name, None)


class AnalysisSession:
    """Holds modules resident and answers queries with warm analysis state."""

    #: Upper bound on remembered payloads per (module, analysis) memo — the
    #: LRU size knob of :class:`~repro.core.queries.QueryPairMemo`.  The
    #: memos are what make repeat queries free across requests, but a
    #: long-lived daemon must not grow without bound under adversarial or
    #: merely varied traffic (keys include the client-supplied access size),
    #: so the least-recent payloads are evicted past the cap — counters
    #: survive (``stats`` reports evictions), repeats after that recompute.
    memo_payload_cap = 100_000

    def __init__(self) -> None:
        self._modules: Dict[str, ResidentModule] = {}

    # -- module lifecycle ------------------------------------------------------
    def _resident(self, name: str) -> ResidentModule:
        resident = self._modules.get(name)
        if resident is None:
            raise ServiceError(f"no resident module {name!r}")
        return resident

    def load_source(self, name: str, source: str) -> Dict[str, Any]:
        """Compile ``source`` and make it resident (replacing any same name)."""
        module = compile_source(source, name)
        resident = ResidentModule(name=name, source=source, module=module,
                                  manager=AnalysisManager(module))
        self._modules[name] = resident
        return {"module": name,
                "functions": [fn.name for fn in module.defined_functions()],
                "instructions": module.instruction_count()}

    def load_program(self, name: str) -> Dict[str, Any]:
        """Generate, compile and make resident one named suite program."""
        program = build_program(name)
        return self.load_source(name, program.source)

    def unload(self, name: str) -> Dict[str, Any]:
        self._resident(name)
        del self._modules[name]
        return {"module": name, "unloaded": True}

    def modules(self) -> List[Dict[str, Any]]:
        return [{"module": resident.name,
                 "functions": len(resident.module.defined_functions()),
                 "edits": resident.edits,
                 "solver_steps": resident.solver_steps()}
                for name, resident in sorted(self._modules.items())]

    # -- incremental edits -----------------------------------------------------
    def edit_source(self, name: str, source: str) -> Dict[str, Any]:
        """Apply an edited source to a resident module.

        Function-body-only changes go down the incremental path: each
        changed function is grafted via ``Module.replace_function`` and the
        manager re-runs only what the edit invalidated.  Anything the
        function-granular contract cannot express — added/removed functions
        or globals, signature changes — falls back to a full reload (and
        says so in the response).
        """
        resident = self._resident(name)
        if source == resident.source:
            return {"module": name, "changed": [], "reloaded": False,
                    "impacts": []}
        donor = compile_source(source, name)
        changed = self._diff_functions(resident.module, donor)
        if changed is None:
            result = self.load_source(name, source)
            result.update({"changed": [], "reloaded": True, "impacts": []})
            return result

        impacts: List[Dict[str, Any]] = []
        for function_name in changed:
            replacement = donor.get_function(function_name)
            old = resident.module.replace_function(replacement)
            impact = resident.manager.apply_function_edit(old, replacement)
            impacts.append(impact.as_dict())
            resident.impacts.append(impact.as_dict())
            resident.drop_value_index(function_name)
        # Cross-request memo payloads key on pointer identities; the edited
        # bodies' ids may be recycled and cone functions' outcomes may have
        # changed, so the payloads are dropped (counters survive).
        for memo in resident.memos.values():
            memo.release()
        resident.source = source
        resident.edits += len(changed)
        return {"module": name, "changed": changed, "reloaded": False,
                "impacts": impacts}

    @staticmethod
    def _diff_functions(current: Module, donor: Module) -> Optional[List[str]]:
        """Names of functions whose printed IR changed, in module order.

        ``None`` means the edit is not function-granular (function or global
        set changed, or a signature changed) and needs a full reload.
        """
        current_functions = {fn.name: fn for fn in current.defined_functions()}
        donor_functions = {fn.name: fn for fn in donor.defined_functions()}
        if set(current_functions) != set(donor_functions):
            return None
        current_globals = {g.name: g for g in current.globals}
        donor_globals = {g.name: g for g in donor.globals}
        if set(current_globals) != set(donor_globals):
            return None
        for name, variable in donor_globals.items():
            if variable.value_type != current_globals[name].value_type:
                return None
        changed: List[str] = []
        for fn in current.defined_functions():
            donor_fn = donor_functions[fn.name]
            if donor_fn.function_type != fn.function_type:
                return None
            if print_function(donor_fn) != print_function(fn):
                changed.append(fn.name)
        return changed

    # -- queries ---------------------------------------------------------------
    def _analysis(self, resident: ResidentModule, name: str) -> AliasAnalysis:
        key = ANALYSIS_KEYS.get(name)
        if key is None:
            raise ServiceError(
                f"unknown analysis {name!r} "
                f"(expected one of {sorted(ANALYSIS_KEYS)})")
        return resident.manager.get(key)

    def _memo(self, resident: ResidentModule, analysis_name: str) -> QueryPairMemo:
        memo = resident.memos.get(analysis_name)
        if memo is None:
            memo = QueryPairMemo(max_payloads=self.memo_payload_cap)
            resident.memos[analysis_name] = memo
        elif memo.max_payloads != max(1, self.memo_payload_cap):
            memo.resize(self.memo_payload_cap)
        return memo

    @staticmethod
    def _access(resident: ResidentModule, function_name: str,
                value_name: str, size: Any = _AUTO) -> MemoryAccess:
        pointer = resident.value(function_name, value_name)
        if not pointer.is_pointer():
            raise ServiceError(f"%{value_name} is not a pointer")
        if size is _AUTO:
            return MemoryAccess.of(pointer)
        if size is None or size == UNKNOWN_SIZE:
            return MemoryAccess.unknown_extent(pointer)
        return MemoryAccess.of(pointer, int(size))

    def query(self, module: str, analysis: str, function: str,
              a: str, b: str, size_a: Any = _AUTO,
              size_b: Any = _AUTO) -> Dict[str, Any]:
        """One alias query between two named SSA values of one function."""
        resident = self._resident(module)
        engine = self._analysis(resident, analysis)
        access_a = self._access(resident, function, a, size_a)
        access_b = self._access(resident, function, b, size_b)
        memo = self._memo(resident, analysis)
        result = engine.query_many([(access_a, access_b)], memo=memo)[0]
        return {"module": module, "analysis": analysis, "function": function,
                "a": a, "b": b, "result": str(result)}

    def query_many(self, module: str, analysis: str, function: str,
                   pairs: Sequence[Sequence[Any]]) -> Dict[str, Any]:
        """A batch of queries; each pair is ``[a, b]`` or ``[a, b, sa, sb]``."""
        resident = self._resident(module)
        engine = self._analysis(resident, analysis)
        accesses: List[Tuple[MemoryAccess, MemoryAccess]] = []
        for pair in pairs:
            if len(pair) == 2:
                a, b = pair
                size_a = size_b = _AUTO
            elif len(pair) == 4:
                a, b, size_a, size_b = pair
            else:
                raise ServiceError("each pair must be [a, b] or [a, b, sa, sb]")
            accesses.append((self._access(resident, function, a, size_a),
                             self._access(resident, function, b, size_b)))
        memo = self._memo(resident, analysis)
        results = engine.query_many(accesses, memo=memo)
        return {"module": module, "analysis": analysis, "function": function,
                "results": [str(result) for result in results]}

    def query_function(self, module: str, analysis: str,
                       function: Optional[str] = None,
                       max_pairs: Optional[int] = None) -> Dict[str, Any]:
        """Run the harness pair enumeration (one function or the whole
        module) through the analysis, returning per-function no-alias lists.

        The response is a pure function of the module state — the index
        lists make warm-vs-cold equivalence checkable byte for byte.
        """
        resident = self._resident(module)
        engine = self._analysis(resident, analysis)
        targets = None if function is None else [resident.function(function)]
        pairs = list(enumerate_query_pairs(resident.module, max_pairs,
                                           functions=targets))
        memo = self._memo(resident, analysis)
        results = engine.query_many([(pair.a, pair.b) for pair in pairs],
                                    memo=memo)
        no_alias = [index for index, result in enumerate(results)
                    if result is AliasResult.NO_ALIAS]
        return {"module": module, "analysis": analysis,
                "function": function, "queries": len(pairs),
                "no_alias": len(no_alias), "no_alias_indices": no_alias}

    def values(self, module: str, function: str) -> Dict[str, Any]:
        """The queryable SSA values of one function (name discovery).

        Source-level variable names do not survive the preparation pipeline
        (mem2reg renames into SSA), so clients list a function's values —
        with their defining opcode and pointerness — before addressing
        queries at them.
        """
        resident = self._resident(module)
        target = resident.function(function)
        listed: List[Dict[str, Any]] = []
        for argument in target.args:
            listed.append({"name": argument.name, "op": "argument",
                           "pointer": argument.is_pointer()})
        for inst in target.instructions():
            if inst.name:
                listed.append({"name": inst.name, "op": inst.opcode,
                               "pointer": inst.is_pointer()})
        return {"module": module, "function": function, "values": listed}

    def range_of(self, module: str, function: str, value: str) -> Dict[str, Any]:
        """The symbolic interval of one named integer SSA value."""
        resident = self._resident(module)
        ranges = resident.manager.get(keys.RANGES)
        target = resident.value(function, value)
        interval = ranges.range_of(target)
        return {"module": module, "function": function, "value": value,
                "range": repr(interval)}

    # -- statistics ------------------------------------------------------------
    def stats(self, module: str) -> Dict[str, Any]:
        """Deterministic cost/result counters for one resident module."""
        resident = self._resident(module)
        record: Dict[str, Any] = {
            "module": module,
            "edits": resident.edits,
            "solver_steps": resident.solver_steps(),
            "engine": resident.manager.statistics.as_dict(),
            "memos": {name: {"hits": memo.hits, "misses": memo.misses,
                             "evictions": memo.evictions,
                             "size": len(memo),
                             "max_payloads": memo.max_payloads}
                      for name, memo in sorted(resident.memos.items())},
            # The symbolic order-layer memo caches are process-global (they
            # key on interned expression identities); surfaced here so a
            # daemon operator can watch their hit rates and evictions.
            "symbolic_caches": compare_memo_stats(),
        }
        rbaa = resident.manager.cached(keys.RBAA)
        if rbaa is not None:
            outcomes = rbaa._outcomes
            record["rbaa_outcome_memo"] = {
                "hits": outcomes.hits, "misses": outcomes.misses,
                "evictions": outcomes.evictions, "size": len(outcomes),
                "max_payloads": outcomes.max_payloads,
            }
            statistics = rbaa.statistics
            record["figure14"] = {
                "queries": statistics.queries,
                "no_alias": statistics.no_alias,
                "answered_by_global": statistics.answered_by_global,
                "answered_by_local": statistics.answered_by_local,
                "answered_by_distinct_objects":
                    statistics.answered_by_distinct_objects,
            }
        return record

    def solver_steps(self, module: str) -> int:
        return self._resident(module).solver_steps()
