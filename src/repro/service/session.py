"""The in-process analysis session: resident modules + incremental edits.

This is the serving layer's core.  A session keeps compiled modules
*resident* — each with its own :class:`~repro.engine.manager.AnalysisManager`
and long-lived per-analysis query memos — so a stream of alias/range
queries pays the expensive analysis builds once, and a *function edit*
(:meth:`AnalysisSession.edit_source`) re-runs only the analyses whose
dependency cone the edit touches:

* the function-scoped analyses (symbolic ranges, LR, locations, basicaa
  caches, SCEV engines, RBAA's memo) are refreshed in place, re-solving
  only the edited function's nodes;
* the interprocedural fixed points (GR, Andersen, Steensgaard) are
  *re-seeded* in place through :meth:`SparseSolver.resolve_from`: the
  retained fixed point survives and only the edit's dependent cone is
  re-solved (Steensgaard, whose unification is not retractable, re-applies
  every constraint but still routes through the same entry point);
* only structural edits (function/global set or signature changes) fall
  back to a full reload.

A session may additionally be backed by a persistent content-addressed
:class:`~repro.service.store.ResultStore`.  Results are then keyed by the
module's ``source_sha256`` (plus protocol/generator versions), and a
module whose load metadata is already stored stays **lazy** — source held,
nothing compiled — until a store miss forces materialisation.  That is
what lets a restarted server with a warm store answer its first query
without re-running the compile-and-bootstrap path (its solver-step counter
stays at zero).

Everything here is deterministic: responses are pure functions of the load
and edit history, independent of wall time and ``PYTHONHASHSEED``, so a
replay against a cold rebuild must produce byte-identical outcomes (the
service determinism test enforces this).  Store hits return exactly the
bytes a computation would produce — warmth never changes answers.

The session raises :class:`~repro.service.protocol.ServiceError` with the
protocol's stable error codes; the transports
(:mod:`repro.service.daemon`, :mod:`repro.service.server`) turn those into
structured error envelopes via :func:`repro.service.protocol.handle_payload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..aliases.base import AliasAnalysis
from ..aliases.results import AliasResult, MemoryAccess
from ..benchgen import build_program, source_digest
from ..core.queries import QueryPairMemo
from ..engine import keys
from ..engine.manager import AnalysisKey, AnalysisManager, ManagerStatistics
from ..frontend import compile_source
from ..frontend.cparser import ParseError
from ..frontend.lexer import LexerError
from ..frontend.lowering import LoweringError
from ..frontend.sema import SemanticError
from ..ir.function import Function
from ..ir.module import Module
from ..ir.printer import print_function
from ..ir.values import Value
from ..symbolic import compare_memo_stats
from ..evaluation.harness import enumerate_query_pairs
from .protocol import (
    BAD_REQUEST,
    DEFAULT_SIZE,
    EDIT_REJECTED,
    UNKNOWN_ANALYSIS,
    UNKNOWN_FUNCTION,
    UNKNOWN_MODULE,
    UNKNOWN_SIZE,
    UNKNOWN_VALUE,
    ServiceError,
    coerce_size,
    encode_size,
)
from .store import ResultStore

__all__ = ["ANALYSIS_KEYS", "AnalysisSession", "ResidentModule", "ServiceError",
           "UNKNOWN_SIZE"]

#: Protocol analysis names → engine keys.
ANALYSIS_KEYS: Dict[str, AnalysisKey] = {
    "rbaa": keys.RBAA,
    "basic": keys.BASIC,
    "andersen": keys.ANDERSEN,
    "steensgaard": keys.STEENSGAARD,
    "scev": keys.SCEV,
}

#: Exceptions the frontend raises on malformed sources.
_COMPILE_ERRORS = (LexerError, ParseError, SemanticError, LoweringError)


def _solver_steps_of(analysis: Any) -> int:
    """Hardware-independent cost of one cached analysis, in solver steps."""
    statistics = getattr(analysis, "solver_statistics", None)
    return getattr(statistics, "steps", 0) or 0


@dataclass
class ResidentModule:
    """One module held resident by a session.

    A resident is *lazy* while ``module``/``manager`` are ``None``: the
    source (and its digest) are held, but nothing has been compiled —
    store-backed sessions stay in that state for as long as every request
    is answerable from the content-addressed store.
    """

    name: str
    source: str
    module: Optional[Module] = None
    manager: Optional[AnalysisManager] = None
    #: ``sha256`` of ``source`` — the store's content address.
    digest: str = ""
    #: Load metadata (function names, instruction count), cached so lazy
    #: residents can answer ``load``/``modules`` without compiling.
    meta: Optional[Dict[str, Any]] = None
    #: analysis name -> long-lived cross-request query memo.
    memos: Dict[str, QueryPairMemo] = field(default_factory=dict)
    #: Solver steps of analyses that were evicted (harvested before drop).
    retired_steps: int = 0
    #: Same, attributed per analysis-key name (feeds the per-analysis
    #: telemetry the incremental-interprocedural gate reads).
    retired_by_analysis: Dict[str, int] = field(default_factory=dict)
    edits: int = 0
    #: ``EditImpact.as_dict()`` records, newest last.
    impacts: List[Dict[str, Any]] = field(default_factory=list)
    #: function name -> value name -> value (invalidated per edit).
    _value_index: Dict[str, Dict[str, Value]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = source_digest(self.source)
        if self.manager is not None:
            self.manager.on_evict = self._on_evict

    def _on_evict(self, key: AnalysisKey, value: Any) -> None:
        steps = _solver_steps_of(value)
        self.retired_steps += steps
        if steps:
            self.retired_by_analysis[key.name] = \
                self.retired_by_analysis.get(key.name, 0) + steps

    @property
    def materialized(self) -> bool:
        return self.module is not None

    def solver_steps(self) -> int:
        """Total solver steps this module has cost the session so far:
        retired analyses plus everything still cached (whose statistics
        accumulate across incremental refreshes).  A lazy resident has
        cost nothing — that zero is the warm-store acceptance signal."""
        live = 0
        if self.manager is not None:
            live = sum(_solver_steps_of(value)
                       for value in self.manager.cached_values())
        return self.retired_steps + live

    def solver_steps_by_analysis(self) -> Dict[str, int]:
        """Per-analysis solver-step totals (retired + live), name-sorted.

        The service bench sums the callgraph-scoped names out of this to
        gate the incremental-interprocedural path: after an edit, the GR /
        Andersen / Steensgaard re-seeds must have cost strictly fewer steps
        than the cold fixed points they replaced."""
        totals = dict(self.retired_by_analysis)
        if self.manager is not None:
            for name, value in self.manager.cached_items():
                steps = _solver_steps_of(value)
                if steps:
                    totals[name] = totals.get(name, 0) + steps
        return dict(sorted(totals.items()))

    # -- name resolution -------------------------------------------------------
    def function(self, name: str) -> Function:
        function = self.module.get_function(name)
        if function is None or function.is_declaration():
            raise ServiceError(f"no function @{name} in module {self.name!r}",
                               UNKNOWN_FUNCTION)
        return function

    def value(self, function_name: str, value_name: str) -> Value:
        index = self._value_index.get(function_name)
        if index is None:
            function = self.function(function_name)
            index = {}
            for argument in function.args:
                index[argument.name] = argument
            for inst in function.instructions():
                if inst.name:
                    index[inst.name] = inst
            self._value_index[function_name] = index
        value = index.get(value_name)
        if value is None:
            raise ServiceError(
                f"no value %{value_name} in @{function_name} "
                f"of module {self.name!r}", UNKNOWN_VALUE)
        return value

    def drop_value_index(self, function_name: str) -> None:
        self._value_index.pop(function_name, None)


class AnalysisSession:
    """Holds modules resident and answers queries with warm analysis state."""

    #: Upper bound on remembered payloads per (module, analysis) memo — the
    #: LRU size knob of :class:`~repro.core.queries.QueryPairMemo`.  The
    #: memos are what make repeat queries free across requests, but a
    #: long-lived daemon must not grow without bound under adversarial or
    #: merely varied traffic (keys include the client-supplied access size),
    #: so the least-recent payloads are evicted past the cap — counters
    #: survive (``stats`` reports evictions), repeats after that recompute.
    memo_payload_cap = 100_000

    def __init__(self, store: Optional[ResultStore] = None) -> None:
        self._modules: Dict[str, ResidentModule] = {}
        self.store = store

    # -- module lifecycle ------------------------------------------------------
    def _resident(self, name: str) -> ResidentModule:
        resident = self._modules.get(name)
        if resident is None:
            raise ServiceError(f"no resident module {name!r}", UNKNOWN_MODULE)
        return resident

    @staticmethod
    def _compile(source: str, name: str, code: str) -> Module:
        try:
            return compile_source(source, name)
        except _COMPILE_ERRORS as error:
            raise ServiceError(
                f"compiling module {name!r} failed: "
                f"{type(error).__name__}: {error}", code) from error

    def _materialize(self, resident: ResidentModule) -> None:
        """Compile a lazy resident's held source and warm up its manager."""
        if resident.module is not None:
            return
        resident.module = self._compile(resident.source, resident.name,
                                        BAD_REQUEST)
        resident.manager = AnalysisManager(resident.module)
        resident.manager.on_evict = resident._on_evict

    @staticmethod
    def _meta_of(module: Module) -> Dict[str, Any]:
        return {"functions": [fn.name for fn in module.defined_functions()],
                "instructions": module.instruction_count()}

    def load_source(self, name: str, source: str) -> Dict[str, Any]:
        """Compile ``source`` and make it resident (replacing any same name).

        With a warm store the compile is skipped entirely: the module stays
        lazy on its held source until a store miss needs the IR.
        """
        digest = source_digest(source)
        if self.store is not None:
            meta = self.store.get(self.store.key(digest, "load"))
            if isinstance(meta, dict):
                resident = ResidentModule(name=name, source=source,
                                          digest=digest, meta=dict(meta))
                self._modules[name] = resident
                return {"module": name, **meta}
        module = self._compile(source, name, BAD_REQUEST)
        meta = self._meta_of(module)
        resident = ResidentModule(name=name, source=source, module=module,
                                  manager=AnalysisManager(module),
                                  digest=digest, meta=dict(meta))
        self._modules[name] = resident
        if self.store is not None:
            self.store.put(self.store.key(digest, "load"), meta)
        return {"module": name, **meta}

    def load_program(self, name: str) -> Dict[str, Any]:
        """Generate, compile and make resident one named suite program."""
        program = build_program(name)
        return self.load_source(name, program.source)

    def unload(self, name: str) -> Dict[str, Any]:
        self._resident(name)
        del self._modules[name]
        if self.store is not None:
            self.store.note_bypass()
        return {"module": name, "unloaded": True}

    def modules(self) -> List[Dict[str, Any]]:
        if self.store is not None:
            self.store.note_bypass()
        listing = []
        for name, resident in sorted(self._modules.items()):
            functions = len(resident.meta["functions"]) if resident.meta \
                else len(resident.module.defined_functions())
            listing.append({"module": resident.name,
                            "functions": functions,
                            "edits": resident.edits,
                            "solver_steps": resident.solver_steps()})
        return listing

    # -- incremental edits -----------------------------------------------------
    def edit_source(self, name: str, source: str) -> Dict[str, Any]:
        """Apply an edited source to a resident module.

        Function-body-only changes go down the incremental path: each
        changed function is grafted via ``Module.replace_function`` and the
        manager re-runs only what the edit invalidated.  Anything the
        function-granular contract cannot express — added/removed functions
        or globals, signature changes — falls back to a full reload (and
        says so in the response).  A source the frontend rejects yields an
        ``edit_rejected`` error and leaves the resident module untouched.
        """
        resident = self._resident(name)
        if self.store is not None:
            self.store.note_bypass()
        if source == resident.source:
            return {"module": name, "changed": [], "reloaded": False,
                    "impacts": []}
        donor = self._compile(source, name, EDIT_REJECTED)
        self._materialize(resident)
        changed = self._diff_functions(resident.module, donor)
        if changed is None:
            result = self.load_source(name, source)
            result.update({"changed": [], "reloaded": True, "impacts": []})
            return result

        impacts: List[Dict[str, Any]] = []
        for function_name in changed:
            replacement = donor.get_function(function_name)
            old = resident.module.replace_function(replacement)
            impact = resident.manager.apply_function_edit(old, replacement)
            impacts.append(impact.as_dict())
            resident.impacts.append(impact.as_dict())
            resident.drop_value_index(function_name)
        # Cross-request memo payloads key on pointer identities; the edited
        # bodies' ids may be recycled and cone functions' outcomes may have
        # changed, so the payloads are dropped (counters survive).
        for memo in resident.memos.values():
            memo.release()
        resident.source = source
        resident.digest = source_digest(source)
        resident.meta = self._meta_of(resident.module)
        if self.store is not None:
            # Register the new content address: a restarted server loading
            # the edited source stays lazy, exactly like a fresh load would.
            self.store.put(self.store.key(resident.digest, "load"),
                           resident.meta)
        resident.edits += len(changed)
        return {"module": name, "changed": changed, "reloaded": False,
                "impacts": impacts}

    @staticmethod
    def _diff_functions(current: Module, donor: Module) -> Optional[List[str]]:
        """Names of functions whose printed IR changed, in module order.

        ``None`` means the edit is not function-granular (function or global
        set changed, or a signature changed) and needs a full reload.
        """
        current_functions = {fn.name: fn for fn in current.defined_functions()}
        donor_functions = {fn.name: fn for fn in donor.defined_functions()}
        if set(current_functions) != set(donor_functions):
            return None
        current_globals = {g.name: g for g in current.globals}
        donor_globals = {g.name: g for g in donor.globals}
        if set(current_globals) != set(donor_globals):
            return None
        for name, variable in donor_globals.items():
            if variable.value_type != current_globals[name].value_type:
                return None
        changed: List[str] = []
        for fn in current.defined_functions():
            donor_fn = donor_functions[fn.name]
            if donor_fn.function_type != fn.function_type:
                return None
            if print_function(donor_fn) != print_function(fn):
                changed.append(fn.name)
        return changed

    # -- queries ---------------------------------------------------------------
    def _require_analysis(self, name: str) -> AnalysisKey:
        key = ANALYSIS_KEYS.get(name)
        if key is None:
            raise ServiceError(
                f"unknown analysis {name!r} "
                f"(expected one of {sorted(ANALYSIS_KEYS)})", UNKNOWN_ANALYSIS)
        return key

    def _analysis(self, resident: ResidentModule, name: str) -> AliasAnalysis:
        return resident.manager.get(self._require_analysis(name))

    def _memo(self, resident: ResidentModule, analysis_name: str) -> QueryPairMemo:
        memo = resident.memos.get(analysis_name)
        if memo is None:
            memo = QueryPairMemo(max_payloads=self.memo_payload_cap)
            resident.memos[analysis_name] = memo
        elif memo.max_payloads != max(1, self.memo_payload_cap):
            memo.resize(self.memo_payload_cap)
        return memo

    @staticmethod
    def _access(resident: ResidentModule, function_name: str,
                value_name: str, size: Any = DEFAULT_SIZE) -> MemoryAccess:
        pointer = resident.value(function_name, value_name)
        if not pointer.is_pointer():
            raise ServiceError(f"%{value_name} is not a pointer")
        if size is DEFAULT_SIZE:
            return MemoryAccess.of(pointer)
        if size is None:
            return MemoryAccess.unknown_extent(pointer)
        return MemoryAccess.of(pointer, int(size))

    def _stored(self, resident: ResidentModule, kind: str, parts: Any,
                compute, expected: type):
        """Serve one deterministic result through the content-addressed store."""
        if self.store is None:
            return compute()
        key = self.store.key(resident.digest, kind, parts)
        cached = self.store.get(key)
        if isinstance(cached, expected):
            return cached
        value = compute()
        self.store.put(key, value)
        return value

    def _pair_results(self, resident: ResidentModule, analysis: str,
                      function: str,
                      pairs: Sequence[Tuple[str, str, Any, Any]]) -> List[str]:
        """Alias verdicts for normalised ``(a, b, size_a, size_b)`` pairs.

        Pairs are stored *individually* (not per batch), so the socket
        front end's request coalescing never changes which answers a warm
        store can address.  Only the missing pairs touch the engine.
        """
        results: List[Optional[str]] = [None] * len(pairs)
        store_keys: List[Optional[str]] = [None] * len(pairs)
        if self.store is not None:
            for index, (a, b, size_a, size_b) in enumerate(pairs):
                key = self.store.key(
                    resident.digest, "pair",
                    [analysis, function, a, b,
                     encode_size(size_a), encode_size(size_b)])
                store_keys[index] = key
                cached = self.store.get(key)
                if isinstance(cached, str):
                    results[index] = cached
        missing = [index for index, result in enumerate(results)
                   if result is None]
        if missing:
            self._materialize(resident)
            engine = self._analysis(resident, analysis)
            accesses = []
            for index in missing:
                a, b, size_a, size_b = pairs[index]
                accesses.append((self._access(resident, function, a, size_a),
                                 self._access(resident, function, b, size_b)))
            memo = self._memo(resident, analysis)
            answers = engine.query_many(accesses, memo=memo)
            for index, answer in zip(missing, answers):
                results[index] = str(answer)
                if self.store is not None:
                    self.store.put(store_keys[index], results[index])
        return results  # type: ignore[return-value]

    def query(self, module: str, analysis: str, function: str,
              a: str, b: str, size_a: Any = DEFAULT_SIZE,
              size_b: Any = DEFAULT_SIZE) -> Dict[str, Any]:
        """One alias query between two named SSA values of one function.

        Sizes accept the protocol schema's three spellings (default /
        unknown / byte count) — see :func:`repro.service.protocol.coerce_size`.
        """
        resident = self._resident(module)
        self._require_analysis(analysis)
        pair = (a, b, coerce_size(size_a), coerce_size(size_b))
        result = self._pair_results(resident, analysis, function, [pair])[0]
        return {"module": module, "analysis": analysis, "function": function,
                "a": a, "b": b, "result": result}

    def query_many(self, module: str, analysis: str, function: str,
                   pairs: Sequence[Sequence[Any]]) -> Dict[str, Any]:
        """A batch of queries; each pair is ``[a, b]`` or ``[a, b, sa, sb]``."""
        resident = self._resident(module)
        self._require_analysis(analysis)
        normalised: List[Tuple[str, str, Any, Any]] = []
        for pair in pairs:
            if len(pair) == 2:
                a, b = pair
                size_a = size_b = DEFAULT_SIZE
            elif len(pair) == 4:
                a, b, size_a, size_b = pair
            else:
                raise ServiceError("each pair must be [a, b] or [a, b, sa, sb]")
            normalised.append((a, b, coerce_size(size_a), coerce_size(size_b)))
        results = self._pair_results(resident, analysis, function, normalised)
        return {"module": module, "analysis": analysis, "function": function,
                "results": results}

    def query_function(self, module: str, analysis: str,
                       function: Optional[str] = None,
                       max_pairs: Optional[int] = None) -> Dict[str, Any]:
        """Run the harness pair enumeration (one function or the whole
        module) through the analysis, returning per-function no-alias lists.

        The response is a pure function of the module state — the index
        lists make warm-vs-cold equivalence checkable byte for byte.
        """
        resident = self._resident(module)
        self._require_analysis(analysis)

        def compute() -> Dict[str, Any]:
            self._materialize(resident)
            engine = self._analysis(resident, analysis)
            targets = None if function is None \
                else [resident.function(function)]
            pairs = list(enumerate_query_pairs(resident.module, max_pairs,
                                               functions=targets))
            memo = self._memo(resident, analysis)
            results = engine.query_many([(pair.a, pair.b) for pair in pairs],
                                        memo=memo)
            no_alias = [index for index, result in enumerate(results)
                        if result is AliasResult.NO_ALIAS]
            return {"queries": len(pairs), "no_alias": len(no_alias),
                    "no_alias_indices": no_alias}

        core = self._stored(resident, "query_function",
                            [analysis, function, max_pairs], compute, dict)
        return {"module": module, "analysis": analysis,
                "function": function, **core}

    def check_bounds(self, module: str,
                     function: Optional[str] = None) -> Dict[str, Any]:
        """The out-of-bounds client's verdict report (whole module or one
        function): per-access ``safe`` / ``maybe-oob`` / ``definitely-oob``
        classifications, addressed in the result store like every other
        deterministic response (key: ``check_bounds`` + function part)."""
        resident = self._resident(module)

        def compute() -> Dict[str, Any]:
            self._materialize(resident)
            if function is not None:
                resident.function(function)
            detector = resident.manager.get(keys.BOUNDS)
            return detector.module_report(function)

        core = self._stored(resident, "check_bounds", [function],
                            compute, dict)
        return {"module": module, "function": function, **core}

    def parallel_loops(self, module: str,
                       function: Optional[str] = None) -> Dict[str, Any]:
        """The loop-parallelization client's report (whole module or one
        function): per-loop parallelizability with the first blocking
        reason (store key: ``parallel_loops`` + function part)."""
        resident = self._resident(module)

        def compute() -> Dict[str, Any]:
            self._materialize(resident)
            if function is not None:
                resident.function(function)
            checker = resident.manager.get(keys.PARALLEL)
            return checker.module_report(function)

        core = self._stored(resident, "parallel_loops", [function],
                            compute, dict)
        return {"module": module, "function": function, **core}

    def values(self, module: str, function: str) -> Dict[str, Any]:
        """The queryable SSA values of one function (name discovery).

        Source-level variable names do not survive the preparation pipeline
        (mem2reg renames into SSA), so clients list a function's values —
        with their defining opcode and pointerness — before addressing
        queries at them.
        """
        resident = self._resident(module)

        def compute() -> List[Dict[str, Any]]:
            self._materialize(resident)
            target = resident.function(function)
            listed: List[Dict[str, Any]] = []
            for argument in target.args:
                listed.append({"name": argument.name, "op": "argument",
                               "pointer": argument.is_pointer()})
            for inst in target.instructions():
                if inst.name:
                    listed.append({"name": inst.name, "op": inst.opcode,
                                   "pointer": inst.is_pointer()})
            return listed

        listed = self._stored(resident, "values", [function], compute, list)
        return {"module": module, "function": function, "values": listed}

    def range_of(self, module: str, function: str, value: str) -> Dict[str, Any]:
        """The symbolic interval of one named integer SSA value."""
        resident = self._resident(module)

        def compute() -> str:
            self._materialize(resident)
            ranges = resident.manager.get(keys.RANGES)
            target = resident.value(function, value)
            return repr(ranges.range_of(target))

        interval = self._stored(resident, "range", [function, value],
                                compute, str)
        return {"module": module, "function": function, "value": value,
                "range": interval}

    # -- statistics ------------------------------------------------------------
    def stats(self, module: str) -> Dict[str, Any]:
        """Deterministic cost/result counters for one resident module.

        A lazy (never-materialised) resident reports zero solver steps and
        empty engine counters — exactly the signal the warm-store
        acceptance gate reads.
        """
        resident = self._resident(module)
        manager = resident.manager
        engine_stats = manager.statistics.as_dict() if manager is not None \
            else ManagerStatistics().as_dict()
        record: Dict[str, Any] = {
            "module": module,
            "edits": resident.edits,
            "materialized": resident.materialized,
            "solver_steps": resident.solver_steps(),
            "solver_steps_by_analysis": resident.solver_steps_by_analysis(),
            # Per-edit incremental telemetry: every applied edit's impact
            # record (refresh-vs-evict decision per analysis, re-seeded node
            # counts, retained-state sizes).  Counts and names only — the
            # records are deterministic and survive strip_volatile.
            "incremental": {"impacts": list(resident.impacts)},
            "engine": engine_stats,
            "memos": {name: {"hits": memo.hits, "misses": memo.misses,
                             "evictions": memo.evictions,
                             "size": len(memo),
                             "max_payloads": memo.max_payloads}
                      for name, memo in sorted(resident.memos.items())},
            # The symbolic order-layer memo caches are process-global (they
            # key on interned expression identities); surfaced here so a
            # daemon operator can watch their hit rates and evictions.
            "symbolic_caches": compare_memo_stats(),
        }
        if self.store is not None:
            self.store.note_bypass()
            record["store"] = self.store.stats()
        rbaa = manager.cached(keys.RBAA) if manager is not None else None
        if rbaa is not None:
            outcomes = rbaa._outcomes
            record["rbaa_outcome_memo"] = {
                "hits": outcomes.hits, "misses": outcomes.misses,
                "evictions": outcomes.evictions, "size": len(outcomes),
                "max_payloads": outcomes.max_payloads,
            }
            statistics = rbaa.statistics
            record["figure14"] = {
                "queries": statistics.queries,
                "no_alias": statistics.no_alias,
                "answered_by_global": statistics.answered_by_global,
                "answered_by_local": statistics.answered_by_local,
                "answered_by_distinct_objects":
                    statistics.answered_by_distinct_objects,
            }
        return record

    def solver_steps(self, module: str) -> int:
        return self._resident(module).solver_steps()
