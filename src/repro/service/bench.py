"""Cold-build vs warm-incremental service benchmark (``BENCH_service.json``).

For each benchmark program an edit scenario
(:func:`repro.benchgen.editscript.edit_scenario`) is replayed two ways:

* **warm** — one resident session (optionally a real stdin/stdout daemon
  subprocess with ``--daemon``) absorbs every edit through the
  function-granular incremental path and answers the query sweep from warm
  analysis state;
* **cold** — every step rebuilds the module and all analyses from scratch,
  exactly what every request paid before the service layer existed.

Per step the record carries both paths' *solver steps* (the deterministic,
hardware-independent cost measure reported next to wall time everywhere
else in the repository) plus wall seconds under ``*_seconds`` keys, which
``strip_volatile`` removes for determinism diffs.  The step records also
split out the **callgraph-scoped** steps (GR + Andersen + Steensgaard) and
carry each edit's incremental-impact telemetry (re-seeded node counts,
retained-state sizes), so the re-seed path is auditable per edit.

``--check`` turns the benchmark into a gate: warm and cold answers must be
identical at every step, the warm path must re-run strictly fewer solver
steps than a cold rebuild on every edit, and — the incremental
interprocedural gate — every edit step must re-solve strictly fewer
*callgraph* solver steps than the cold interprocedural fixed points cost.

All transports go through the typed :mod:`repro.service.client` API, so
the benchmark exercises the same versioned wire contract as every other
consumer; ``--daemon`` swaps the warm path onto a real stdin/stdout daemon
subprocess and ``--socket`` onto the concurrent TCP server.

Command line::

    python -m repro.service.bench --quick --daemon --check \
        --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..benchgen import edit_scenario
from ..benchgen.suites import SUITE_PROGRAMS
from ..evaluation.reporting import to_canonical_json
from .client import DaemonClient, InProcessClient, ServiceClient, SocketClient

__all__ = ["DaemonClient", "InProcessClient", "SocketClient", "bench_program",
           "run_bench", "main"]

#: Analyses swept at every step of every scenario.
BENCH_ANALYSES = ("rbaa", "basic", "andersen", "steensgaard")

#: The callgraph-scoped (interprocedural) fixed points, by engine-key name —
#: the analyses whose per-edit re-seed the incremental gate measures.
CALLGRAPH_ANALYSES = ("global-ranges", "andersen", "steensgaard")

#: Quick-mode corpus: small enough for a CI smoke job, big enough that the
#: warm/cold gap is unambiguous.
QUICK_PROGRAMS = ("allroots", "fixoutput", "anagram", "ft")
QUICK_EDITS = 3
QUICK_MAX_PAIRS = 120

#: ``--transport`` / ``bench_program(transport=...)`` choices.
TRANSPORTS = {
    "inprocess": InProcessClient,
    "daemon": DaemonClient,
    "socket": SocketClient,
}


def _sweep(client: ServiceClient, module: str,
           max_pairs: Optional[int]) -> Dict[str, Any]:
    """The per-step query sweep: every analysis over every enumerated pair."""
    queries = 0
    no_alias: Dict[str, int] = {}
    outcomes: Dict[str, List[int]] = {}
    for analysis in BENCH_ANALYSES:
        response = client.query_function(module, analysis, max_pairs=max_pairs)
        queries = response.queries
        no_alias[analysis] = response.no_alias
        outcomes[analysis] = response.no_alias_indices
    return {"queries": queries, "no_alias": no_alias, "outcomes": outcomes}


def _callgraph_steps(stats: Dict[str, Any]) -> int:
    """Solver steps spent on the interprocedural fixed points so far."""
    by_analysis = stats.get("solver_steps_by_analysis", {})
    return sum(by_analysis.get(name, 0) for name in CALLGRAPH_ANALYSES)


def bench_program(name: str, edits: int, max_pairs: Optional[int],
                  seed: int = 0, daemon: bool = False,
                  transport: Optional[str] = None) -> Dict[str, Any]:
    """Replay one program's edit scenario warm and cold; return the record.

    ``transport`` picks the warm path's client (``inprocess`` / ``daemon``
    / ``socket``); the legacy ``daemon=True`` flag means ``daemon``.
    """
    config = next(p for p in SUITE_PROGRAMS if p.name == name).config()
    scenario = edit_scenario(config, edits=edits, seed=seed)

    if transport is None:
        transport = "daemon" if daemon else "inprocess"
    warm_client = TRANSPORTS[transport]()
    steps: List[Dict[str, Any]] = []
    try:
        started = time.perf_counter()
        warm_client.load(name, scenario.steps[0].source)
        load_seconds = time.perf_counter() - started
        previous_steps = 0
        previous_callgraph = 0
        for step in scenario.steps:
            impacts: List[Dict[str, Any]] = []
            warm_started = time.perf_counter()
            if step.index > 0:
                edited = warm_client.edit(name, step.source)
                if edited["reloaded"] or edited["changed"] != [step.function]:
                    raise RuntimeError(
                        f"scenario step {step.index} of {name!r} did not take "
                        f"the incremental path: {edited}")
                impacts = edited["impacts"]
            warm_sweep = _sweep(warm_client, name, max_pairs)
            warm_seconds = time.perf_counter() - warm_started
            warm_stats = warm_client.stats(name)
            total = warm_stats["solver_steps"]
            warm_steps = total - previous_steps
            previous_steps = total
            callgraph_total = _callgraph_steps(warm_stats)
            warm_callgraph = callgraph_total - previous_callgraph
            previous_callgraph = callgraph_total

            cold_started = time.perf_counter()
            cold_client = InProcessClient()
            cold_client.load(name, step.source)
            cold_sweep = _sweep(cold_client, name, max_pairs)
            cold_stats = cold_client.stats(name)
            cold_seconds = time.perf_counter() - cold_started

            steps.append({
                "index": step.index,
                "function": step.function,
                "queries": warm_sweep["queries"],
                "no_alias": warm_sweep["no_alias"],
                "identical": warm_sweep["outcomes"] == cold_sweep["outcomes"],
                "warm_solver_steps": warm_steps,
                "cold_solver_steps": cold_stats["solver_steps"],
                "warm_callgraph_steps": warm_callgraph,
                "cold_callgraph_steps": _callgraph_steps(cold_stats),
                "impacts": impacts,
                "warm_seconds": warm_seconds,
                "cold_seconds": cold_seconds,
            })
    finally:
        warm_client.close()

    edit_steps = [step for step in steps if step["index"] > 0]
    return {
        "program": name,
        "edits": len(edit_steps),
        "steps": steps,
        "totals": {
            "identical": all(step["identical"] for step in steps),
            "warm_solver_steps": sum(s["warm_solver_steps"] for s in steps),
            "cold_solver_steps": sum(s["cold_solver_steps"] for s in steps),
            "warm_edit_solver_steps": sum(s["warm_solver_steps"]
                                          for s in edit_steps),
            "cold_edit_solver_steps": sum(s["cold_solver_steps"]
                                          for s in edit_steps),
            "warm_edit_callgraph_steps": sum(s["warm_callgraph_steps"]
                                             for s in edit_steps),
            "cold_edit_callgraph_steps": sum(s["cold_callgraph_steps"]
                                             for s in edit_steps),
            "load_seconds": load_seconds,
        },
    }


def run_bench(programs: Sequence[str], edits: int,
              max_pairs: Optional[int], seed: int = 0,
              daemon: bool = False,
              transport: Optional[str] = None) -> Dict[str, Any]:
    records = [bench_program(name, edits, max_pairs, seed=seed, daemon=daemon,
                             transport=transport)
               for name in programs]
    return {
        "schema": 2,
        "programs": records,
        "totals": {
            "identical": all(r["totals"]["identical"] for r in records),
            "warm_solver_steps": sum(r["totals"]["warm_solver_steps"]
                                     for r in records),
            "cold_solver_steps": sum(r["totals"]["cold_solver_steps"]
                                     for r in records),
            "warm_edit_callgraph_steps": sum(
                r["totals"]["warm_edit_callgraph_steps"] for r in records),
            "cold_edit_callgraph_steps": sum(
                r["totals"]["cold_edit_callgraph_steps"] for r in records),
        },
    }


def check_record(record: Dict[str, Any]) -> List[str]:
    """Gate violations: outcome mismatches and non-wins on edit steps.

    Two step-cost gates per edit step: the warm path overall, and the
    callgraph-scoped (interprocedural) subset — the latter is what the
    re-seed API must win, since before it every edit paid full GR /
    Andersen / Steensgaard rebuilds.
    """
    problems: List[str] = []
    for program in record["programs"]:
        for step in program["steps"]:
            where = f"{program['program']} step {step['index']}"
            if not step["identical"]:
                problems.append(f"{where}: warm and cold answers differ")
            if step["index"] == 0:
                continue
            if step["warm_solver_steps"] >= step["cold_solver_steps"]:
                problems.append(
                    f"{where}: warm path re-ran {step['warm_solver_steps']} "
                    f"solver steps, cold rebuild {step['cold_solver_steps']}")
            if step["warm_callgraph_steps"] >= step["cold_callgraph_steps"]:
                problems.append(
                    f"{where}: incremental interprocedural path re-ran "
                    f"{step['warm_callgraph_steps']} callgraph solver steps, "
                    f"cold fixed points {step['cold_callgraph_steps']}")
    return problems


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.bench",
        description="Cold-build vs warm-incremental analysis service benchmark.")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke corpus: {', '.join(QUICK_PROGRAMS)}")
    parser.add_argument("--programs", nargs="*", default=None, metavar="NAME")
    parser.add_argument("--edits", type=int, default=None,
                        help=f"edit steps per program (default {QUICK_EDITS})")
    parser.add_argument("--max-pairs", type=int, default=None,
                        help="cap on enumerated pointer pairs per function")
    parser.add_argument("--seed", type=int, default=0,
                        help="edit scenario seed")
    parser.add_argument("--daemon", action="store_true",
                        help="drive the warm path through a real daemon "
                             "subprocess (end-to-end)")
    parser.add_argument("--socket", action="store_true",
                        help="drive the warm path through the concurrent "
                             "TCP server subprocess (end-to-end)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless warm ≡ cold everywhere and the "
                             "warm path (overall and callgraph-scoped) wins "
                             "every edit step")
    parser.add_argument("--out", default="BENCH_service.json")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    programs = args.programs
    if not programs:
        programs = list(QUICK_PROGRAMS)
    edits = args.edits if args.edits is not None else QUICK_EDITS
    max_pairs = args.max_pairs
    if args.quick and max_pairs is None:
        max_pairs = QUICK_MAX_PAIRS

    transport = "socket" if args.socket else ("daemon" if args.daemon
                                              else "inprocess")
    started = time.perf_counter()
    record = run_bench(programs, edits, max_pairs, seed=args.seed,
                       transport=transport)
    elapsed = time.perf_counter() - started
    record["run"] = {
        "daemon": bool(args.daemon),
        "transport": transport,
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "total_wall_seconds": elapsed,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(to_canonical_json(record))
    totals = record["totals"]
    print(f"wrote {args.out}: {len(record['programs'])} programs, "
          f"warm {totals['warm_solver_steps']} vs cold "
          f"{totals['cold_solver_steps']} solver steps "
          f"(callgraph on edits: warm {totals['warm_edit_callgraph_steps']} "
          f"vs cold {totals['cold_edit_callgraph_steps']}), "
          f"identical={totals['identical']} ({elapsed:.2f}s wall)")

    if args.check:
        problems = check_record(record)
        for problem in problems:
            print(f"  CHECK FAILED: {problem}")
        if problems:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
