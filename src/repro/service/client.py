"""Typed client API over the analysis-service protocol.

One :class:`ServiceClient` facade, one implementation per transport:

* :class:`InProcessClient` — an :class:`~repro.service.session.AnalysisSession`
  behind the exact same versioned wire contract the remote transports speak
  (every payload still round-trips through
  :func:`repro.service.protocol.handle_payload`);
* :class:`DaemonClient` — a real ``python -m repro.service`` stdin/stdout
  subprocess, line-delimited JSON;
* :class:`SocketClient` — the concurrent TCP server
  (``python -m repro.service.server``) over one connection.

Every typed method builds its payload with
:func:`repro.service.protocol.make_request` (stamping the mandatory ``"v"``)
and validates the envelope with
:func:`repro.service.protocol.check_response`, so client code never touches
raw request dicts; the query-shaped ops return the protocol's typed response
dataclasses.  Transports only implement :meth:`ServiceClient.call` — send
one payload, return one decoded envelope.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence

from .protocol import (
    DEFAULT_SIZE,
    CheckBoundsResponse,
    LoadResponse,
    ParallelLoopsResponse,
    QueryFunctionResponse,
    QueryManyResponse,
    QueryResponse,
    RangeResponse,
    ServiceError,
    ValuesResponse,
    check_response,
    encode_size,
    handle_payload,
    make_request,
)

__all__ = ["ServiceClient", "InProcessClient", "DaemonClient", "SocketClient",
           "subprocess_env"]


def subprocess_env() -> Dict[str, str]:
    """An environment in which service subprocesses can import ``repro``."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


class ServiceClient:
    """Transport-agnostic typed facade over the versioned wire protocol."""

    # -- transport hook ---------------------------------------------------------
    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request payload, return the decoded response envelope."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the transport (terminate subprocesses, close sockets)."""

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- generic checked request ------------------------------------------------
    def request(self, op: str, *, id: Any = None,
                **fields: Any) -> Dict[str, Any]:
        """One checked request; returns the successful envelope or raises
        :class:`~repro.service.protocol.ServiceError` with its stable code."""
        return check_response(self.call(make_request(op, id=id, **fields)))

    # -- typed operations --------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping")["pong"])

    def load(self, name: str, source: str) -> LoadResponse:
        return LoadResponse.from_envelope(
            self.call(make_request("load", name=name, source=source)))

    def load_program(self, name: str) -> LoadResponse:
        return LoadResponse.from_envelope(
            self.call(make_request("load_program", name=name)))

    def edit(self, name: str, source: str) -> Dict[str, Any]:
        """Apply an edited source; the envelope carries ``changed`` /
        ``reloaded`` and the per-function incremental ``impacts``."""
        return self.request("edit", name=name, source=source)

    def query(self, module: str, analysis: str, function: str, a: str, b: str,
              size_a: Any = DEFAULT_SIZE,
              size_b: Any = DEFAULT_SIZE) -> QueryResponse:
        fields: Dict[str, Any] = {"module": module, "analysis": analysis,
                                  "function": function, "a": a, "b": b}
        if size_a is not DEFAULT_SIZE:
            fields["size_a"] = encode_size(size_a)
        if size_b is not DEFAULT_SIZE:
            fields["size_b"] = encode_size(size_b)
        return QueryResponse.from_envelope(
            self.call(make_request("query", **fields)))

    def query_many(self, module: str, analysis: str, function: str,
                   pairs: Sequence[Sequence[Any]]) -> QueryManyResponse:
        return QueryManyResponse.from_envelope(self.call(make_request(
            "query_many", module=module, analysis=analysis, function=function,
            pairs=[list(pair) for pair in pairs])))

    def query_function(self, module: str, analysis: str,
                       function: Optional[str] = None,
                       max_pairs: Optional[int] = None) -> QueryFunctionResponse:
        fields: Dict[str, Any] = {"module": module, "analysis": analysis}
        if function is not None:
            fields["function"] = function
        if max_pairs is not None:
            fields["max_pairs"] = max_pairs
        return QueryFunctionResponse.from_envelope(
            self.call(make_request("query_function", **fields)))

    def check_bounds(self, module: str,
                     function: Optional[str] = None) -> CheckBoundsResponse:
        fields: Dict[str, Any] = {"module": module}
        if function is not None:
            fields["function"] = function
        return CheckBoundsResponse.from_envelope(
            self.call(make_request("check_bounds", **fields)))

    def parallel_loops(self, module: str,
                       function: Optional[str] = None) -> ParallelLoopsResponse:
        fields: Dict[str, Any] = {"module": module}
        if function is not None:
            fields["function"] = function
        return ParallelLoopsResponse.from_envelope(
            self.call(make_request("parallel_loops", **fields)))

    def values(self, module: str, function: str) -> ValuesResponse:
        return ValuesResponse.from_envelope(self.call(
            make_request("values", module=module, function=function)))

    def range_of(self, module: str, function: str, value: str) -> RangeResponse:
        return RangeResponse.from_envelope(self.call(make_request(
            "range", module=module, function=function, value=value)))

    def stats(self, module: str) -> Dict[str, Any]:
        return self.request("stats", module=module)

    def modules(self) -> List[Dict[str, Any]]:
        return self.request("modules")["modules"]

    def unload(self, name: str) -> Dict[str, Any]:
        return self.request("unload", name=name)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")


class InProcessClient(ServiceClient):
    """The session API behind the same protocol the remote transports speak."""

    def __init__(self, store: Any = None) -> None:
        from .session import AnalysisSession

        self._session = AnalysisSession(store)

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return handle_payload(self._session, payload)


class DaemonClient(ServiceClient):
    """Drives a real daemon subprocess over line-delimited JSON."""

    def __init__(self) -> None:
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.service"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=subprocess_env())

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self._process.stdin is not None and self._process.stdout is not None
        self._process.stdin.write(json.dumps(payload) + "\n")
        self._process.stdin.flush()
        line = self._process.stdout.readline()
        if not line:
            raise RuntimeError("daemon closed its stdout mid-conversation")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.shutdown()
        except (ServiceError, RuntimeError, BrokenPipeError, OSError):
            self._process.kill()  # pragma: no cover - shutdown fallback
        self._process.wait(timeout=30)


class SocketClient(ServiceClient):
    """Drives the concurrent TCP server (:mod:`repro.service.server`).

    The server subprocess announces its ephemeral port on stdout; the
    client then speaks the identical line protocol over one connection.
    """

    def __init__(self, workers: int = 1) -> None:
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--port", "0", "--workers", str(workers)],
            stdout=subprocess.PIPE, text=True, env=subprocess_env())
        assert self._process.stdout is not None
        banner = self._process.stdout.readline()
        match = re.search(r":(\d+) ", banner)
        if not match:
            self._process.kill()
            raise RuntimeError(f"no port in server banner: {banner!r}")
        self._socket = socket.create_connection(
            ("127.0.0.1", int(match.group(1))), timeout=60)
        self._file = self._socket.makefile("rw", encoding="utf-8", newline="\n")

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(payload) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise RuntimeError("server closed the connection mid-conversation")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.shutdown()
        except (ServiceError, RuntimeError, BrokenPipeError, OSError):
            self._process.kill()  # pragma: no cover - shutdown fallback
        finally:
            self._socket.close()
        self._process.wait(timeout=30)
