"""Typed client API over the analysis-service protocol.

One :class:`ServiceClient` facade, one implementation per transport:

* :class:`InProcessClient` — an :class:`~repro.service.session.AnalysisSession`
  behind the exact same versioned wire contract the remote transports speak
  (every payload still round-trips through
  :func:`repro.service.protocol.handle_payload`);
* :class:`DaemonClient` — a real ``python -m repro.service`` stdin/stdout
  subprocess, line-delimited JSON;
* :class:`SocketClient` — the concurrent TCP server
  (``python -m repro.service.server``) over one connection.

Every typed method builds its payload with
:func:`repro.service.protocol.make_request` (stamping the mandatory ``"v"``)
and validates the envelope with
:func:`repro.service.protocol.check_response`, so client code never touches
raw request dicts; the query-shaped ops return the protocol's typed response
dataclasses.  Transports only implement :meth:`ServiceClient.call` — send
one payload, return one decoded envelope.

Typed calls route through :meth:`ServiceClient.send`, which retries
*transient* fault envelopes — exactly the codes in
:data:`repro.service.protocol.RETRYABLE_ERROR_CODES`
(``worker_unavailable``, ``overloaded``) — with seeded-jittered exponential
backoff (:class:`RetryPolicy`).  ``deadline_exceeded`` is deliberately not
retried here: for a mutating request the effect may have applied, so the
caller owns that decision.  Retry counters surface via
:meth:`ServiceClient.retry_stats`.
"""

from __future__ import annotations

import json
import os
import random
import re
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..benchgen import stable_seed
from .protocol import (
    DEFAULT_SIZE,
    RETRYABLE_ERROR_CODES,
    CheckBoundsResponse,
    LoadResponse,
    ParallelLoopsResponse,
    QueryFunctionResponse,
    QueryManyResponse,
    QueryResponse,
    RangeResponse,
    ServiceError,
    ValuesResponse,
    check_response,
    encode_size,
    handle_payload,
    make_request,
)

__all__ = ["RetryPolicy", "ServiceClient", "InProcessClient", "DaemonClient",
           "SocketClient", "subprocess_env"]


@dataclass
class RetryPolicy:
    """Seeded-jittered exponential backoff for *transient* fault envelopes.

    The jitter stream comes from :func:`repro.benchgen.stable_seed`, so a
    given ``seed`` string always produces the same backoff schedule — the
    chaos harness depends on that for reproducible fault runs.  Delays are
    ``min(cap, base · factor^attempt)`` scaled into ``[0.5, 1.0)`` of
    themselves (decorrelated enough to avoid thundering herds, bounded
    enough to stay deterministic in wall-time tests).
    """

    attempts: int = 5
    base_ms: float = 25.0
    factor: float = 2.0
    cap_ms: float = 1000.0
    seed: str = "service/retry/default"
    #: Per-``error_code`` counts of retried responses.
    retries_by_code: Dict[str, int] = field(default_factory=dict)
    #: Requests whose final answer was still a retryable error.
    exhausted: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(stable_seed(self.seed))

    def delay_seconds(self, attempt: int) -> float:
        nominal = min(self.cap_ms, self.base_ms * (self.factor ** attempt))
        return (nominal * (0.5 + 0.5 * self._rng.random())) / 1000.0

    def note(self, code: str) -> None:
        self.retries_by_code[code] = self.retries_by_code.get(code, 0) + 1

    def stats(self) -> Dict[str, Any]:
        return {"attempts": self.attempts,
                "retries_by_code": dict(sorted(self.retries_by_code.items())),
                "retries": sum(self.retries_by_code.values()),
                "exhausted": self.exhausted}


def subprocess_env() -> Dict[str, str]:
    """An environment in which service subprocesses can import ``repro``."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


class ServiceClient:
    """Transport-agnostic typed facade over the versioned wire protocol."""

    #: Backoff policy for transient faults; created lazily on first use.
    #: Assign a configured :class:`RetryPolicy` (or ``None`` before any
    #: typed call ever runs, then a default appears) to tune or seed it.
    retry_policy: Optional[RetryPolicy] = None

    # -- transport hook ---------------------------------------------------------
    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request payload, return the decoded response envelope."""
        raise NotImplementedError

    # -- retrying send ----------------------------------------------------------
    def send(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """:meth:`call` plus transient-fault retries.

        Only the codes in ``RETRYABLE_ERROR_CODES`` are retried: a worker
        that died (``worker_unavailable``) has provably *not* applied a
        mutating request (the journal admits acknowledged mutations only),
        and a shed request (``overloaded``) was never admitted at all — so
        resending either is safe.  Anything else, including
        ``deadline_exceeded``, returns to the caller untouched.
        """
        if self.retry_policy is None:
            self.retry_policy = RetryPolicy()
        policy = self.retry_policy
        attempt = 0
        while True:
            envelope = self.call(payload)
            code = envelope.get("error_code") \
                if isinstance(envelope, dict) else None
            if code not in RETRYABLE_ERROR_CODES:
                return envelope
            if attempt >= policy.attempts:
                policy.exhausted += 1
                return envelope
            policy.note(code)
            time.sleep(policy.delay_seconds(attempt))
            attempt += 1

    def retry_stats(self) -> Dict[str, Any]:
        """Counters of the transient-fault retries this client performed."""
        if self.retry_policy is None:
            return {"attempts": 0, "retries_by_code": {}, "retries": 0,
                    "exhausted": 0}
        return self.retry_policy.stats()

    def close(self) -> None:
        """Release the transport (terminate subprocesses, close sockets)."""

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- generic checked request ------------------------------------------------
    def request(self, op: str, *, id: Any = None,
                **fields: Any) -> Dict[str, Any]:
        """One checked request; returns the successful envelope or raises
        :class:`~repro.service.protocol.ServiceError` with its stable code."""
        return check_response(self.send(make_request(op, id=id, **fields)))

    # -- typed operations --------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping")["pong"])

    def load(self, name: str, source: str) -> LoadResponse:
        return LoadResponse.from_envelope(
            self.send(make_request("load", name=name, source=source)))

    def load_program(self, name: str) -> LoadResponse:
        return LoadResponse.from_envelope(
            self.send(make_request("load_program", name=name)))

    def edit(self, name: str, source: str) -> Dict[str, Any]:
        """Apply an edited source; the envelope carries ``changed`` /
        ``reloaded`` and the per-function incremental ``impacts``."""
        return self.request("edit", name=name, source=source)

    def query(self, module: str, analysis: str, function: str, a: str, b: str,
              size_a: Any = DEFAULT_SIZE,
              size_b: Any = DEFAULT_SIZE) -> QueryResponse:
        fields: Dict[str, Any] = {"module": module, "analysis": analysis,
                                  "function": function, "a": a, "b": b}
        if size_a is not DEFAULT_SIZE:
            fields["size_a"] = encode_size(size_a)
        if size_b is not DEFAULT_SIZE:
            fields["size_b"] = encode_size(size_b)
        return QueryResponse.from_envelope(
            self.send(make_request("query", **fields)))

    def query_many(self, module: str, analysis: str, function: str,
                   pairs: Sequence[Sequence[Any]]) -> QueryManyResponse:
        return QueryManyResponse.from_envelope(self.send(make_request(
            "query_many", module=module, analysis=analysis, function=function,
            pairs=[list(pair) for pair in pairs])))

    def query_function(self, module: str, analysis: str,
                       function: Optional[str] = None,
                       max_pairs: Optional[int] = None) -> QueryFunctionResponse:
        fields: Dict[str, Any] = {"module": module, "analysis": analysis}
        if function is not None:
            fields["function"] = function
        if max_pairs is not None:
            fields["max_pairs"] = max_pairs
        return QueryFunctionResponse.from_envelope(
            self.send(make_request("query_function", **fields)))

    def check_bounds(self, module: str,
                     function: Optional[str] = None) -> CheckBoundsResponse:
        fields: Dict[str, Any] = {"module": module}
        if function is not None:
            fields["function"] = function
        return CheckBoundsResponse.from_envelope(
            self.send(make_request("check_bounds", **fields)))

    def parallel_loops(self, module: str,
                       function: Optional[str] = None) -> ParallelLoopsResponse:
        fields: Dict[str, Any] = {"module": module}
        if function is not None:
            fields["function"] = function
        return ParallelLoopsResponse.from_envelope(
            self.send(make_request("parallel_loops", **fields)))

    def values(self, module: str, function: str) -> ValuesResponse:
        return ValuesResponse.from_envelope(self.send(
            make_request("values", module=module, function=function)))

    def range_of(self, module: str, function: str, value: str) -> RangeResponse:
        return RangeResponse.from_envelope(self.send(make_request(
            "range", module=module, function=function, value=value)))

    def stats(self, module: str) -> Dict[str, Any]:
        return self.request("stats", module=module)

    def modules(self) -> List[Dict[str, Any]]:
        return self.request("modules")["modules"]

    def unload(self, name: str) -> Dict[str, Any]:
        return self.request("unload", name=name)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")


class InProcessClient(ServiceClient):
    """The session API behind the same protocol the remote transports speak."""

    def __init__(self, store: Any = None) -> None:
        from .session import AnalysisSession

        self._session = AnalysisSession(store)

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return handle_payload(self._session, payload)


class DaemonClient(ServiceClient):
    """Drives a real daemon subprocess over line-delimited JSON."""

    def __init__(self) -> None:
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.service"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=subprocess_env())

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self._process.stdin is not None and self._process.stdout is not None
        self._process.stdin.write(json.dumps(payload) + "\n")
        self._process.stdin.flush()
        line = self._process.stdout.readline()
        if not line:
            raise RuntimeError("daemon closed its stdout mid-conversation")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.shutdown()
        except (ServiceError, RuntimeError, BrokenPipeError, OSError):
            self._process.kill()  # pragma: no cover - shutdown fallback
        self._process.wait(timeout=30)


class SocketClient(ServiceClient):
    """Drives the concurrent TCP server (:mod:`repro.service.server`).

    The server subprocess announces its ephemeral port on stdout; the
    client then speaks the identical line protocol over one connection.
    """

    def __init__(self, workers: int = 1) -> None:
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--port", "0", "--workers", str(workers)],
            stdout=subprocess.PIPE, text=True, env=subprocess_env())
        assert self._process.stdout is not None
        banner = self._process.stdout.readline()
        match = re.search(r":(\d+) ", banner)
        if not match:
            self._process.kill()
            raise RuntimeError(f"no port in server banner: {banner!r}")
        self._socket = socket.create_connection(
            ("127.0.0.1", int(match.group(1))), timeout=60)
        self._file = self._socket.makefile("rw", encoding="utf-8", newline="\n")

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(payload) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise RuntimeError("server closed the connection mid-conversation")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.shutdown()
        except (ServiceError, RuntimeError, BrokenPipeError, OSError):
            self._process.kill()  # pragma: no cover - shutdown fallback
        finally:
            self._socket.close()
        self._process.wait(timeout=30)
