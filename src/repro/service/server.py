"""The concurrent socket front end: asyncio TCP over the sharded pool.

One asyncio process accepts any number of clients speaking the same
line-delimited JSON protocol as the stdio daemon (one request object per
line, one response object per line; see :mod:`repro.service.protocol`).
Requests are parsed *here* — malformed ones are rejected with the standard
structured envelope without touching a worker — then routed by their
module to a shard of the shared-nothing :class:`~repro.service.pool.WorkerPool`
and answered out of that worker's resident session.  Responses are
correlated by the protocol's request ``id``, so any one connection may
pipeline freely.

Batching: each shard has a dispatcher coroutine that drains its queue in
rounds and *coalesces* the round's single ``query`` requests that target
the same ``(module, analysis, function)`` into one ``query_many`` job —
one IPC round-trip and one engine batch instead of N.  The dispatcher
waits for the whole round to be answered before draining again, which is
what gives concurrent clients a window to pile up coalescable queries.
Batched answers are split back into per-request envelopes (id echoed), and
because the persistent result store keys alias answers *per pair*, the
coalescing a particular traffic interleaving happens to produce never
changes what a warm store can answer later.

Responses from workers arrive on plain ``multiprocessing`` queues, drained
by one pump thread per shard that trampolines each envelope back onto the
event loop via ``call_soon_threadsafe``.

The front end answers ``ping`` itself, fans ``modules`` out to every shard
and merges the listings, and treats ``shutdown`` as an orderly stop of the
whole server.  Everything else — including every error a *valid* request
produces — comes verbatim from a worker's ``handle_payload``, so socket
answers are bit-identical to the in-process session's.

Usage::

    python -m repro.service.server --port 7411 --workers 4 --store DIR
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from .pool import WorkerPool
from .protocol import (
    BAD_REQUEST,
    ModulesRequest,
    PingRequest,
    QueryManyRequest,
    QueryRequest,
    Request,
    ServiceError,
    ShutdownRequest,
    error_envelope,
    parse_request,
    request_id_of,
    success_envelope,
)

__all__ = ["ServiceServer", "main"]


class ServiceServer:
    """The asyncio TCP front end over one :class:`WorkerPool`."""

    def __init__(self, pool: WorkerPool, host: str = "127.0.0.1",
                 port: int = 0):
        self.pool = pool
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queues: List[asyncio.Queue] = []
        self._dispatchers: List[asyncio.Task] = []
        self._pumps: List[threading.Thread] = []
        self._jobs: Dict[int, asyncio.Future] = {}
        self._job_ids = itertools.count(1)
        self._shutdown = asyncio.Event()
        self._stopped = False
        #: Telemetry: coalesced query rounds (observable from the loadtest).
        self.batches = 0
        self.batched_queries = 0

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.pool.start()
        for shard in range(self.pool.workers):
            self._queues.append(asyncio.Queue())
            self._dispatchers.append(
                asyncio.create_task(self._dispatch(shard)))
            pump = threading.Thread(target=self._pump, args=(shard,),
                                    name=f"repro-service-pump-{shard}",
                                    daemon=True)
            pump.start()
            self._pumps.append(pump)
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self._requested_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_shutdown(self) -> None:
        """Block until a client sends ``shutdown`` (or :meth:`stop` runs)."""
        await self._shutdown.wait()

    async def stop(self) -> None:
        """Orderly stop: close the listener, drain workers, join pumps."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._dispatchers:
            task.cancel()
        self.pool.close()  # workers answer the sentinel; pumps exit on it
        for pump in self._pumps:
            pump.join(timeout=30.0)
        for future in self._jobs.values():  # pragma: no cover - stop race
            if not future.done():
                future.set_exception(ConnectionError("server stopped"))
        self._jobs.clear()
        self._shutdown.set()

    # -- worker plumbing -------------------------------------------------------
    def _pump(self, shard: int) -> None:
        """Blocking drain of one worker's response queue → event loop."""
        responses = self.pool.worker(shard).responses
        while True:
            item = responses.get()
            if item is None:
                return
            job_id, envelope = item
            try:
                self._loop.call_soon_threadsafe(self._resolve, job_id, envelope)
            except RuntimeError:  # pragma: no cover - loop already closed
                return

    def _resolve(self, job_id: int, envelope: Dict[str, Any]) -> None:
        future = self._jobs.pop(job_id, None)
        if future is not None and not future.done():
            future.set_result(envelope)

    def _submit(self, shard: int, payload: Dict[str, Any]) -> asyncio.Future:
        job_id = next(self._job_ids)
        future = self._loop.create_future()
        self._jobs[job_id] = future
        self.pool.submit(shard, job_id, payload)
        return future

    # -- dispatch + batching ---------------------------------------------------
    async def _dispatch(self, shard: int) -> None:
        """One shard's round loop: drain, coalesce, submit, await the round.

        Awaiting the whole round before the next drain is deliberate — it
        is the window during which concurrent clients' queries accumulate
        into the next coalescable batch.
        """
        queue = self._queues[shard]
        while True:
            batch: List[Tuple[Request, Dict[str, Any], asyncio.Future]] = \
                [await queue.get()]
            while not queue.empty():
                batch.append(queue.get_nowait())
            round_jobs = []
            groups: Dict[Tuple[str, str, str],
                         List[Tuple[QueryRequest, asyncio.Future]]] = {}
            for request, payload, reply in batch:
                if isinstance(request, QueryRequest):
                    key = (request.module, request.analysis, request.function)
                    groups.setdefault(key, []).append((request, reply))
                else:
                    round_jobs.append(
                        self._deliver(self._submit(shard, payload), reply))
            for key, members in groups.items():
                if len(members) == 1:
                    request, reply = members[0]
                    round_jobs.append(self._deliver(
                        self._submit(shard, request.to_payload()), reply))
                    continue
                module, analysis, function = key
                combined = QueryManyRequest(
                    module=module, analysis=analysis, function=function,
                    pairs=[(r.a, r.b, r.size_a, r.size_b)
                           for r, _ in members])
                self.batches += 1
                self.batched_queries += len(members)
                round_jobs.append(self._deliver_split(
                    self._submit(shard, combined.to_payload()), members))
            await asyncio.gather(*round_jobs)

    @staticmethod
    async def _deliver(job: asyncio.Future, reply: asyncio.Future) -> None:
        envelope = await job
        if not reply.done():
            reply.set_result(envelope)

    @staticmethod
    async def _deliver_split(job: asyncio.Future,
                             members: List[Tuple[QueryRequest,
                                                 asyncio.Future]]) -> None:
        """Split one coalesced ``query_many`` answer into per-query envelopes.

        The reconstructed envelopes are field-for-field what the worker
        would have produced for the individual ``query`` — including, on
        failure, the error message (module- and analysis-level errors are
        uniform across a coalesced group, which is the only way a group
        can fail: membership requires identical module/analysis/function).
        """
        envelope = await job
        if envelope.get("ok"):
            results = envelope.get("results", [])
            for (request, reply), result in zip(members, results):
                if not reply.done():
                    reply.set_result(success_envelope(request.id, {
                        "module": request.module,
                        "analysis": request.analysis,
                        "function": request.function,
                        "a": request.a, "b": request.b,
                        "result": result}))
            return
        for request, reply in members:
            if not reply.done():
                reply.set_result(error_envelope(
                    envelope.get("error_code", BAD_REQUEST),
                    envelope.get("message", "request failed"), request.id))

    # -- client handling -------------------------------------------------------
    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    payload: Any = json.loads(text)
                except ValueError as error:
                    response = error_envelope(BAD_REQUEST,
                                              f"invalid JSON: {error}", None)
                else:
                    response = await self._handle(payload)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()
                if response.get("shutdown"):
                    self._shutdown.set()
                    return
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return
        except asyncio.CancelledError:  # loop teardown with the client open
            return
        finally:
            writer.close()

    async def _handle(self, payload: Any) -> Dict[str, Any]:
        try:
            request = parse_request(payload)
        except ServiceError as error:
            return error_envelope(error.code, str(error),
                                  request_id_of(payload))
        except (KeyError, TypeError, ValueError) as error:
            return error_envelope(BAD_REQUEST,
                                  f"{type(error).__name__}: {error}",
                                  request_id_of(payload))
        if isinstance(request, PingRequest):
            return success_envelope(request.id, {"pong": True})
        if isinstance(request, ShutdownRequest):
            return success_envelope(request.id, {"shutdown": True})
        if isinstance(request, ModulesRequest):
            return await self._merged_modules(request)
        shard = self.pool.shard_of(request.routing_module())
        reply = self._loop.create_future()
        await self._queues[shard].put((request, payload, reply))
        return await reply

    async def _merged_modules(self, request: ModulesRequest) -> Dict[str, Any]:
        """Fan ``modules`` out to every shard; merge listings in name order."""
        jobs = [self._submit(shard, {"op": "modules", "v": 1})
                for shard in range(len(self._queues))]
        envelopes = await asyncio.gather(*jobs)
        merged: List[Dict[str, Any]] = []
        for envelope in envelopes:
            merged.extend(envelope.get("modules", []))
        merged.sort(key=lambda entry: entry["module"])
        return success_envelope(request.id, {"modules": merged})


async def _serve(options: argparse.Namespace) -> int:
    pool = WorkerPool(workers=options.workers, store_root=options.store)
    server = ServiceServer(pool, host=options.host, port=options.port)
    await server.start()
    print(f"repro analysis service on {server.host}:{server.port} "
          f"({options.workers} workers)", flush=True)
    try:
        await server.wait_shutdown()
    finally:
        await server.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.server",
        description="concurrent TCP analysis service over a sharded "
                    "worker pool")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks an ephemeral one)")
    parser.add_argument("--workers", type=int, default=2,
                        help="shared-nothing worker processes")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent content-addressed result store")
    options = parser.parse_args(argv)
    return asyncio.run(_serve(options))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main(sys.argv[1:]))
