"""The concurrent socket front end: asyncio TCP over the sharded pool.

One asyncio process accepts any number of clients speaking the same
line-delimited JSON protocol as the stdio daemon (one request object per
line, one response object per line; see :mod:`repro.service.protocol`).
Requests are parsed *here* — malformed ones are rejected with the standard
structured envelope without touching a worker — then routed by their
module to a shard of the shared-nothing :class:`~repro.service.pool.WorkerPool`
and answered out of that worker's resident session.  Responses are
correlated by the protocol's request ``id``, so any one connection may
pipeline freely.

Worker plumbing lives in :class:`~repro.service.supervisor.WorkerSupervisor`
(PR 10): it pumps response queues back onto the event loop, watches every
worker's process sentinel, and on a crash fails or transparently retries
the dead shard's in-flight jobs, respawns it, and replays its journal —
so no request ever hangs on a dead worker.

Fault envelopes the front end itself can produce:

* ``overloaded`` — admission control: at most ``max_inflight`` requests
  may be outstanding per shard; beyond that the request is shed
  immediately instead of queueing without bound (clients retry with
  backoff — see :class:`~repro.service.client.RetryPolicy`).
* ``deadline_exceeded`` — a request carrying ``timeout_ms`` is backstopped
  with a wall-clock timer here (``timeout_ms`` plus a grace for queueing
  and IPC), so even a *wedged* worker cannot stall the client past its
  deadline; cooperative worker-side deadlines are the common case
  (``protocol._apply_with_deadline``), the backstop is the guarantee.

Batching: each shard has a dispatcher coroutine that drains its queue in
rounds and *coalesces* the round's single ``query`` requests that target
the same ``(module, analysis, function)`` into one ``query_many`` job —
one IPC round-trip and one engine batch instead of N.  The dispatcher
waits for the whole round to be answered before draining again, which is
what gives concurrent clients a window to pile up coalescable queries.
Batched answers are split back into per-request envelopes (id echoed), and
because the persistent result store keys alias answers *per pair*, the
coalescing a particular traffic interleaving happens to produce never
changes what a warm store can answer later.  Requests carrying
``timeout_ms`` are never coalesced — their deadline is their own.

The front end answers ``ping`` itself, fans ``modules`` out to every shard
and merges the listings, and treats ``shutdown`` (or SIGTERM) as an
orderly stop of the whole server.  Everything else — including every error
a *valid* request produces — comes verbatim from a worker's
``handle_payload``, so socket answers are bit-identical to the in-process
session's.

Usage::

    python -m repro.service.server --port 7411 --workers 4 --store DIR
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
from typing import Any, Callable, Dict, List, Optional, Tuple

from .pool import WorkerPool
from .protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    OVERLOADED,
    ModulesRequest,
    PingRequest,
    QueryManyRequest,
    QueryRequest,
    Request,
    ServiceError,
    ShutdownRequest,
    error_envelope,
    parse_request,
    request_id_of,
    success_envelope,
)
from .supervisor import WorkerSupervisor

__all__ = ["ServiceServer", "main"]

#: Wall-clock slack added to ``timeout_ms`` before the front end backstops
#: a request: covers queueing, IPC and the worker's own grace to answer
#: ``deadline_exceeded`` cooperatively (the common, well-behaved case).
DEFAULT_DEADLINE_GRACE = 0.25


class ServiceServer:
    """The asyncio TCP front end over one supervised :class:`WorkerPool`."""

    def __init__(self, pool: WorkerPool, host: str = "127.0.0.1",
                 port: int = 0, max_inflight: Optional[int] = None,
                 deadline_grace: float = DEFAULT_DEADLINE_GRACE,
                 on_response: Optional[Callable[[int, Dict[str, Any]], None]]
                 = None):
        self.pool = pool
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        #: Per-shard admission bound (``None`` = unbounded, the pre-PR-10
        #: behaviour); beyond it requests are shed with ``overloaded``.
        self.max_inflight = max_inflight
        self.deadline_grace = deadline_grace
        self.supervisor = WorkerSupervisor(pool, on_response=on_response)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queues: List[asyncio.Queue] = []
        self._dispatchers: List[asyncio.Task] = []
        self._inflight: List[int] = []
        self._shutdown = asyncio.Event()
        self._stopped = False
        #: Telemetry: coalesced query rounds (observable from the loadtest).
        self.batches = 0
        self.batched_queries = 0
        #: Fault telemetry: requests shed with ``overloaded`` and deadlines
        #: enforced by the front-end backstop (vs cooperatively by workers).
        self.shed = 0
        self.backstops = 0

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.supervisor.start()
        for shard in range(self.pool.workers):
            self._queues.append(asyncio.Queue())
            self._inflight.append(0)
            self._dispatchers.append(
                asyncio.create_task(self._dispatch(shard)))
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self._requested_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_shutdown(self) -> None:
        """Block until ``shutdown`` arrives, SIGTERM fires, or :meth:`stop`."""
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        """Signal-safe orderly-shutdown trigger (SIGTERM/SIGINT handler)."""
        self._shutdown.set()

    async def stop(self) -> None:
        """Orderly stop: close the listener, then let the supervisor drain
        workers, join pumps, and settle any still-in-flight job."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._dispatchers:
            task.cancel()
        await self.supervisor.stop()
        self._shutdown.set()

    def fault_stats(self) -> Dict[str, Any]:
        """Supervision/backpressure counters (chaos harness + loadtest)."""
        stats = self.supervisor.stats.as_dict()
        stats["shed"] = self.shed
        stats["backstops"] = self.backstops
        return stats

    # -- dispatch + batching ---------------------------------------------------
    async def _dispatch(self, shard: int) -> None:
        """One shard's round loop: drain, coalesce, submit, await the round.

        Awaiting the whole round before the next drain is deliberate — it
        is the window during which concurrent clients' queries accumulate
        into the next coalescable batch.
        """
        queue = self._queues[shard]
        supervisor = self.supervisor
        while True:
            batch: List[Tuple[Request, Dict[str, Any], asyncio.Future]] = \
                [await queue.get()]
            while not queue.empty():
                batch.append(queue.get_nowait())
            round_jobs = []
            groups: Dict[Tuple[str, str, str],
                         List[Tuple[QueryRequest, asyncio.Future]]] = {}
            for request, payload, reply in batch:
                if isinstance(request, QueryRequest) \
                        and request.timeout_ms is None:
                    key = (request.module, request.analysis, request.function)
                    groups.setdefault(key, []).append((request, reply))
                else:
                    job = await supervisor.submit(
                        shard, payload, mutating=request.mutating,
                        request_id=request.id)
                    round_jobs.append(self._deliver(job, reply))
            for key, members in groups.items():
                if len(members) == 1:
                    request, reply = members[0]
                    job = await supervisor.submit(
                        shard, request.to_payload(), request_id=request.id)
                    round_jobs.append(self._deliver(job, reply))
                    continue
                module, analysis, function = key
                combined = QueryManyRequest(
                    module=module, analysis=analysis, function=function,
                    pairs=[(r.a, r.b, r.size_a, r.size_b)
                           for r, _ in members])
                self.batches += 1
                self.batched_queries += len(members)
                job = await supervisor.submit(shard, combined.to_payload())
                round_jobs.append(self._deliver_split(job, members))
            await asyncio.gather(*round_jobs)

    @staticmethod
    async def _deliver(job: asyncio.Future, reply: asyncio.Future) -> None:
        """Forward one job envelope to its reply, unless the reply already
        terminated (deadline backstop) — then the round moves on and the
        worker's late answer is consumed silently by the supervisor."""
        await asyncio.wait({job, reply}, return_when=asyncio.FIRST_COMPLETED)
        if reply.done():
            return
        envelope = await job
        if not reply.done():
            reply.set_result(envelope)

    @staticmethod
    async def _deliver_split(job: asyncio.Future,
                             members: List[Tuple[QueryRequest,
                                                 asyncio.Future]]) -> None:
        """Split one coalesced ``query_many`` answer into per-query envelopes.

        The reconstructed envelopes are field-for-field what the worker
        would have produced for the individual ``query`` — including, on
        failure, the error message (module- and analysis-level errors are
        uniform across a coalesced group, which is the only way a group
        can fail: membership requires identical module/analysis/function).
        """
        envelope = await job
        if envelope.get("ok"):
            results = envelope.get("results", [])
            for (request, reply), result in zip(members, results):
                if not reply.done():
                    reply.set_result(success_envelope(request.id, {
                        "module": request.module,
                        "analysis": request.analysis,
                        "function": request.function,
                        "a": request.a, "b": request.b,
                        "result": result}))
            return
        for request, reply in members:
            if not reply.done():
                reply.set_result(error_envelope(
                    envelope.get("error_code", BAD_REQUEST),
                    envelope.get("message", "request failed"), request.id))

    # -- client handling -------------------------------------------------------
    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    payload: Any = json.loads(text)
                except ValueError as error:
                    response = error_envelope(BAD_REQUEST,
                                              f"invalid JSON: {error}", None)
                else:
                    response = await self._handle(payload)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()
                if response.get("shutdown"):
                    self._shutdown.set()
                    return
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return
        except asyncio.CancelledError:  # loop teardown with the client open
            return
        finally:
            writer.close()

    async def _handle(self, payload: Any) -> Dict[str, Any]:
        try:
            request = parse_request(payload)
        except ServiceError as error:
            return error_envelope(error.code, str(error),
                                  request_id_of(payload))
        except (KeyError, TypeError, ValueError) as error:
            return error_envelope(BAD_REQUEST,
                                  f"{type(error).__name__}: {error}",
                                  request_id_of(payload))
        if isinstance(request, PingRequest):
            return success_envelope(request.id, {"pong": True})
        if isinstance(request, ShutdownRequest):
            return success_envelope(request.id, {"shutdown": True})
        if isinstance(request, ModulesRequest):
            return await self._merged_modules(request)
        shard = self.pool.shard_of(request.routing_module())
        if self.max_inflight is not None \
                and self._inflight[shard] >= self.max_inflight:
            self.shed += 1
            return error_envelope(
                OVERLOADED,
                f"shard {shard} at max in-flight ({self.max_inflight}); "
                f"retry with backoff", request.id)
        reply = self._loop.create_future()
        self._inflight[shard] += 1
        reply.add_done_callback(
            lambda _, s=shard: self._admit_release(s))
        if request.timeout_ms is not None:
            self._arm_backstop(request, reply)
        await self._queues[shard].put((request, payload, reply))
        return await reply

    def _admit_release(self, shard: int) -> None:
        self._inflight[shard] -= 1

    def _arm_backstop(self, request: Request, reply: asyncio.Future) -> None:
        """The front end's wall-clock deadline: fires even if the worker is
        wedged (the cooperative worker-side deadline is the common case)."""
        def backstop() -> None:
            if not reply.done():
                self.backstops += 1
                reply.set_result(error_envelope(
                    DEADLINE_EXCEEDED,
                    f"deadline of {request.timeout_ms} ms exceeded "
                    f"(front-end wall-clock backstop)", request.id))

        handle = self._loop.call_later(
            request.timeout_ms / 1000.0 + self.deadline_grace, backstop)
        reply.add_done_callback(lambda _: handle.cancel())

    async def _merged_modules(self, request: ModulesRequest) -> Dict[str, Any]:
        """Fan ``modules`` out to every shard; merge listings in name order."""
        jobs = [await self.supervisor.submit(shard, {"op": "modules", "v": 1})
                for shard in range(len(self._queues))]
        envelopes = await asyncio.gather(*jobs)
        merged: List[Dict[str, Any]] = []
        for envelope in envelopes:
            merged.extend(envelope.get("modules", []))
        merged.sort(key=lambda entry: entry["module"])
        return success_envelope(request.id, {"modules": merged})


async def _serve(options: argparse.Namespace) -> int:
    pool = WorkerPool(workers=options.workers, store_root=options.store)
    server = ServiceServer(pool, host=options.host, port=options.port,
                           max_inflight=options.max_inflight)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without loop signal handlers
    print(f"repro analysis service on {server.host}:{server.port} "
          f"({options.workers} workers)", flush=True)
    try:
        await server.wait_shutdown()
    finally:
        await server.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.server",
        description="concurrent TCP analysis service over a sharded "
                    "worker pool")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks an ephemeral one)")
    parser.add_argument("--workers", type=int, default=2,
                        help="shared-nothing worker processes")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent content-addressed result store")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="per-shard admission bound; beyond it requests "
                             "are shed with error_code 'overloaded'")
    options = parser.parse_args(argv)
    return asyncio.run(_serve(options))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main(sys.argv[1:]))
