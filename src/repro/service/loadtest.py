"""Closed-loop multi-client loadtest of the socket serving layer.

``python -m repro.service.loadtest`` drives the asyncio TCP front end
(:mod:`repro.service.server`) with N concurrent closed-loop clients over a
deterministic, seeded request script, and writes ``BENCH_service.json``
with throughput and p50/p95/p99 latency.  Wall-time numbers are reported,
never gated (their keys carry the ``_seconds``/``_per_second`` suffixes
:func:`repro.evaluation.parallel.strip_volatile` removes); what *is* gated
is correctness:

* **Answer identity** — every response (loads, queries, ranges, value
  listings, sweeps, and the scripted error requests) must be bit-identical
  to what a serial in-process :class:`~repro.service.session.AnalysisSession`
  produces for the same payload, at any worker/client count and under the
  front end's query coalescing.
* **Stats identity** (storeless run) — the deterministic subset of each
  module's ``stats`` record (solver steps, Figure-14 counters, query-memo
  counters, engine build/invalidation counts) must equal the serial
  session's.  Engine get-level hit counters are excluded — they depend on
  how traffic happened to batch — as are the process-global symbolic
  caches and the store's operational counters.
* **Warm store** — the run is repeated against one persistent
  content-addressed store (:mod:`repro.service.store`) twice, with a full
  server restart in between.  On the second (warm) run every store view
  must show zero misses and a positive hit count, and every module must
  finish the run unmaterialised with ``solver_steps == 0`` — i.e. the
  restarted server answered everything, starting with its first query,
  without re-running the compile-and-bootstrap path.

The three runs (``direct`` → ``cold`` → ``warm``) replay the *same*
scripts, generated from :func:`repro.benchgen.stable_seed`, so the record
is reproducible end to end.

Usage::

    python -m repro.service.loadtest --quick --workers 2 --clients 4 \
        --store .service-store --out BENCH_service.json --check
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import random
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..benchgen import build_program, digest_index, stable_seed
from ..benchgen.manifest import GENERATOR_VERSION
from ..evaluation.reporting import to_canonical_json
from .chaos import (
    VICTIM_REQUEST_ID,
    ChaosController,
    corrupt_store_entries,
    generate_plan,
)
from .client import InProcessClient, RetryPolicy
from .pool import WorkerPool
from .protocol import (
    DEADLINE_EXCEEDED,
    PROTOCOL_VERSION,
    RETRYABLE_ERROR_CODES,
    handle_payload,
    make_request,
)
from .server import ServiceServer
from .session import AnalysisSession
from .store import RESULT_SCHEMA_VERSION

__all__ = ["DEFAULT_PROGRAMS", "run_loadtest", "run_chaos_loadtest", "main"]

#: The quick-corpus programs (the service bench uses the same four).
DEFAULT_PROGRAMS = ("allroots", "fixoutput", "anagram", "ft")

#: Analyses the scripted queries exercise.
SCRIPT_ANALYSES = ("rbaa", "basic")

#: Non-default access-size spellings the scripts mix in.
_SIZE_CHOICES = (None, 1, 4, 8, "default")


@dataclass
class _Function:
    name: str
    pointers: List[str]
    int_args: List[str]


@dataclass
class _Program:
    name: str
    source: str
    functions: List[_Function]

    @property
    def query_functions(self) -> List[_Function]:
        return [fn for fn in self.functions if len(fn.pointers) >= 2]

    @property
    def range_functions(self) -> List[_Function]:
        return [fn for fn in self.functions if fn.int_args]


def build_corpus(programs: Sequence[str]) -> List[_Program]:
    """Generate the corpus and scout its queryable names (a helper client
    compiles each program once so scripts can address real SSA values)."""
    scout = InProcessClient()
    corpus: List[_Program] = []
    for name in programs:
        source = build_program(name).source
        loaded = scout.load(name, source)
        functions = []
        for fn_name in loaded.functions:
            values = scout.values(name, fn_name).values
            functions.append(_Function(
                name=fn_name,
                pointers=[v["name"] for v in values if v["pointer"]],
                int_args=[v["name"] for v in values
                          if v["op"] == "argument" and not v["pointer"]]))
        corpus.append(_Program(name=name, source=source, functions=functions))
    usable = [program for program in corpus if program.query_functions]
    dropped = sorted(set(p.name for p in corpus) - set(p.name for p in usable))
    if dropped:  # no silent shrinking of the corpus
        print(f"loadtest: dropping {dropped} (no function with 2+ pointers)",
              file=sys.stderr)
    return usable


def _query_fields(rng: random.Random, program: _Program) -> Dict[str, Any]:
    fn = rng.choice(program.query_functions)
    a, b = rng.sample(fn.pointers, 2)
    fields: Dict[str, Any] = {"module": program.name,
                              "analysis": rng.choice(SCRIPT_ANALYSES),
                              "function": fn.name, "a": a, "b": b}
    if rng.random() < 0.4:
        for key in ("size_a", "size_b"):
            size = rng.choice(_SIZE_CHOICES)
            if size != "default":
                fields[key] = size
    return fields


def _error_request(rng: random.Random, program: _Program,
                   request_id: str) -> Dict[str, Any]:
    """A scripted failure: deterministic envelopes are identity-gated too.

    Only error shapes that fail *before* any store access are scripted
    (unknown op/module/analysis, bad size, bad version) — an unknown value
    name would force a warm-store worker to materialise the module just to
    discover the name is bad, defeating the warm-run laziness gate.
    """
    fn = program.query_functions[0]
    kind = rng.randrange(5)
    if kind == 0:
        return make_request("frobnicate", id=request_id)
    if kind == 1:
        return make_request("query", id=request_id, module="ghost",
                            analysis="rbaa", function=fn.name,
                            a=fn.pointers[0], b=fn.pointers[1])
    if kind == 2:
        return make_request("query", id=request_id, module=program.name,
                            analysis="voodoo", function=fn.name,
                            a=fn.pointers[0], b=fn.pointers[1])
    if kind == 3:
        return make_request("query", id=request_id, module=program.name,
                            analysis="rbaa", function=fn.name,
                            a=fn.pointers[0], b=fn.pointers[1], size_a=-3)
    payload = make_request("query", id=request_id, module=program.name,
                           analysis="rbaa", function=fn.name,
                           a=fn.pointers[0], b=fn.pointers[1])
    payload["v"] = 99  # rejected with protocol_mismatch
    return payload


def client_script(index: int, corpus: Sequence[_Program],
                  requests: int) -> List[Dict[str, Any]]:
    """The deterministic request script of one closed-loop client."""
    rng = random.Random(stable_seed(f"service/loadtest/client/{index}"))
    script: List[Dict[str, Any]] = []
    for n in range(requests):
        request_id = f"c{index}.{n}"
        program = corpus[rng.randrange(len(corpus))]
        roll = rng.random()
        if roll < 0.60:
            script.append(make_request("query", id=request_id,
                                       **_query_fields(rng, program)))
        elif roll < 0.72:
            fn = rng.choice(program.query_functions)
            pairs = []
            for _ in range(rng.randint(2, 5)):
                a, b = rng.sample(fn.pointers, 2)
                if rng.random() < 0.3:
                    pairs.append([a, b, rng.choice(_SIZE_CHOICES),
                                  rng.choice(_SIZE_CHOICES)])
                else:
                    pairs.append([a, b])
            script.append(make_request(
                "query_many", id=request_id, module=program.name,
                analysis=rng.choice(SCRIPT_ANALYSES),
                function=fn.name, pairs=pairs))
        elif roll < 0.80:
            fn = rng.choice(program.functions)
            script.append(make_request("values", id=request_id,
                                       module=program.name, function=fn.name))
        elif roll < 0.86 and program.range_functions:
            fn = rng.choice(program.range_functions)
            script.append(make_request(
                "range", id=request_id, module=program.name,
                function=fn.name, value=rng.choice(fn.int_args)))
        elif roll < 0.94:
            fn = rng.choice(program.functions)
            script.append(make_request(
                "query_function", id=request_id, module=program.name,
                analysis="rbaa", function=fn.name, max_pairs=40))
        else:
            script.append(_error_request(rng, program, request_id))
    return script


def _load_payloads(corpus: Sequence[_Program]) -> List[Dict[str, Any]]:
    return [make_request("load", id=f"load.{program.name}",
                         name=program.name, source=program.source)
            for program in corpus]


def _stats_payloads(corpus: Sequence[_Program]) -> List[Dict[str, Any]]:
    return [make_request("stats", id=f"stats.{program.name}",
                         module=program.name) for program in corpus]


# -- serial oracle -------------------------------------------------------------

def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def serial_expectations(corpus: Sequence[_Program],
                        scripts: Sequence[Sequence[Dict[str, Any]]],
                        ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Replay every payload through one in-process session.

    Returns ``(expected_by_id, serial_stats_by_module)`` — the oracle the
    socket runs are gated against.  Responses are pure per-module
    functions of the (multiset of) requests, so the serial replay order
    does not have to match any particular socket interleaving.
    """
    session = AnalysisSession()
    expected: Dict[str, Any] = {}
    for payload in _load_payloads(corpus):
        expected[payload["id"]] = handle_payload(session, payload)
    for script in scripts:
        for payload in script:
            expected[payload["id"]] = handle_payload(session, payload)
    stats = {program.name: session.stats(program.name) for program in corpus}
    return expected, stats


def stats_gate_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic, interleaving-independent subset of one ``stats``.

    Excluded on purpose: engine get-level hits/misses (they count cache
    *lookups*, whose number depends on how the front end batched),
    ``symbolic_caches`` (process-global), and ``store`` (operational).
    """
    engine = record.get("engine", {})
    view: Dict[str, Any] = {
        "module": record.get("module"),
        "edits": record.get("edits"),
        "solver_steps": record.get("solver_steps"),
        "engine_builds": engine.get("builds"),
        "engine_invalidations": engine.get("invalidations"),
        "engine_refreshes": engine.get("refreshes"),
        "memos": record.get("memos"),
    }
    for key in ("figure14", "rbaa_outcome_memo"):
        if key in record:
            view[key] = record[key]
    return view


# -- one socket run ------------------------------------------------------------

@dataclass
class RunResult:
    transcript: List[Tuple[str, Any]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    wall: float = 0.0
    batches: int = 0
    batched_queries: int = 0


async def _send(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                payload: Dict[str, Any]) -> Any:
    writer.write((json.dumps(payload, sort_keys=True) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


async def _run_client(host: str, port: int, script: Sequence[Dict[str, Any]],
                      result: RunResult) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for payload in script:
            started = time.perf_counter()
            response = await _send(reader, writer, payload)
            result.latencies.append(time.perf_counter() - started)
            result.transcript.append((payload["id"], response))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _run_server_once(corpus: Sequence[_Program],
                           scripts: Sequence[Sequence[Dict[str, Any]]],
                           workers: int,
                           store_root: Optional[str]) -> RunResult:
    pool = WorkerPool(workers=workers, store_root=store_root)
    pool.assign([program.name for program in corpus])
    server = ServiceServer(pool)
    await server.start()
    result = RunResult()
    try:
        reader, writer = await asyncio.open_connection(server.host, server.port)
        for payload in _load_payloads(corpus):
            result.transcript.append(
                (payload["id"], await _send(reader, writer, payload)))
        started = time.perf_counter()
        await asyncio.gather(*[
            _run_client(server.host, server.port, script, result)
            for script in scripts])
        result.wall = time.perf_counter() - started
        for payload in _stats_payloads(corpus):
            result.stats[payload["module"]] = \
                await _send(reader, writer, payload)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    finally:
        await server.stop()
    result.batches = server.batches
    result.batched_queries = server.batched_queries
    return result


def run_once(corpus: Sequence[_Program],
             scripts: Sequence[Sequence[Dict[str, Any]]],
             workers: int, store_root: Optional[str]) -> RunResult:
    return asyncio.run(_run_server_once(corpus, scripts, workers, store_root))


# -- gating + reporting --------------------------------------------------------

def check_identity(result: RunResult,
                   expected: Dict[str, Any]) -> Dict[str, Any]:
    mismatches: List[Dict[str, Any]] = []
    for request_id, actual in result.transcript:
        want = expected.get(request_id)
        if _canonical(want) != _canonical(actual):
            mismatches.append({"id": request_id, "expected": want,
                               "actual": actual})
    return {"checked": len(result.transcript),
            "mismatches": len(mismatches),
            "first_mismatches": mismatches[:3]}


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1,
                       math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def _latency_report(result: RunResult) -> Dict[str, Any]:
    ordered = sorted(result.latencies)
    count = len(ordered)
    return {
        "requests": count,
        "wall_seconds": result.wall,
        "throughput_per_second": (count / result.wall) if result.wall else 0.0,
        "latency_p50_seconds": _percentile(ordered, 0.50),
        "latency_p95_seconds": _percentile(ordered, 0.95),
        "latency_p99_seconds": _percentile(ordered, 0.99),
        "latency_mean_seconds": (sum(ordered) / count) if count else 0.0,
        "latency_max_seconds": ordered[-1] if ordered else 0.0,
    }


def _store_views(result: RunResult) -> Dict[str, Dict[str, int]]:
    """Per-module snapshots of the (per-worker) store counters.

    Modules sharing a worker report the same underlying store object, so
    sums double-count — the gates only use zero/non-zero facts, which
    double counting cannot distort.
    """
    views: Dict[str, Dict[str, int]] = {}
    for module, envelope in sorted(result.stats.items()):
        store = envelope.get("store")
        if store:
            views[module] = {key: store[key] for key in
                             ("hits", "misses", "bypasses",
                              "corrupt_entries", "writes")}
    return views


def _run_report(result: RunResult, identity: Dict[str, Any],
                store_runs: bool) -> Dict[str, Any]:
    report = _latency_report(result)
    report["identity"] = identity
    report["coalesced_batches"] = result.batches
    report["coalesced_queries"] = result.batched_queries
    report["solver_steps_total"] = sum(
        envelope.get("solver_steps", 0) for envelope in result.stats.values())
    report["materialized_modules"] = sorted(
        module for module, envelope in result.stats.items()
        if envelope.get("materialized"))
    if store_runs:
        report["store_by_module"] = _store_views(result)
    return report


def run_loadtest(programs: Sequence[str], workers: int, clients: int,
                 requests: int, store_root: Optional[str]) -> Dict[str, Any]:
    """The full three-run loadtest; returns the ``BENCH_service`` record."""
    corpus = build_corpus(programs)
    if not corpus:
        raise SystemExit("loadtest: empty corpus")
    scripts = [client_script(index, corpus, requests)
               for index in range(clients)]
    expected, serial_stats = serial_expectations(corpus, scripts)

    cleanup_store = store_root is None
    if store_root is None:
        store_root = tempfile.mkdtemp(prefix="repro-service-store-")
    try:
        direct = run_once(corpus, scripts, workers, None)
        cold = run_once(corpus, scripts, workers, store_root)
        # A brand-new server (fresh pool, fresh sessions) on the same
        # store: the restart the warm gates are about.
        warm = run_once(corpus, scripts, workers, store_root)
    finally:
        if cleanup_store:
            shutil.rmtree(store_root, ignore_errors=True)

    identities = {name: check_identity(result, expected)
                  for name, result in
                  (("direct", direct), ("cold", cold), ("warm", warm))}
    stats_mismatches = []
    for module, serial_record in serial_stats.items():
        socket_view = stats_gate_view(direct.stats.get(module, {}))
        serial_view = stats_gate_view(serial_record)
        if _canonical(socket_view) != _canonical(serial_view):
            stats_mismatches.append({"module": module,
                                     "serial": serial_view,
                                     "socket": socket_view})

    warm_views = _store_views(warm)
    gates = {
        "answer_identity": all(report["mismatches"] == 0
                               for report in identities.values()),
        "stats_subset_identity": not stats_mismatches,
        "warm_store_hit_floor": bool(warm_views) and all(
            view["misses"] == 0 and view["corrupt_entries"] == 0
            for view in warm_views.values()) and any(
            view["hits"] > 0 for view in warm_views.values()),
        "warm_no_bootstrap": bool(warm.stats) and all(
            envelope.get("solver_steps") == 0
            and not envelope.get("materialized")
            for envelope in warm.stats.values()),
    }

    record: Dict[str, Any] = {
        "schema": 1,
        "protocol_version": PROTOCOL_VERSION,
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "generator_version": GENERATOR_VERSION,
        "config": {
            "programs": [program.name for program in corpus],
            "workers": workers,
            "clients": clients,
            "requests_per_client": requests,
        },
        "corpus": {name: digest for name, digest in
                   sorted(digest_index([p.name for p in corpus]).items())},
        "runs": {
            "direct": _run_report(direct, identities["direct"], False),
            "cold": _run_report(cold, identities["cold"], True),
            "warm": _run_report(warm, identities["warm"], True),
        },
        "stats_gate": {"modules": sorted(serial_stats),
                       "mismatches": stats_mismatches[:3],
                       "mismatch_count": len(stats_mismatches)},
        "gates": gates,
        # Everything under "run" is volatile; strip_volatile drops the key.
        "run": {"started_unix": time.time()},
    }
    return record


# -- chaos mode ----------------------------------------------------------------
#
# ``--chaos`` replaces the three-run loadtest with a two-run fault drill:
# a *prime* run warms the persistent store with every payload the chaos run
# will send, then store entries are corrupted per the fault plan, and the
# *chaos* run replays the same client traffic against a server configured
# with admission control and a deterministic fault schedule (worker kill,
# injected worker latency, truncated client lines) while probing deadlines
# and overload on the side.  Gates: every request terminates with a
# structured envelope, post-fault answers are identical to the serial
# session, the respawned shard stays warm (zero bootstrap solver steps),
# and ``deadline_exceeded`` / ``overloaded`` are observed and recovered.

#: Admission bound of the chaos server (small on purpose: the overload
#: burst must provably exceed it while the victim wedge holds).
CHAOS_MAX_INFLIGHT = 8

#: Front-end backstop grace in the chaos run: generous enough that a
#: healthy worker always answers a ``timeout_ms=0`` probe cooperatively,
#: small enough that the wedged victim (2.5 s sleep) is backstopped.
CHAOS_DEADLINE_GRACE = 1.0

#: Connections in the overload burst (> ``CHAOS_MAX_INFLIGHT``).
CHAOS_BURST = 24

#: ``timeout_ms`` of the latency victim — far below the injected sleep.
CHAOS_VICTIM_TIMEOUT_MS = 150


@dataclass
class ChaosRunResult:
    transcript: List[Tuple[str, Any]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    wall: float = 0.0
    hangs: List[str] = field(default_factory=list)
    truncated_resends: int = 0
    victim_response: Optional[Dict[str, Any]] = None
    probe_responses: List[Dict[str, Any]] = field(default_factory=list)
    burst_final_ok: int = 0
    fault_stats: Dict[str, Any] = field(default_factory=dict)
    controller_responses: Dict[int, int] = field(default_factory=dict)
    kills_fired: Dict[int, int] = field(default_factory=dict)


def _first_query_fields(program: _Program) -> Dict[str, Any]:
    """A deterministic canonical query for one program (probe traffic)."""
    fn = program.query_functions[0]
    return {"module": program.name, "analysis": "rbaa", "function": fn.name,
            "a": fn.pointers[0], "b": fn.pointers[1]}


def _chaos_probe_payloads(corpus: Sequence[_Program], plan: Any,
                          ) -> Dict[str, List[Dict[str, Any]]]:
    """Every side-channel payload of the chaos run, plus prime-phase
    copies (same fields, ``prime.*`` ids) so the store is warm for all of
    them — a cold probe would materialise modules mid-drill and invalidate
    the zero-bootstrap gate."""
    by_name = {program.name: program for program in corpus}
    victim_fields = _first_query_fields(by_name[plan.victim_module])
    payloads: Dict[str, List[Dict[str, Any]]] = {
        "victim": [make_request("query", id=VICTIM_REQUEST_ID,
                                timeout_ms=CHAOS_VICTIM_TIMEOUT_MS,
                                **victim_fields)],
        "burst": [make_request("query", id=f"chaos.burst.{index}",
                               **victim_fields)
                  for index in range(CHAOS_BURST)],
        "deadline": [make_request("query", id=f"chaos.deadline.{index}",
                                  timeout_ms=0, **victim_fields)
                     for index in range(2)],
        "postkill": [make_request("query", id=f"chaos.postkill.{module}",
                                  **_first_query_fields(by_name[module]))
                     for module in plan.killed_modules
                     if module in by_name][:2],
    }
    payloads["prime"] = [make_request("query", id=f"prime.probe.{index}",
                                      **victim_fields)
                         for index in range(1)] + [
        make_request("query", id=f"prime.postkill.{module}",
                     **_first_query_fields(by_name[module]))
        for module in plan.killed_modules if module in by_name][:3]
    return payloads


async def _chaos_send(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter,
                      payload: Dict[str, Any], policy: RetryPolicy,
                      result: ChaosRunResult) -> Optional[Dict[str, Any]]:
    """``_send`` plus transient-fault retries and a hang watchdog.

    Retries exactly ``RETRYABLE_ERROR_CODES`` with the policy's seeded
    backoff; a 30 s silence is recorded as a hang (the terminal-answer
    gate then fails — the chaos contract is that this never happens).
    """
    attempt = 0
    while True:
        try:
            response = await asyncio.wait_for(
                _send(reader, writer, payload), timeout=30.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            result.hangs.append(payload.get("id"))
            return None
        code = response.get("error_code") \
            if isinstance(response, dict) else None
        if code not in RETRYABLE_ERROR_CODES:
            return response
        if attempt >= policy.attempts:
            policy.exhausted += 1
            return response
        policy.note(code)
        await asyncio.sleep(policy.delay_seconds(attempt))
        attempt += 1


async def _run_chaos_client(host: str, port: int, index: int,
                            script: Sequence[Dict[str, Any]], plan: Any,
                            policy: RetryPolicy,
                            result: ChaosRunResult) -> None:
    """One closed-loop chaos client; may be scripted to truncate a line.

    At its plan ordinal the client writes *half* a request with no
    newline, drops the connection ungracefully, reconnects, and resends
    the full request — the server must treat the torn half-line as that
    connection's problem alone.
    """
    reader, writer = await asyncio.open_connection(host, port)
    truncate_at = plan.truncate_clients.get(index)
    try:
        for ordinal, payload in enumerate(script):
            if ordinal == truncate_at:
                line = json.dumps(payload, sort_keys=True)
                writer.write(line[:max(1, len(line) // 2)].encode())
                await writer.drain()
                writer.close()
                reader, writer = await asyncio.open_connection(host, port)
                result.truncated_resends += 1
            started = time.perf_counter()
            response = await _chaos_send(reader, writer, payload, policy,
                                         result)
            if response is None:
                reader, writer = await asyncio.open_connection(host, port)
                continue
            result.latencies.append(time.perf_counter() - started)
            result.transcript.append((payload["id"], response))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _burst_one(host: str, port: int, payload: Dict[str, Any],
                     policy: RetryPolicy, result: ChaosRunResult) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        response = await _chaos_send(reader, writer, payload, policy, result)
        if response is not None:
            result.transcript.append((payload["id"], response))
            if response.get("ok"):
                result.burst_final_ok += 1
    finally:
        writer.close()


async def _run_chaos_server(corpus: Sequence[_Program],
                            scripts: Sequence[Sequence[Dict[str, Any]]],
                            workers: int, store_root: str, plan: Any,
                            probes: Dict[str, List[Dict[str, Any]]],
                            ) -> ChaosRunResult:
    pool = WorkerPool(workers=workers, store_root=store_root,
                      chaos=dict(plan.latency))
    pool.assign([program.name for program in corpus])
    controller = ChaosController(pool, plan)
    server = ServiceServer(pool, max_inflight=CHAOS_MAX_INFLIGHT,
                           deadline_grace=CHAOS_DEADLINE_GRACE,
                           on_response=controller.on_response)
    await server.start()
    result = ChaosRunResult()
    policy = RetryPolicy(attempts=8, base_ms=50.0,
                         seed=f"service/chaos/retry/{plan.seed}")
    try:
        # Phase 1: loads on a primer connection (journaled once acked).
        reader, writer = await asyncio.open_connection(server.host,
                                                       server.port)
        for payload in _load_payloads(corpus):
            response = await _chaos_send(reader, writer, payload, policy,
                                         result)
            if response is not None:
                result.transcript.append((payload["id"], response))
        # Phase 2: concurrent scripted clients; the plan's kill fires
        # mid-traffic (its threshold sits past the shard's load acks).
        started = time.perf_counter()
        await asyncio.gather(*[
            _run_chaos_client(server.host, server.port, index, script,
                              plan, policy, result)
            for index, script in enumerate(scripts)])
        result.wall = time.perf_counter() - started
        # Phase 3a: wedge the victim shard; the front-end backstop must
        # answer the victim long before the injected sleep releases.
        victim_reader, victim_writer = await asyncio.open_connection(
            server.host, server.port)
        victim_task = asyncio.create_task(asyncio.wait_for(
            _send(victim_reader, victim_writer, probes["victim"][0]),
            timeout=30.0))
        await asyncio.sleep(0.3)  # let the victim reach the worker
        # Phase 3b: overload burst against the wedged shard — admissions
        # beyond max_inflight are shed with ``overloaded``; the burst
        # clients then retry with backoff until the wedge clears.
        await asyncio.gather(*[
            _burst_one(server.host, server.port, payload, policy, result)
            for payload in probes["burst"]])
        try:
            result.victim_response = await victim_task
        except asyncio.TimeoutError:  # pragma: no cover - gate will fail
            result.hangs.append(VICTIM_REQUEST_ID)
        victim_writer.close()
        # Phase 3c: cooperative deadlines on a healthy connection (the
        # wedge has drained by now — the burst completed through it).
        for payload in probes["deadline"]:
            response = await _chaos_send(reader, writer, payload, policy,
                                         result)
            if response is not None:
                result.probe_responses.append(response)
                result.transcript.append((payload["id"], response))
        # Phase 3d: post-failover answers from the respawned shard.
        for payload in probes["postkill"]:
            response = await _chaos_send(reader, writer, payload, policy,
                                         result)
            if response is not None:
                result.transcript.append((payload["id"], response))
        # Phase 4: per-module stats (zero-bootstrap + corruption gates).
        for payload in _stats_payloads(corpus):
            response = await _chaos_send(reader, writer, payload, policy,
                                         result)
            if response is not None:
                result.stats[payload["module"]] = response
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    finally:
        await server.stop()
    result.fault_stats = server.fault_stats()
    result.fault_stats["client_retries"] = policy.stats()
    result.controller_responses = dict(controller.responses)
    result.kills_fired = dict(controller.kills_fired)
    return result


def _chaos_gates(plan: Any, result: ChaosRunResult,
                 identity: Dict[str, Any],
                 corrupted: List[str]) -> Dict[str, bool]:
    killed_stats = [result.stats.get(module, {})
                    for module in plan.killed_modules]
    store_views = _store_views(result)
    retries = result.fault_stats.get("client_retries", {})
    return {
        "terminal_answers": not result.hangs and all(
            isinstance(response, dict) and "ok" in response
            for _, response in result.transcript),
        "answer_identity_after_faults": identity["mismatches"] == 0,
        "respawn_matches_kills": bool(plan.kills)
        and result.fault_stats.get("respawns") == len(plan.kills)
        and set(result.kills_fired) == set(plan.kills),
        "failover_warm_zero_bootstrap": bool(killed_stats) and all(
            record.get("solver_steps") == 0
            and not record.get("materialized")
            for record in killed_stats),
        "deadline_cooperative": bool(result.probe_responses) and all(
            response.get("error_code") == DEADLINE_EXCEEDED
            for response in result.probe_responses),
        "deadline_backstop": result.victim_response is not None
        and result.victim_response.get("error_code") == DEADLINE_EXCEEDED
        and result.fault_stats.get("backstops", 0) >= 1,
        "overload_shed_and_recovered":
            result.fault_stats.get("shed", 0) >= 1
            and retries.get("retries_by_code", {}).get("overloaded", 0) >= 1
            and result.burst_final_ok == CHAOS_BURST,
        "store_corruption_survived": not plan.corrupt_modules or (
            len(corrupted) == len(plan.corrupt_modules) and any(
                view.get("corrupt_entries", 0) > 0
                for view in store_views.values())),
        "truncation_isolated":
            result.truncated_resends == len(plan.truncate_clients),
    }


def run_chaos_loadtest(programs: Sequence[str], workers: int, clients: int,
                       requests: int, store_root: Optional[str],
                       seed: int) -> Dict[str, Any]:
    """The seeded fault drill; returns the ``BENCH_chaos`` record."""
    corpus = build_corpus(programs)
    if not corpus:
        raise SystemExit("loadtest: empty corpus")
    scripts = [client_script(index, corpus, requests)
               for index in range(clients)]
    placement = WorkerPool(workers=workers).assign(
        [program.name for program in corpus])
    plan = generate_plan(seed, placement, clients)
    probes = _chaos_probe_payloads(corpus, plan)

    # The serial oracle covers everything identity-gated: client scripts,
    # prime-phase probe copies, and the chaos probes — except the latency
    # victim, whose outcome is (by design) the wall-clock backstop.
    oracle_scripts = list(scripts) + [
        probes["prime"], probes["burst"], probes["deadline"],
        probes["postkill"]]
    expected, _ = serial_expectations(corpus, oracle_scripts)

    cleanup_store = store_root is None
    if store_root is None:
        store_root = tempfile.mkdtemp(prefix="repro-chaos-store-")
    try:
        # Prime run: a fault-free pass that warms the store with every
        # payload (scripts + probe shapes) the chaos run will send.
        prime = run_once(corpus, list(scripts) + [probes["prime"]],
                         workers, store_root)
        prime_identity = check_identity(prime, expected)
        corrupted = corrupt_store_entries(
            store_root, digest_index([p.name for p in corpus]),
            plan.corrupt_modules)
        chaos = asyncio.run(_run_chaos_server(
            corpus, scripts, workers, store_root, plan, probes))
    finally:
        if cleanup_store:
            shutil.rmtree(store_root, ignore_errors=True)

    chaos_identity = check_identity(chaos, expected)
    gates = _chaos_gates(plan, chaos, chaos_identity, corrupted)
    gates["prime_identity"] = prime_identity["mismatches"] == 0

    record: Dict[str, Any] = {
        "schema": 1,
        "protocol_version": PROTOCOL_VERSION,
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "generator_version": GENERATOR_VERSION,
        "config": {
            "programs": [program.name for program in corpus],
            "workers": workers,
            "clients": clients,
            "requests_per_client": requests,
            "chaos_seed": seed,
            "max_inflight": CHAOS_MAX_INFLIGHT,
            "deadline_grace_seconds": CHAOS_DEADLINE_GRACE,
        },
        "corpus": {name: digest for name, digest in
                   sorted(digest_index([p.name for p in corpus]).items())},
        "plan": plan.as_dict(),
        "corrupted_entries": len(corrupted),
        "runs": {
            "prime": _run_report(prime, prime_identity, True),
            "chaos": dict(_latency_report(chaos),
                          identity=chaos_identity,
                          hangs=list(chaos.hangs),
                          truncated_resends=chaos.truncated_resends,
                          burst_final_ok=chaos.burst_final_ok,
                          store_by_module=_store_views(chaos)),
        },
        "fault_stats": chaos.fault_stats,
        "controller": {
            "responses": {str(shard): count for shard, count
                          in sorted(chaos.controller_responses.items())},
            "kills_fired": {str(shard): count for shard, count
                            in sorted(chaos.kills_fired.items())},
        },
        "gates": gates,
        # Everything under "run" is volatile; strip_volatile drops the key.
        "run": {"started_unix": time.time()},
    }
    return record


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadtest",
        description="closed-loop loadtest of the socket serving layer")
    parser.add_argument("--programs", default=",".join(DEFAULT_PROGRAMS),
                        help="comma-separated suite program names")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=20,
                        help="requests per client (per run)")
    parser.add_argument("--quick", action="store_true",
                        help="CI profile: trims the per-client script")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent store directory (default: a "
                             "temporary one, removed afterwards)")
    parser.add_argument("--out", default=None,
                        help="output record path (default: "
                             "BENCH_service.json, BENCH_chaos.json with "
                             "--chaos)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every gate holds")
    parser.add_argument("--chaos", action="store_true",
                        help="run the seeded fault drill (worker kill, "
                             "latency, store corruption, truncated lines) "
                             "instead of the three-run loadtest")
    parser.add_argument("--chaos-seed", type=int, default=1,
                        help="fault-plan seed (--chaos only)")
    options = parser.parse_args(argv)
    requests = min(options.requests, 12) if options.quick else options.requests

    programs = tuple(name for name in options.programs.split(",") if name)
    if options.chaos:
        record = run_chaos_loadtest(programs, max(1, options.workers),
                                    max(1, options.clients),
                                    max(1, requests), options.store,
                                    options.chaos_seed)
        out = options.out or "BENCH_chaos.json"
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(to_canonical_json(record))
        chaos = record["runs"]["chaos"]
        faults = record["fault_stats"]
        print(f"loadtest --chaos (seed {record['config']['chaos_seed']}): "
              f"{chaos['requests']} answered, {len(chaos['hangs'])} hangs, "
              f"{faults['respawns']} respawns, {faults['shed']} shed, "
              f"{faults['backstops']} backstops, "
              f"{faults['client_retries']['retries']} client retries")
        for name, passed in sorted(record["gates"].items()):
            print(f"loadtest: gate {name}: {'ok' if passed else 'FAILED'}")
        if options.check and not all(record["gates"].values()):
            return 2
        return 0

    record = run_loadtest(programs, max(1, options.workers),
                          max(1, options.clients), max(1, requests),
                          options.store)
    with open(options.out or "BENCH_service.json", "w",
              encoding="utf-8") as handle:
        handle.write(to_canonical_json(record))

    direct = record["runs"]["direct"]
    warm = record["runs"]["warm"]
    print(f"loadtest: {direct['requests']} requests/run, "
          f"{direct['throughput_per_second']:.1f} req/s direct "
          f"(p50 {direct['latency_p50_seconds'] * 1e3:.1f} ms, "
          f"p99 {direct['latency_p99_seconds'] * 1e3:.1f} ms), "
          f"{warm['throughput_per_second']:.1f} req/s warm-store; "
          f"warm solver steps {warm['solver_steps_total']}")
    for name, passed in sorted(record["gates"].items()):
        print(f"loadtest: gate {name}: {'ok' if passed else 'FAILED'}")
    if options.check and not all(record["gates"].values()):
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main(sys.argv[1:]))
