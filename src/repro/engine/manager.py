"""Construction, caching and invalidation of per-module analyses.

Every consumer used to build its own :class:`SymbolicRangeAnalysis`,
:class:`LocationTable` and friends, so comparing four alias analyses over one
module ran the (by far most expensive) range bootstrap four times.  The
manager memoizes analyses behind typed :class:`AnalysisKey`\\ s:

    manager = AnalysisManager(module)
    ranges = manager.get(keys.RANGES)          # built once
    ranges = manager.get(keys.RANGES)          # cache hit

Factories receive the manager itself, so an analysis declares its inputs by
calling :meth:`AnalysisManager.get` recursively; the manager records those
nested requests as dependency edges and uses them to invalidate dependents
transitively when an input is invalidated (e.g. after a transform changes
the module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

__all__ = ["AnalysisKey", "AnalysisManager", "ManagerStatistics", "EditImpact",
           "SCOPE_MODULE", "SCOPE_FUNCTION", "SCOPE_CALLGRAPH"]

#: The analysis depends on the whole module opaquely: any function edit
#: evicts it (the conservative default).
SCOPE_MODULE = "module"
#: The analysis keeps per-function state and implements
#: ``refresh_function(old, new)``: a function edit refreshes it in place,
#: re-running only the edited function's nodes.
SCOPE_FUNCTION = "function"
#: The analysis is an interprocedural whole-module fixed point.  A function
#: edit *re-seeds* it in place through ``refresh_function(old, new, edit)``:
#: the analysis maps the edit to its seed nodes (``SparseProblem
#: .delta_nodes``) and restarts change-driven propagation against the
#: retained fixed point (``SparseSolver.resolve_from``).  Entries without
#: the hook fall back to eviction.
SCOPE_CALLGRAPH = "callgraph"


@dataclass(frozen=True)
class AnalysisKey:
    """Typed handle for one kind of analysis.

    ``factory(module, manager, **params)`` builds the analysis; ``params``
    must be keyword arguments whose ``repr`` is deterministic — they become
    part of the cache key, so two requests with equal parameters share one
    instance.

    ``scope`` declares how the analysis reacts to a single-function edit
    (see :meth:`AnalysisManager.apply_function_edit`): module-scoped entries
    are evicted, function-scoped entries are refreshed in place through
    their ``refresh_function(old, new)`` hook, and callgraph-scoped entries
    are re-seeded in place through ``refresh_function(old, new, edit)``.
    """

    name: str
    factory: Callable[..., Any]
    scope: str = SCOPE_MODULE

    def __repr__(self) -> str:
        return f"AnalysisKey({self.name!r})"


@dataclass
class ManagerStatistics:
    """Cache behaviour counters (asserted by the engine tests).

    The counters are deterministic for a given module and request sequence —
    no wall time, no memory addresses — so the sharded evaluation runner
    ships them across process boundaries and merges them into the benchmark
    record as hardware-independent cost signals.
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    invalidations: int = 0
    refreshes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (picklable, JSON-ready, stable key order)."""
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "invalidations": self.invalidations,
                "refreshes": self.refreshes}

    def merge(self, other: "ManagerStatistics") -> None:
        """Accumulate another manager's counters (shard-merge aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.builds += other.builds
        self.invalidations += other.invalidations
        self.refreshes += other.refreshes


class CyclicAnalysisError(RuntimeError):
    """Two analyses requested each other while being built."""


_CacheKey = Tuple[AnalysisKey, Hashable]


@dataclass
class EditImpact:
    """What one function edit did to a manager's cache.

    ``cone`` is the callgraph closure of the edited function (itself plus
    transitive callers and callees) — the set of functions whose
    interprocedural analysis results the edit can influence, and therefore
    the outer bound on any callgraph-scoped re-seed.

    ``reseeded`` and ``retained`` record, per refreshed analysis, how many
    nodes the edit re-seeded and how much prior state survived it — the
    per-edit incremental telemetry the service's ``stats`` op surfaces
    (pure counts: deterministic, and untouched by ``strip_volatile``).
    """

    function: str
    refreshed: List[str] = field(default_factory=list)
    evicted: List[str] = field(default_factory=list)
    cone: Tuple[str, ...] = ()
    reseeded: Dict[str, int] = field(default_factory=dict)
    retained: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"function": self.function,
                "refreshed": sorted(self.refreshed),
                "evicted": sorted(self.evicted),
                "cone": sorted(self.cone),
                "reseeded": dict(sorted(self.reseeded.items())),
                "retained": dict(sorted(self.retained.items()))}


def _callgraph_cone(module, function) -> Tuple[str, ...]:
    """Function names in the edit cone: the edited function plus its
    transitive callers and callees (computed directly from the IR so it
    never depends on a cached — possibly stale — callgraph analysis)."""
    from ..ir.instructions import CallInst

    callers: Dict[str, Set[str]] = {}
    callees: Dict[str, Set[str]] = {}
    for caller in module.defined_functions():
        for inst in caller.instructions():
            if not isinstance(inst, CallInst):
                continue
            name = inst.callee_name()
            target = module.get_function(name)
            if target is None or target.is_declaration():
                continue
            callees.setdefault(caller.name, set()).add(name)
            callers.setdefault(name, set()).add(caller.name)
    cone: Set[str] = set()
    frontier = [function.name]
    while frontier:
        name = frontier.pop()
        if name in cone:
            continue
        cone.add(name)
        frontier.extend(callers.get(name, ()))
        frontier.extend(callees.get(name, ()))
    return tuple(sorted(cone))


class AnalysisManager:
    """Builds, caches and invalidates analyses for one module.

    Managers are cheap to construct and must never cross process boundaries:
    cached analyses hold live IR object graphs, so the parallel evaluation
    runner has each worker construct its own manager per module and ships
    only plain-data results (and :class:`ManagerStatistics` snapshots) back.
    """

    def __init__(self, module):
        self.module = module
        self.statistics = ManagerStatistics()
        self._cache: Dict[_CacheKey, Any] = {}
        #: cache key -> keys that were requested while building it.
        self._dependencies: Dict[_CacheKey, Set[_CacheKey]] = {}
        #: cache key -> keys whose build requested it.
        self._dependents: Dict[_CacheKey, Set[_CacheKey]] = {}
        self._build_stack: List[_CacheKey] = []
        #: Optional ``callback(key, value)`` invoked for every evicted entry
        #: (the analysis service harvests retired solver-step counters here).
        self.on_evict: Optional[Callable[[AnalysisKey, Any], None]] = None

    # -- cache keys -----------------------------------------------------------
    @staticmethod
    def _cache_key(key: AnalysisKey, params: Dict[str, Any]) -> _CacheKey:
        # ``None`` means "the factory default", so ``get(KEY)`` and
        # ``get(KEY, options=None)`` must share one cache entry.
        filtered = {name: value for name, value in params.items() if value is not None}
        if not filtered:
            return (key, ())
        return (key, tuple(sorted((name, repr(value)) for name, value in filtered.items())))

    # -- retrieval ------------------------------------------------------------
    def get(self, key: AnalysisKey, **params) -> Any:
        """The analysis for ``key`` (and ``params``), building it on a miss."""
        cache_key = self._cache_key(key, params)
        self._record_edge(cache_key)
        if cache_key in self._cache:
            self.statistics.hits += 1
            return self._cache[cache_key]
        if cache_key in self._build_stack:
            cycle = " -> ".join(entry[0].name for entry in self._build_stack)
            raise CyclicAnalysisError(
                f"analysis dependency cycle: {cycle} -> {key.name}")
        self.statistics.misses += 1
        self._build_stack.append(cache_key)
        try:
            value = key.factory(self.module, self, **params)
        finally:
            self._build_stack.pop()
        self.statistics.builds += 1
        self._cache[cache_key] = value
        return value

    def cached(self, key: AnalysisKey, **params) -> Optional[Any]:
        """The cached analysis, or ``None`` without building anything."""
        return self._cache.get(self._cache_key(key, params))

    def cached_values(self) -> List[Any]:
        """Every live cached analysis, in deterministic key order (the
        analysis service aggregates solver-step totals over these)."""
        ordered = sorted(self._cache, key=lambda entry: (entry[0].name,
                                                         repr(entry[1])))
        return [self._cache[cache_key] for cache_key in ordered]

    def cached_items(self) -> List[Tuple[str, Any]]:
        """``(key name, analysis)`` pairs for every live cached entry, in the
        same deterministic order as :meth:`cached_values` (the analysis
        service attributes per-analysis solver-step totals over these)."""
        ordered = sorted(self._cache, key=lambda entry: (entry[0].name,
                                                         repr(entry[1])))
        return [(cache_key[0].name, self._cache[cache_key])
                for cache_key in ordered]

    def _record_edge(self, cache_key: _CacheKey) -> None:
        if not self._build_stack:
            return
        requester = self._build_stack[-1]
        self._dependencies.setdefault(requester, set()).add(cache_key)
        self._dependents.setdefault(cache_key, set()).add(requester)

    # -- invalidation ---------------------------------------------------------
    def invalidate(self, key: Optional[AnalysisKey] = None, **params) -> int:
        """Drop cached analyses; returns how many entries were evicted.

        With no ``key``, everything goes (the module changed wholesale).
        With a ``key``, that entry *and every analysis built on top of it*
        (transitively, via the recorded dependency edges) are evicted.
        """
        if key is None:
            evicted = len(self._cache)
            if self.on_evict is not None:
                for cache_key, value in list(self._cache.items()):
                    self.on_evict(cache_key[0], value)
            self._cache.clear()
            self._dependencies.clear()
            self._dependents.clear()
            self.statistics.invalidations += evicted
            return evicted
        doomed: Set[_CacheKey] = set()
        frontier = [cache_key for cache_key in self._cache
                    if cache_key[0] is key
                    and (not params or cache_key == self._cache_key(key, params))]
        while frontier:
            cache_key = frontier.pop()
            if cache_key in doomed:
                continue
            doomed.add(cache_key)
            frontier.extend(self._dependents.get(cache_key, ()))
        self._evict_entries(doomed)
        self.statistics.invalidations += len(doomed)
        return len(doomed)

    def _evict_entries(self, doomed: Set[_CacheKey]) -> None:
        """Drop exactly ``doomed`` (no transitive closure) and clean edges."""
        for cache_key in doomed:
            if self.on_evict is not None and cache_key in self._cache:
                self.on_evict(cache_key[0], self._cache[cache_key])
            self._cache.pop(cache_key, None)
            self._dependencies.pop(cache_key, None)
            self._dependents.pop(cache_key, None)
        for dependents in self._dependents.values():
            dependents.difference_update(doomed)
        for dependencies in self._dependencies.values():
            dependencies.difference_update(doomed)

    # -- function-granular edits ------------------------------------------------
    def apply_function_edit(self, old_function, new_function) -> EditImpact:
        """React to one function edit (``Module.replace_function``).

        Entries are handled per their key's declared scope:

        * :data:`SCOPE_FUNCTION` entries whose cached value implements
          ``refresh_function(old, new)`` are *refreshed in place*: the hook
          purges the per-value state of the old function and re-runs only the
          new function's nodes, accumulating solver statistics.
        * :data:`SCOPE_CALLGRAPH` entries whose cached value implements
          ``refresh_function(old, new, edit)`` are *re-seeded in place*: the
          hook maps the edit to the nodes it can influence
          (``SparseProblem.delta_nodes``) and restarts change-driven
          propagation against the retained fixed point
          (``SparseSolver.resolve_from``), so the edit pays for its cone
          rather than the module.  A hook may return a telemetry dict
          (``reseeded``/``retained`` counts), recorded on the impact.
        * :data:`SCOPE_MODULE` entries — and any entry without the hook its
          scope requires — are evicted and rebuilt lazily.

        Refreshes run dependencies-first (the recorded edge order), with the
        refreshing entry pushed on the build stack so any nested
        :meth:`get` — e.g. RBAA re-requesting the re-seeded GR analysis,
        now a cache hit on the same object — keeps its dependency edges
        recorded.
        """
        refresh: List[_CacheKey] = []
        doomed: Set[_CacheKey] = set()
        for cache_key, value in self._cache.items():
            key = cache_key[0]
            if (key.scope in (SCOPE_FUNCTION, SCOPE_CALLGRAPH)
                    and hasattr(value, "refresh_function")):
                refresh.append(cache_key)
            else:
                doomed.add(cache_key)
        impact = EditImpact(
            function=new_function.name,
            cone=_callgraph_cone(self.module, new_function))
        impact.evicted = sorted({cache_key[0].name for cache_key in doomed})
        self._evict_entries(doomed)
        self.statistics.invalidations += len(doomed)

        for cache_key in self._refresh_order(refresh):
            value = self._cache[cache_key]
            self._build_stack.append(cache_key)
            try:
                if cache_key[0].scope == SCOPE_CALLGRAPH:
                    telemetry = value.refresh_function(old_function,
                                                       new_function, impact)
                else:
                    telemetry = value.refresh_function(old_function,
                                                       new_function)
            finally:
                self._build_stack.pop()
            self.statistics.refreshes += 1
            impact.refreshed.append(cache_key[0].name)
            if isinstance(telemetry, dict):
                name = cache_key[0].name
                if "reseeded" in telemetry:
                    impact.reseeded[name] = int(telemetry["reseeded"])
                if "retained" in telemetry:
                    impact.retained[name] = int(telemetry["retained"])
        return impact

    def _refresh_order(self, entries: List[_CacheKey]) -> List[_CacheKey]:
        """``entries`` sorted dependencies-first along the recorded edges."""
        pending = set(entries)
        ordered: List[_CacheKey] = []
        visiting: Set[_CacheKey] = set()

        def visit(cache_key: _CacheKey) -> None:
            if cache_key not in pending or cache_key in visiting:
                return
            visiting.add(cache_key)
            for dependency in sorted(self._dependencies.get(cache_key, ()),
                                     key=lambda entry: entry[0].name):
                visit(dependency)
            visiting.discard(cache_key)
            pending.discard(cache_key)
            ordered.append(cache_key)

        for cache_key in sorted(entries, key=lambda entry: entry[0].name):
            visit(cache_key)
        return ordered

    def __len__(self) -> int:
        return len(self._cache)
