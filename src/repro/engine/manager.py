"""Construction, caching and invalidation of per-module analyses.

Every consumer used to build its own :class:`SymbolicRangeAnalysis`,
:class:`LocationTable` and friends, so comparing four alias analyses over one
module ran the (by far most expensive) range bootstrap four times.  The
manager memoizes analyses behind typed :class:`AnalysisKey`\\ s:

    manager = AnalysisManager(module)
    ranges = manager.get(keys.RANGES)          # built once
    ranges = manager.get(keys.RANGES)          # cache hit

Factories receive the manager itself, so an analysis declares its inputs by
calling :meth:`AnalysisManager.get` recursively; the manager records those
nested requests as dependency edges and uses them to invalidate dependents
transitively when an input is invalidated (e.g. after a transform changes
the module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

__all__ = ["AnalysisKey", "AnalysisManager", "ManagerStatistics"]


@dataclass(frozen=True)
class AnalysisKey:
    """Typed handle for one kind of analysis.

    ``factory(module, manager, **params)`` builds the analysis; ``params``
    must be keyword arguments whose ``repr`` is deterministic — they become
    part of the cache key, so two requests with equal parameters share one
    instance.
    """

    name: str
    factory: Callable[..., Any]

    def __repr__(self) -> str:
        return f"AnalysisKey({self.name!r})"


@dataclass
class ManagerStatistics:
    """Cache behaviour counters (asserted by the engine tests).

    The counters are deterministic for a given module and request sequence —
    no wall time, no memory addresses — so the sharded evaluation runner
    ships them across process boundaries and merges them into the benchmark
    record as hardware-independent cost signals.
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (picklable, JSON-ready, stable key order)."""
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "invalidations": self.invalidations}

    def merge(self, other: "ManagerStatistics") -> None:
        """Accumulate another manager's counters (shard-merge aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.builds += other.builds
        self.invalidations += other.invalidations


class CyclicAnalysisError(RuntimeError):
    """Two analyses requested each other while being built."""


_CacheKey = Tuple[AnalysisKey, Hashable]


class AnalysisManager:
    """Builds, caches and invalidates analyses for one module.

    Managers are cheap to construct and must never cross process boundaries:
    cached analyses hold live IR object graphs, so the parallel evaluation
    runner has each worker construct its own manager per module and ships
    only plain-data results (and :class:`ManagerStatistics` snapshots) back.
    """

    def __init__(self, module):
        self.module = module
        self.statistics = ManagerStatistics()
        self._cache: Dict[_CacheKey, Any] = {}
        #: cache key -> keys that were requested while building it.
        self._dependencies: Dict[_CacheKey, Set[_CacheKey]] = {}
        #: cache key -> keys whose build requested it.
        self._dependents: Dict[_CacheKey, Set[_CacheKey]] = {}
        self._build_stack: List[_CacheKey] = []

    # -- cache keys -----------------------------------------------------------
    @staticmethod
    def _cache_key(key: AnalysisKey, params: Dict[str, Any]) -> _CacheKey:
        # ``None`` means "the factory default", so ``get(KEY)`` and
        # ``get(KEY, options=None)`` must share one cache entry.
        filtered = {name: value for name, value in params.items() if value is not None}
        if not filtered:
            return (key, ())
        return (key, tuple(sorted((name, repr(value)) for name, value in filtered.items())))

    # -- retrieval ------------------------------------------------------------
    def get(self, key: AnalysisKey, **params) -> Any:
        """The analysis for ``key`` (and ``params``), building it on a miss."""
        cache_key = self._cache_key(key, params)
        self._record_edge(cache_key)
        if cache_key in self._cache:
            self.statistics.hits += 1
            return self._cache[cache_key]
        if cache_key in self._build_stack:
            cycle = " -> ".join(entry[0].name for entry in self._build_stack)
            raise CyclicAnalysisError(
                f"analysis dependency cycle: {cycle} -> {key.name}")
        self.statistics.misses += 1
        self._build_stack.append(cache_key)
        try:
            value = key.factory(self.module, self, **params)
        finally:
            self._build_stack.pop()
        self.statistics.builds += 1
        self._cache[cache_key] = value
        return value

    def cached(self, key: AnalysisKey, **params) -> Optional[Any]:
        """The cached analysis, or ``None`` without building anything."""
        return self._cache.get(self._cache_key(key, params))

    def _record_edge(self, cache_key: _CacheKey) -> None:
        if not self._build_stack:
            return
        requester = self._build_stack[-1]
        self._dependencies.setdefault(requester, set()).add(cache_key)
        self._dependents.setdefault(cache_key, set()).add(requester)

    # -- invalidation ---------------------------------------------------------
    def invalidate(self, key: Optional[AnalysisKey] = None, **params) -> int:
        """Drop cached analyses; returns how many entries were evicted.

        With no ``key``, everything goes (the module changed wholesale).
        With a ``key``, that entry *and every analysis built on top of it*
        (transitively, via the recorded dependency edges) are evicted.
        """
        if key is None:
            evicted = len(self._cache)
            self._cache.clear()
            self._dependencies.clear()
            self._dependents.clear()
            self.statistics.invalidations += evicted
            return evicted
        doomed: Set[_CacheKey] = set()
        frontier = [cache_key for cache_key in self._cache
                    if cache_key[0] is key
                    and (not params or cache_key == self._cache_key(key, params))]
        while frontier:
            cache_key = frontier.pop()
            if cache_key in doomed:
                continue
            doomed.add(cache_key)
            frontier.extend(self._dependents.get(cache_key, ()))
        for cache_key in doomed:
            self._cache.pop(cache_key, None)
            self._dependencies.pop(cache_key, None)
            self._dependents.pop(cache_key, None)
        for dependents in self._dependents.values():
            dependents.difference_update(doomed)
        for dependencies in self._dependencies.values():
            dependencies.difference_update(doomed)
        self.statistics.invalidations += len(doomed)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._cache)
