"""A shared sparse fixpoint engine for every analysis in the repository.

Before this module existed each analysis — the integer range bootstrap, the
global GR analysis, the Andersen baseline — carried its own hand-rolled
fixed-point loop, all of them dense: every pass re-evaluated every node of
the module whether or not its inputs had changed.  The engine replaces those
loops with one algorithm:

1. the *dependence graph* of the problem (def-use edges for the SSA
   analyses, constraint edges for points-to) is condensed into strongly
   connected components with an iterative Tarjan walk;
2. nodes are evaluated once in topological (dependencies-first) component
   order — acyclic regions therefore stabilise in a single visit;
3. nodes whose inputs changed are re-evaluated through a deduplicating
   worklist until the component reaches a fixed point, with a widening hook
   applied at the problem's designated refinement points (φ-functions,
   formal parameters, call results) to force convergence on cyclic regions;
4. an optional descending (narrowing) sequence of full sweeps recovers
   precision lost to widening — the schedule of Section 3.9 of the paper.

Problems describe themselves through :class:`SparseProblem`; the solver owns
scheduling only, never abstract values, so every analysis keeps its existing
state tables and transfer functions.  :class:`SolverStatistics` counts
transfer-function applications ("steps"), which the scalability benchmark
reports alongside wall time.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["SolverInterrupted", "SolverStatistics", "SparseProblem",
           "SparseSolver", "condense_sccs", "solver_budget"]

Node = Hashable


class SolverInterrupted(RuntimeError):
    """An installed budget hook asked the solver to abandon its fixed point.

    Raised *between* transfer applications, so the problem's abstract state
    is internally consistent but not a fixed point — callers must discard
    the partially solved analysis (the :class:`~repro.engine.manager
    .AnalysisManager` never caches a build whose factory raised).
    """


#: Process-wide cooperative budget: when set, the solver calls it before
#: every transfer application and raises :class:`SolverInterrupted` the
#: moment it returns ``False``.  Installed via :func:`solver_budget` by the
#: serving layer to honour per-request ``timeout_ms`` deadlines; ``None``
#: (the default) costs one attribute read per step.
_BUDGET_HOOK: Optional[Callable[[], bool]] = None


@contextmanager
def solver_budget(hook: Callable[[], bool]) -> Iterator[None]:
    """Install a cooperative step budget for every solve on this thread.

    ``hook`` is consulted before each transfer application; returning
    ``False`` aborts the solve with :class:`SolverInterrupted`.  The
    previous hook (usually ``None``) is restored on exit, so nested budgets
    compose: the innermost (tightest) deadline wins while it is active.
    """
    global _BUDGET_HOOK
    previous = _BUDGET_HOOK
    _BUDGET_HOOK = hook
    try:
        yield
    finally:
        _BUDGET_HOOK = previous


@dataclass
class SolverStatistics:
    """Counters of one :meth:`SparseSolver.solve` run.

    ``steps`` is the total number of transfer-function applications — the
    engine's hardware-independent cost measure.  ``max_node_evaluations``
    plays the role the old per-analysis "pass" counters played: it bounds how
    often any single node was re-evaluated during the ascending phase.

    ``transfer_ns`` is the monotonic-clock wall time spent *inside* transfer
    functions, in nanoseconds — the per-analysis attribution the profiling
    harness reports next to ``steps``.  Like every other wall-time-derived
    field it is excluded by ``strip_volatile`` (the ``_ns`` suffix) before
    determinism diffs.
    """

    problem: str = ""
    nodes: int = 0
    edges: int = 0
    sccs: int = 0
    largest_scc: int = 0
    steps: int = 0
    sweep_steps: int = 0
    worklist_steps: int = 0
    descending_steps: int = 0
    widenings: int = 0
    max_node_evaluations: int = 0
    transfer_ns: int = 0

    def accumulate(self, other: "SolverStatistics") -> None:
        """Fold a later solve's counters into this one.

        Used by function-granular incremental refreshes: an analysis that
        re-solves one function's nodes keeps a single statistics object whose
        ``steps`` total covers the initial solve plus every refresh, so the
        warm-vs-cold comparison reads one counter.
        """
        self.nodes += other.nodes
        self.edges += other.edges
        self.sccs += other.sccs
        self.largest_scc = max(self.largest_scc, other.largest_scc)
        self.steps += other.steps
        self.sweep_steps += other.sweep_steps
        self.worklist_steps += other.worklist_steps
        self.descending_steps += other.descending_steps
        self.widenings += other.widenings
        self.max_node_evaluations = max(self.max_node_evaluations,
                                        other.max_node_evaluations)
        self.transfer_ns += other.transfer_ns


class SparseProblem:
    """One dataflow problem the sparse solver can run.

    Subclasses own the abstract state; the solver only schedules.  The
    minimal contract is ``nodes`` + ``transfer`` + ``read``/``write``;
    everything else has a sensible default.
    """

    #: Short name used in statistics and debugging output.
    name = "sparse-problem"

    def nodes(self) -> Sequence[Node]:
        """Every node of the problem, in the priority order sweeps should use."""
        raise NotImplementedError

    def dependencies(self, node: Node) -> Iterable[Node]:
        """Nodes whose state the transfer function of ``node`` reads."""
        return ()

    def transfer(self, node: Node) -> Any:
        """Recompute the abstract value of ``node`` from its inputs."""
        raise NotImplementedError

    def read(self, node: Node) -> Any:
        """Current abstract value of ``node`` (a sentinel when unvisited)."""
        raise NotImplementedError

    def write(self, node: Node, value: Any) -> None:
        """Store the new abstract value of ``node``."""
        raise NotImplementedError

    def is_refinement_point(self, node: Node) -> bool:
        """Nodes where widening (ascending) and narrowing (descending) apply."""
        return False

    def widen(self, node: Node, old: Any, new: Any) -> Any:
        """Widening hook: combine on re-evaluation of a refinement point."""
        return new

    def narrow(self, node: Node, old: Any, new: Any) -> Any:
        """Narrowing hook: combine during descending sweeps."""
        return new

    def on_phase(self, phase: str) -> None:
        """Called at phase boundaries: ``"sweep"``, ``"ascending"`` and
        ``"descending:<k>"`` — the GR analysis snapshots its Figure-12 trace
        from here."""

    def delta_nodes(self, edit) -> Sequence[Node]:
        """Map one function edit to the seed set of a re-solve.

        ``edit`` is the :class:`~repro.engine.manager.EditImpact` of a
        single-function edit.  The returned nodes are exactly those whose
        retained abstract value the edit can influence — the inputs to
        :meth:`SparseSolver.resolve_from`, which recomputes them from
        scratch against the rest of the retained fixed point.  Problems
        that do not support incremental re-seeding keep the default.
        """
        raise NotImplementedError(f"{self.name} does not support re-seeding")


def condense_sccs(nodes: Sequence[Node],
                  dependencies: Callable[[Node], Iterable[Node]]) -> List[List[Node]]:
    """Strongly connected components in dependencies-first topological order.

    Iterative Tarjan over the dependence edges; because edges point from a
    node to the nodes it *reads*, Tarjan's emission order (callees first) is
    exactly the evaluation order the solver wants.  Unknown dependencies
    (values that are not problem nodes, e.g. constants) are skipped.
    """
    known = set(nodes)
    index_counter = [0]
    stack: List[Node] = []
    lowlink: Dict[Node, int] = {}
    index: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    components: List[List[Node]] = []

    def edges(node: Node) -> List[Node]:
        return [dep for dep in dependencies(node) if dep in known]

    for root in nodes:
        if root in index:
            continue
        work: List[tuple] = [(root, iter(edges(root)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            current, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(edges(child))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[current] = min(lowlink[current], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is current:
                        break
                components.append(component)
    return components


class SparseSolver:
    """Drives a :class:`SparseProblem` to its fixed point.

    The ascending phase is change-driven: after the initial topological
    sweep, only nodes whose dependencies changed are re-evaluated.  Problems
    whose dependence edges appear during solving (Andersen's load/store
    constraints) register them with :meth:`add_dependency` from inside their
    transfer functions.
    """

    def __init__(self, problem: SparseProblem, *,
                 max_node_evaluations: Optional[int] = None,
                 descending_passes: int = 0):
        self.problem = problem
        self.max_node_evaluations = max_node_evaluations
        self.descending_passes = descending_passes
        self.statistics = SolverStatistics(problem=problem.name)
        self._order: List[Node] = []
        self._dependents: Dict[Node, List[Node]] = {}
        self._dependent_sets: Dict[Node, Set[Node]] = {}
        self._evaluations: Dict[Node, int] = {}
        self._worklist: deque = deque()
        self._enqueued: Set[Node] = set()

    # -- dynamic dependence edges ---------------------------------------------
    def add_dependency(self, dependent: Node, dependency: Node) -> None:
        """Record, mid-solve, that ``dependent`` reads ``dependency``.

        Future changes of ``dependency`` will re-enqueue ``dependent``; used
        by problems whose dependence graph grows as states grow.
        """
        bucket = self._dependent_sets.setdefault(dependency, set())
        if dependent in bucket:
            return
        bucket.add(dependent)
        self._dependents.setdefault(dependency, []).append(dependent)
        self.statistics.edges += 1

    def _enqueue_dependents(self, node: Node) -> None:
        for dependent in self._dependents.get(node, ()):
            if dependent in self._enqueued:
                continue
            if self._evaluations.get(dependent, 0) == 0:
                continue  # the initial sweep will evaluate it with fresh inputs
            cap = self.max_node_evaluations
            if cap is not None and self._evaluations.get(dependent, 0) >= cap:
                continue  # forced convergence: the cap bounds re-evaluation
            self._enqueued.add(dependent)
            self._worklist.append(dependent)

    # -- evaluation -----------------------------------------------------------
    def _evaluate(self, node: Node, *, phase: str) -> bool:
        budget = _BUDGET_HOOK
        if budget is not None and not budget():
            raise SolverInterrupted(
                f"{self.problem.name}: budget exhausted after "
                f"{self.statistics.steps} steps")
        problem = self.problem
        stats = self.statistics
        old = problem.read(node)
        started = time.perf_counter_ns()
        new = problem.transfer(node)
        stats.transfer_ns += time.perf_counter_ns() - started
        stats.steps += 1
        seen = self._evaluations.get(node, 0)
        self._evaluations[node] = seen + 1
        if phase != "descending" and seen + 1 > stats.max_node_evaluations:
            stats.max_node_evaluations = seen + 1
        if phase == "descending":
            stats.descending_steps += 1
            if problem.is_refinement_point(node):
                new = problem.narrow(node, old, new)
            if new != old:
                problem.write(node, new)
                return True
            return False
        if phase == "sweep":
            stats.sweep_steps += 1
        else:
            stats.worklist_steps += 1
            if problem.is_refinement_point(node):
                widened = problem.widen(node, old, new)
                if widened != new:
                    stats.widenings += 1
                new = widened
        if new != old:
            problem.write(node, new)
            self._enqueue_dependents(node)
            return True
        return False

    # -- driver ---------------------------------------------------------------
    def solve(self) -> SolverStatistics:
        problem = self.problem
        stats = self.statistics
        bind = getattr(problem, "bind", None)
        if bind is not None:
            bind(self)
        ordered_nodes = list(problem.nodes())
        stats.nodes = len(ordered_nodes)

        components = condense_sccs(ordered_nodes, problem.dependencies)
        stats.sccs = len(components)
        stats.largest_scc = max((len(c) for c in components), default=0)
        # Stable priority inside each component: the order nodes() gave us.
        priority = {node: position for position, node in enumerate(ordered_nodes)}
        self._order = [node for component in components
                       for node in sorted(component, key=priority.__getitem__)]

        for node in ordered_nodes:
            for dependency in problem.dependencies(node):
                if dependency in priority:
                    self.add_dependency(node, dependency)

        return self._run_phases()

    def resolve_from(self, state: SparseProblem,
                     seeds: Iterable[Node]) -> SolverStatistics:
        """Restart change-driven propagation from ``seeds`` against ``state``.

        ``state`` is the problem holding a previously computed fixed point
        (problems own their abstract values, so the retained state *is* the
        problem); ``seeds`` are the nodes an edit can influence, typically
        the problem's :meth:`SparseProblem.delta_nodes` for that edit.  The
        schedule mirrors :meth:`solve` restricted to the seed set:

        1. the seed subgraph is condensed and swept dependencies-first,
           reading retained values for every non-seed dependency (because
           dependence cycles are either entirely inside or entirely outside
           a dependent-closed seed set, the relative order matches the cold
           sweep's);
        2. the worklist drains changes, which may escape the seed set —
           non-seed nodes are pre-marked as evaluated so they re-enter the
           schedule the moment an input of theirs changes;
        3. descending (narrowing) passes re-run over the seeds only.

        Widening re-arms on the seeds alone: their evaluation counters start
        at zero, so ``max_node_evaluations`` bounds the re-seeded region
        exactly as a cold solve would, while retained nodes keep their prior
        fixed point unless propagation actually reaches them.  The returned
        statistics cover only this run — callers fold them into a long-lived
        counter with :meth:`SolverStatistics.accumulate`.
        """
        self.problem = problem = state
        stats = self.statistics
        bind = getattr(problem, "bind", None)
        if bind is not None:
            bind(self)
        ordered_nodes = list(problem.nodes())
        priority = {node: position for position, node in enumerate(ordered_nodes)}
        # Seeds in sweep-priority order, deduplicated, unknown nodes dropped
        # (an edit's seed map may mention values that no longer exist).
        seed_list = sorted({node for node in seeds if node in priority},
                           key=priority.__getitem__)
        seed_set = set(seed_list)
        stats.nodes = len(seed_list)

        # The full dependence graph is registered — change propagation must
        # be able to leave the seed set — but only transfer applications
        # count as steps, so the edit pays O(edit cone) evaluations.
        for node in ordered_nodes:
            for dependency in problem.dependencies(node):
                if dependency in priority:
                    self.add_dependency(node, dependency)
        for node in ordered_nodes:
            if node not in seed_set:
                self._evaluations[node] = 1

        components = condense_sccs(seed_list, problem.dependencies)
        stats.sccs = len(components)
        stats.largest_scc = max((len(c) for c in components), default=0)
        self._order = [node for component in components
                       for node in sorted(component, key=priority.__getitem__)]

        return self._run_phases()

    def _run_phases(self) -> SolverStatistics:
        problem = self.problem

        # Phase 1: one topological sweep (dependencies before dependents).
        for node in self._order:
            self._evaluate(node, phase="sweep")
        problem.on_phase("sweep")

        # Phase 2: change-driven iteration with widening at refinement points.
        while self._worklist:
            node = self._worklist.popleft()
            self._enqueued.discard(node)
            self._evaluate(node, phase="ascending")
        problem.on_phase("ascending")

        # Phase 3: descending sweeps (narrowing) in the same global order.
        for step in range(self.descending_passes):
            for node in self._order:
                self._evaluate(node, phase="descending")
            problem.on_phase(f"descending:{step + 1}")
        return self.statistics
