"""The shared analysis engine: sparse fixpoint solving + analysis caching.

* :mod:`repro.engine.solver` — the SCC-ordered sparse worklist fixpoint
  solver every iterative analysis in the repository runs on;
* :mod:`repro.engine.manager` — the :class:`AnalysisManager`, which builds,
  caches and invalidates per-module analyses behind typed keys;
* :mod:`repro.engine.keys` — the standard keys for the repository's
  analyses (``keys.RANGES``, ``keys.GLOBAL_RANGES``, ``keys.RBAA``, …).
"""

from . import keys
from .manager import (
    SCOPE_CALLGRAPH,
    SCOPE_FUNCTION,
    SCOPE_MODULE,
    AnalysisKey,
    AnalysisManager,
    EditImpact,
    ManagerStatistics,
)
from .solver import SolverStatistics, SparseProblem, SparseSolver, condense_sccs

__all__ = [
    "keys",
    "AnalysisKey",
    "AnalysisManager",
    "EditImpact",
    "ManagerStatistics",
    "SCOPE_MODULE",
    "SCOPE_FUNCTION",
    "SCOPE_CALLGRAPH",
    "SolverStatistics",
    "SparseProblem",
    "SparseSolver",
    "condense_sccs",
]
