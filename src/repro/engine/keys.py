"""Standard :class:`~repro.engine.manager.AnalysisKey` definitions.

One key per analysis the repository ships.  Imports of the analysis modules
happen inside the factories so that this module stays import-cycle-free (the
analyses themselves import the engine for the sparse solver).

Analyses that layer on others request their inputs through the manager —
``GLOBAL_RANGES`` asks for ``RANGES`` and ``LOCATIONS`` — so any two
consumers of the same module share one bootstrap range analysis, one
location table and one GR/LR fixed point.
"""

from __future__ import annotations

from .manager import SCOPE_CALLGRAPH, SCOPE_FUNCTION, AnalysisKey

__all__ = ["RANGES", "LOCATIONS", "CALLGRAPH", "GLOBAL_RANGES", "LOCAL_RANGES",
           "ANDERSEN", "STEENSGAARD", "BASIC", "SCEV", "RBAA",
           "BOUNDS", "PARALLEL"]


def _build_ranges(module, manager, options=None):
    from ..rangeanalysis.symbolic_ra import SymbolicRangeAnalysis
    return SymbolicRangeAnalysis(module, options)


def _build_locations(module, manager):
    from ..core.locations import LocationTable
    return LocationTable(module)


def _build_callgraph(module, manager):
    from ..analysis.callgraph import CallGraph
    return CallGraph.compute(module)


def _build_global_ranges(module, manager, options=None, range_options=None):
    from ..core.global_analysis import GlobalRangeAnalysis
    return GlobalRangeAnalysis(
        module,
        ranges=manager.get(RANGES, options=range_options),
        locations=manager.get(LOCATIONS),
        options=options,
    )


def _build_local_ranges(module, manager, range_options=None):
    from ..core.local_analysis import LocalRangeAnalysis
    return LocalRangeAnalysis(
        module,
        ranges=manager.get(RANGES, options=range_options),
        locations=manager.get(LOCATIONS),
    )


def _build_andersen(module, manager):
    from ..aliases.andersen import AndersenAliasAnalysis
    return AndersenAliasAnalysis(module)


def _build_steensgaard(module, manager):
    from ..aliases.steensgaard import SteensgaardAliasAnalysis
    return SteensgaardAliasAnalysis(module)


def _build_basic(module, manager):
    from ..aliases.basic import BasicAliasAnalysis
    return BasicAliasAnalysis(module)


def _build_scev(module, manager):
    from ..aliases.scev_aa import SCEVAliasAnalysis
    return SCEVAliasAnalysis(module)


def _build_rbaa(module, manager, options=None):
    from ..core.rbaa import RBAAAliasAnalysis
    return RBAAAliasAnalysis(module, options, manager=manager)


def _build_bounds(module, manager):
    from ..clients.bounds import BoundsCheckAnalysis
    return BoundsCheckAnalysis(module, manager=manager)


def _build_parallel(module, manager):
    from ..clients.parallelize import LoopParallelismAnalysis
    return LoopParallelismAnalysis(module, manager=manager)


#: The symbolic integer range bootstrap (Blume–Eigenmann style).  The
#: analysis is function-local (interprocedural flows become kernel symbols),
#: so a function edit re-runs only the edited function's nodes.
RANGES = AnalysisKey("symbolic-ranges", _build_ranges, scope=SCOPE_FUNCTION)
#: The module's abstract memory locations (``Loc``); allocation sites of an
#: edited function are re-registered in place.
LOCATIONS = AnalysisKey("locations", _build_locations, scope=SCOPE_FUNCTION)
#: The direct-call graph with SCC condensation.
CALLGRAPH = AnalysisKey("callgraph", _build_callgraph)
#: The global symbolic pointer range analysis (GR, Figure 9): an
#: interprocedural fixed point re-run when an edit lands in its cone.
GLOBAL_RANGES = AnalysisKey("global-ranges", _build_global_ranges,
                            scope=SCOPE_CALLGRAPH)
#: The local symbolic pointer range analysis (LR, Figure 11): one-sweep and
#: per-function, so edits refresh it in place.
LOCAL_RANGES = AnalysisKey("local-ranges", _build_local_ranges,
                           scope=SCOPE_FUNCTION)
#: Inclusion-based points-to baseline (whole-module constraint graph).
ANDERSEN = AnalysisKey("andersen", _build_andersen, scope=SCOPE_CALLGRAPH)
#: Unification-based points-to baseline (whole-module constraint drain).
STEENSGAARD = AnalysisKey("steensgaard", _build_steensgaard,
                          scope=SCOPE_CALLGRAPH)
#: The basicaa-style heuristic baseline (stateless; per-function caches).
BASIC = AnalysisKey("basic", _build_basic, scope=SCOPE_FUNCTION)
#: The scalar-evolution baseline (lazy per-function engines).
SCEV = AnalysisKey("scev", _build_scev, scope=SCOPE_FUNCTION)
#: The paper's complete range-based alias analysis.
RBAA = AnalysisKey("rbaa", _build_rbaa, scope=SCOPE_FUNCTION)
#: Out-of-bounds client: per-access safe/maybe-oob/definitely-oob verdicts
#: (per-function report cache, refreshed in place on edits).
BOUNDS = AnalysisKey("check-bounds", _build_bounds, scope=SCOPE_FUNCTION)
#: Loop-parallelization client: cross-iteration disjointness per natural loop.
PARALLEL = AnalysisKey("parallel-loops", _build_parallel, scope=SCOPE_FUNCTION)
