"""A small bounded LRU memo shared by the symbolic layer's hot caches.

Hash-consing (:mod:`repro.symbolic.expr`) makes expressions immortal for the
lifetime of the process, so derived-operation caches may key on ``id(expr)``
without any risk of id recycling.  What they must *not* do is grow without
bound: a long-lived analysis daemon answers queries over arbitrarily many
modules, and an unbounded ``compare`` memo would leak an entry per distinct
expression pair ever compared.  :class:`BoundedMemo` is the shared answer —
a dict-ordered LRU with hit/miss/eviction counters that the service's
``stats`` op surfaces.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable

__all__ = ["BoundedMemo"]


class BoundedMemo:
    """An LRU mapping with a size knob and observable counters.

    Built on the insertion order of a plain ``dict``: a hit reinserts the
    key (moving it to the most-recent end) and an insert past ``maxsize``
    evicts the least recently used entry.  ``maxsize`` may be changed at any
    time through :meth:`resize`.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int = 1 << 16):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: Dict[Hashable, Any] = {}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The remembered value, or ``default``; a hit refreshes recency."""
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            self.misses += 1
            return default
        data[key] = value
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Remember ``key`` → ``value``, evicting the LRU entry when full."""
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.maxsize:
            del data[next(iter(data))]
            self.evictions += 1
        data[key] = value

    def resize(self, maxsize: int) -> None:
        """Change the bound, evicting LRU entries that no longer fit."""
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        data = self._data
        while len(data) > self.maxsize:
            del data[next(iter(data))]
            self.evictions += 1

    def clear(self) -> None:
        """Drop every payload; the counters survive."""
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Counters + occupancy as a plain JSON-ready dict."""
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data
