"""Symbolic expressions used by the range analyses.

The paper defines symbolic expressions by the grammar (Section 3.3)::

    E ::= n | s | min(E, E) | max(E, E) | E - E
        | E + E | E / E | E mod E | E * E

where ``n`` is an integer and ``s`` a *symbol*: a program name that cannot be
expressed as a function of other names (function parameters, results of
unknown calls, globals).  The set of symbols of a program forms its
*symbolic kernel*.

This module implements an immutable, hashable expression algebra with
aggressive canonicalisation of the linear fragment: every expression is
normalised into ``constant + sum(coefficient * atom)`` where atoms are
symbols or opaque non-linear nodes (``min``, ``max``, division, modulo and
products of non-constant expressions).  Canonicalisation is what makes the
partial-order queries of :mod:`repro.symbolic.order` decidable in the cases
the analyses care about, e.g. ``N + 1 > N`` while ``N`` and ``M`` stay
incomparable.

Infinities are first-class values (:data:`POS_INF` and :data:`NEG_INF`) with
saturating arithmetic, because interval bounds live in
``S = SE ∪ {-inf, +inf}``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Union

__all__ = [
    "SymExpr",
    "Constant",
    "Symbol",
    "Infinity",
    "MinExpr",
    "MaxExpr",
    "DivExpr",
    "ModExpr",
    "ProductExpr",
    "SumExpr",
    "POS_INF",
    "NEG_INF",
    "ZERO",
    "ONE",
    "sym",
    "const",
    "sym_add",
    "sym_sub",
    "sym_neg",
    "sym_mul",
    "sym_div",
    "sym_mod",
    "sym_min",
    "sym_max",
    "as_expr",
    "ExprLike",
]


class SymExpr:
    """Base class of all symbolic expressions.

    Instances are immutable and hashable; arithmetic operators build new
    (canonicalised) expressions.  Subclasses implement the small protocol
    consisting of :meth:`symbols`, :meth:`substitute`, :meth:`is_infinite`
    and :meth:`sort_key`.
    """

    __slots__ = ()

    # -- protocol ---------------------------------------------------------
    def symbols(self) -> FrozenSet[str]:
        """Return the set of symbol names occurring in this expression."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "ExprLike"]) -> "SymExpr":
        """Return a copy with symbols replaced according to ``mapping``."""
        raise NotImplementedError

    def is_infinite(self) -> bool:
        """True for ``+inf``/``-inf`` (never true for finite expressions)."""
        return False

    def is_constant(self) -> bool:
        """True when the expression is a plain integer constant."""
        return False

    def constant_value(self) -> Optional[int]:
        """The integer value when :meth:`is_constant`, else ``None``."""
        return None

    def sort_key(self) -> Tuple:
        """A total ordering key used only for canonical printing/hashing."""
        raise NotImplementedError

    def complexity(self) -> int:
        """Number of nodes; used to bound simplification work."""
        return 1

    # -- operator sugar ---------------------------------------------------
    def __add__(self, other: "ExprLike") -> "SymExpr":
        return sym_add(self, other)

    def __radd__(self, other: "ExprLike") -> "SymExpr":
        return sym_add(other, self)

    def __sub__(self, other: "ExprLike") -> "SymExpr":
        return sym_sub(self, other)

    def __rsub__(self, other: "ExprLike") -> "SymExpr":
        return sym_sub(other, self)

    def __mul__(self, other: "ExprLike") -> "SymExpr":
        return sym_mul(self, other)

    def __rmul__(self, other: "ExprLike") -> "SymExpr":
        return sym_mul(other, self)

    def __neg__(self) -> "SymExpr":
        return sym_neg(self)

    def __floordiv__(self, other: "ExprLike") -> "SymExpr":
        return sym_div(self, other)

    def __mod__(self, other: "ExprLike") -> "SymExpr":
        return sym_mod(self, other)


ExprLike = Union[SymExpr, int]


class Constant(SymExpr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Constant is immutable")

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return self

    def is_constant(self) -> bool:
        return True

    def constant_value(self) -> Optional[int]:
        return self.value

    def sort_key(self) -> Tuple:
        return (0, self.value)

    def __repr__(self) -> str:
        return str(self.value)

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))


class Symbol(SymExpr):
    """A member of the symbolic kernel: a name treated as an opaque value."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("symbol name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Symbol is immutable")

    def symbols(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        if self.name in mapping:
            return as_expr(mapping[self.name])
        return self

    def sort_key(self) -> Tuple:
        return (1, self.name)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Symbol) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Symbol", self.name))


class Infinity(SymExpr):
    """``+inf`` or ``-inf``; only valid at the ends of symbolic intervals."""

    __slots__ = ("sign",)

    def __init__(self, sign: int):
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        object.__setattr__(self, "sign", sign)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Infinity is immutable")

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return self

    def is_infinite(self) -> bool:
        return True

    def sort_key(self) -> Tuple:
        return (9, self.sign)

    def __repr__(self) -> str:
        return "+inf" if self.sign > 0 else "-inf"

    def __eq__(self, other) -> bool:
        return isinstance(other, Infinity) and self.sign == other.sign

    def __hash__(self) -> int:
        return hash(("Infinity", self.sign))

    def __neg__(self) -> "SymExpr":
        return NEG_INF if self.sign > 0 else POS_INF


POS_INF = Infinity(1)
NEG_INF = Infinity(-1)
ZERO = Constant(0)
ONE = Constant(1)


def _freeze_terms(terms: Mapping[SymExpr, int]) -> Tuple[Tuple[SymExpr, int], ...]:
    items = [(t, c) for t, c in terms.items() if c != 0]
    items.sort(key=lambda tc: tc[0].sort_key())
    return tuple(items)


class SumExpr(SymExpr):
    """Canonical linear combination ``offset + sum(coeff * atom)``.

    Atoms are symbols or opaque non-linear expressions.  ``SumExpr`` is never
    constructed with zero or one trivial term — the builder functions collapse
    those cases to :class:`Constant` / the atom itself.
    """

    __slots__ = ("offset", "terms")

    def __init__(self, offset: int, terms: Tuple[Tuple[SymExpr, int], ...]):
        object.__setattr__(self, "offset", int(offset))
        object.__setattr__(self, "terms", terms)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("SumExpr is immutable")

    def symbols(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for atom, _ in self.terms:
            out = out | atom.symbols()
        return out

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        result: SymExpr = Constant(self.offset)
        for atom, coeff in self.terms:
            result = sym_add(result, sym_mul(atom.substitute(mapping), coeff))
        return result

    def sort_key(self) -> Tuple:
        return (5, self.offset, tuple((a.sort_key(), c) for a, c in self.terms))

    def complexity(self) -> int:
        return 1 + sum(a.complexity() for a, _ in self.terms)

    def __repr__(self) -> str:
        parts = []
        for atom, coeff in self.terms:
            if coeff == 1:
                parts.append(f"{atom!r}")
            elif coeff == -1:
                parts.append(f"-{atom!r}")
            else:
                parts.append(f"{coeff}*{atom!r}")
        if self.offset or not parts:
            parts.append(str(self.offset))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SumExpr)
            and self.offset == other.offset
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash(("SumExpr", self.offset, self.terms))


class _BinaryAtom(SymExpr):
    """Common machinery for opaque binary nodes (min, max, div, mod, mul)."""

    __slots__ = ("lhs", "rhs")
    _tag = "?"
    _rank = 6

    def __init__(self, lhs: SymExpr, rhs: SymExpr):
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError(f"{type(self).__name__} is immutable")

    def symbols(self) -> FrozenSet[str]:
        return self.lhs.symbols() | self.rhs.symbols()

    def sort_key(self) -> Tuple:
        return (self._rank, self._tag, self.lhs.sort_key(), self.rhs.sort_key())

    def complexity(self) -> int:
        return 1 + self.lhs.complexity() + self.rhs.complexity()

    def __repr__(self) -> str:
        return f"{self._tag}({self.lhs!r}, {self.rhs!r})"

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.lhs, self.rhs))


class MinExpr(_BinaryAtom):
    """``min(lhs, rhs)``; commutative — operands stored in canonical order."""

    __slots__ = ()
    _tag = "min"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_min(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class MaxExpr(_BinaryAtom):
    """``max(lhs, rhs)``; commutative — operands stored in canonical order."""

    __slots__ = ()
    _tag = "max"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_max(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class DivExpr(_BinaryAtom):
    """Integer division ``lhs / rhs`` kept opaque unless both are constants."""

    __slots__ = ()
    _tag = "div"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_div(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class ModExpr(_BinaryAtom):
    """``lhs mod rhs`` kept opaque unless both are constants."""

    __slots__ = ()
    _tag = "mod"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_mod(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class ProductExpr(_BinaryAtom):
    """A product of two non-constant expressions (non-linear atom)."""

    __slots__ = ()
    _tag = "mul"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_mul(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def as_expr(value: ExprLike) -> SymExpr:
    """Coerce an ``int`` or :class:`SymExpr` into a :class:`SymExpr`."""
    if isinstance(value, SymExpr):
        return value
    if isinstance(value, bool):  # guard against accidental booleans
        return Constant(int(value))
    if isinstance(value, int):
        return Constant(value)
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


def sym(name: str) -> Symbol:
    """Create a kernel symbol."""
    return Symbol(name)


def const(value: int) -> Constant:
    """Create an integer constant."""
    return Constant(value)


def _decompose(expr: SymExpr) -> Tuple[int, Dict[SymExpr, int]]:
    """Split a finite expression into ``(constant offset, {atom: coeff})``."""
    if isinstance(expr, Constant):
        return expr.value, {}
    if isinstance(expr, SumExpr):
        return expr.offset, dict(expr.terms)
    return 0, {expr: 1}


def _recompose(offset: int, terms: Dict[SymExpr, int]) -> SymExpr:
    terms = {a: c for a, c in terms.items() if c != 0}
    if not terms:
        return Constant(offset)
    if offset == 0 and len(terms) == 1:
        (atom, coeff), = terms.items()
        if coeff == 1:
            return atom
    return SumExpr(offset, _freeze_terms(terms))


def sym_add(a: ExprLike, b: ExprLike) -> SymExpr:
    """Saturating symbolic addition with linear canonicalisation."""
    a, b = as_expr(a), as_expr(b)
    if a.is_infinite() and b.is_infinite():
        if a == b:
            return a
        raise ArithmeticError("cannot add +inf and -inf")
    if a.is_infinite():
        return a
    if b.is_infinite():
        return b
    off_a, terms_a = _decompose(a)
    off_b, terms_b = _decompose(b)
    terms = dict(terms_a)
    for atom, coeff in terms_b.items():
        terms[atom] = terms.get(atom, 0) + coeff
    return _recompose(off_a + off_b, terms)


def sym_neg(a: ExprLike) -> SymExpr:
    """Negation; flips infinities."""
    a = as_expr(a)
    if a.is_infinite():
        return NEG_INF if a is POS_INF or a == POS_INF else POS_INF
    off, terms = _decompose(a)
    return _recompose(-off, {atom: -coeff for atom, coeff in terms.items()})


def sym_sub(a: ExprLike, b: ExprLike) -> SymExpr:
    """Saturating symbolic subtraction."""
    a, b = as_expr(a), as_expr(b)
    if a.is_infinite() and b.is_infinite():
        if a != b:
            return a
        raise ArithmeticError("cannot subtract equal infinities")
    return sym_add(a, sym_neg(b))


def sym_mul(a: ExprLike, b: ExprLike) -> SymExpr:
    """Symbolic multiplication.

    Multiplication by a constant distributes over the linear form; a product
    of two non-constant expressions becomes an opaque :class:`ProductExpr`
    atom.  Multiplying an infinity by a constant keeps the usual sign rules;
    multiplying an infinity by a non-constant expression is rejected because
    the sign of the result is unknowable.
    """
    a, b = as_expr(a), as_expr(b)
    if a.is_infinite() or b.is_infinite():
        inf, other = (a, b) if a.is_infinite() else (b, a)
        if other.is_constant():
            value = other.constant_value()
            if value == 0:
                return ZERO
            assert isinstance(inf, Infinity)
            return inf if value > 0 else -inf
        if other.is_infinite():
            assert isinstance(inf, Infinity) and isinstance(other, Infinity)
            return POS_INF if inf.sign == other.sign else NEG_INF
        raise ArithmeticError("cannot multiply infinity by a symbolic expression")
    if a.is_constant():
        a, b = b, a
    if b.is_constant():
        factor = b.constant_value()
        assert factor is not None
        if factor == 0:
            return ZERO
        off, terms = _decompose(a)
        return _recompose(off * factor, {atom: coeff * factor for atom, coeff in terms.items()})
    lhs, rhs = sorted((a, b), key=lambda e: e.sort_key())
    return ProductExpr(lhs, rhs)


def sym_div(a: ExprLike, b: ExprLike) -> SymExpr:
    """Integer (floor) division; folded only when both sides are constants."""
    a, b = as_expr(a), as_expr(b)
    if b.is_constant() and b.constant_value() == 0:
        raise ZeroDivisionError("symbolic division by constant zero")
    if b.is_constant() and b.constant_value() == 1:
        return a
    if a.is_constant() and b.is_constant():
        av, bv = a.constant_value(), b.constant_value()
        assert av is not None and bv is not None
        quotient = abs(av) // abs(bv)
        if (av < 0) != (bv < 0):
            quotient = -quotient
        return Constant(quotient)  # C-style truncating division
    if a.is_constant() and a.constant_value() == 0:
        return ZERO
    if a.is_infinite() or b.is_infinite():
        raise ArithmeticError("cannot divide with infinite operands")
    return DivExpr(a, b)


def sym_mod(a: ExprLike, b: ExprLike) -> SymExpr:
    """Modulo; folded only when both sides are constants."""
    a, b = as_expr(a), as_expr(b)
    if b.is_constant() and b.constant_value() == 0:
        raise ZeroDivisionError("symbolic modulo by constant zero")
    if a.is_constant() and b.is_constant():
        av, bv = a.constant_value(), b.constant_value()
        assert av is not None and bv is not None
        remainder = abs(av) % abs(bv)
        return Constant(-remainder if av < 0 else remainder)
    if a.is_infinite() or b.is_infinite():
        raise ArithmeticError("cannot take modulo with infinite operands")
    return ModExpr(a, b)


def _fold_minmax(a: SymExpr, b: SymExpr, want_min: bool) -> Optional[SymExpr]:
    """Resolve ``min``/``max`` when the operands are comparable."""
    from .order import compare, Ordering  # local import to avoid a cycle

    ordering = compare(a, b)
    if ordering is Ordering.EQUAL:
        # Provably equal but possibly syntactically different (e.g.
        # ``max(0, N)`` vs ``max(0, max(-1, N))``): pick a canonical
        # representative so folding is order-independent.
        return min(a, b, key=lambda e: (e.complexity(), e.sort_key()))
    if ordering is Ordering.LESS or ordering is Ordering.LESS_EQUAL:
        return a if want_min else b
    if ordering is Ordering.GREATER or ordering is Ordering.GREATER_EQUAL:
        return b if want_min else a
    return None


def sym_min(a: ExprLike, b: ExprLike) -> SymExpr:
    """``min`` over ``S``; resolved eagerly when operands are comparable."""
    a, b = as_expr(a), as_expr(b)
    if a == NEG_INF or b == NEG_INF:
        return NEG_INF
    if a == POS_INF:
        return b
    if b == POS_INF:
        return a
    folded = _fold_minmax(a, b, want_min=True)
    if folded is not None:
        return folded
    lhs, rhs = sorted((a, b), key=lambda e: e.sort_key())
    return MinExpr(lhs, rhs)


def sym_max(a: ExprLike, b: ExprLike) -> SymExpr:
    """``max`` over ``S``; resolved eagerly when operands are comparable."""
    a, b = as_expr(a), as_expr(b)
    if a == POS_INF or b == POS_INF:
        return POS_INF
    if a == NEG_INF:
        return b
    if b == NEG_INF:
        return a
    folded = _fold_minmax(a, b, want_min=False)
    if folded is not None:
        return folded
    lhs, rhs = sorted((a, b), key=lambda e: e.sort_key())
    return MaxExpr(lhs, rhs)
