"""Symbolic expressions used by the range analyses.

The paper defines symbolic expressions by the grammar (Section 3.3)::

    E ::= n | s | min(E, E) | max(E, E) | E - E
        | E + E | E / E | E mod E | E * E

where ``n`` is an integer and ``s`` a *symbol*: a program name that cannot be
expressed as a function of other names (function parameters, results of
unknown calls, globals).  The set of symbols of a program forms its
*symbolic kernel*.

This module implements an immutable, hashable expression algebra with
aggressive canonicalisation of the linear fragment: every expression is
normalised into ``constant + sum(coefficient * atom)`` where atoms are
symbols or opaque non-linear nodes (``min``, ``max``, division, modulo and
products of non-constant expressions).  Canonicalisation is what makes the
partial-order queries of :mod:`repro.symbolic.order` decidable in the cases
the analyses care about, e.g. ``N + 1 > N`` while ``N`` and ``M`` stay
incomparable.

Expressions are **hash-consed**: every constructor routes through a
per-process intern table keyed on structural content, so two structurally
equal expressions are one object.  Structural equality is therefore
identity (``a == b`` iff ``a is b``), ``__hash__`` is a slot computed once
at construction, and ``symbols()``/``sort_key()``/``complexity()`` return
values cached at construction time.  Interned expressions are immortal for
the lifetime of the process (the table holds strong references), which is
exactly what lets the derived-operation memos of
:mod:`repro.symbolic.order` key on ``id()`` without recycling hazards.

Infinities are first-class values (:data:`POS_INF` and :data:`NEG_INF`) with
saturating arithmetic, because interval bounds live in
``S = SE ∪ {-inf, +inf}``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Union

__all__ = [
    "SymExpr",
    "Constant",
    "Symbol",
    "Infinity",
    "MinExpr",
    "MaxExpr",
    "DivExpr",
    "ModExpr",
    "ProductExpr",
    "SumExpr",
    "POS_INF",
    "NEG_INF",
    "ZERO",
    "ONE",
    "sym",
    "const",
    "sym_add",
    "sym_sub",
    "sym_neg",
    "sym_mul",
    "sym_div",
    "sym_mod",
    "sym_min",
    "sym_max",
    "as_expr",
    "ExprLike",
    "intern_table_size",
]

#: The per-process intern table: structural key → the unique instance.
#: Never cleared — clearing would let a later structurally-equal expression
#: coexist with a pre-clear twin, breaking the identity-equality invariant
#: every consumer (and every ``id``-keyed memo) relies on.
_INTERN: Dict[tuple, "SymExpr"] = {}

_EMPTY_SYMBOLS: FrozenSet[str] = frozenset()


def intern_table_size() -> int:
    """Number of live interned expressions (monitoring/tests)."""
    return len(_INTERN)


class SymExpr:
    """Base class of all symbolic expressions.

    Instances are immutable, interned and hashable; arithmetic operators
    build new (canonicalised, interned) expressions.  Subclasses implement
    the small protocol consisting of :meth:`substitute`, :meth:`is_infinite`
    and the cached :meth:`symbols`/:meth:`sort_key`/:meth:`complexity`.
    """

    __slots__ = ("_hash", "_symbols", "_sort_key", "_complexity")

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError(f"{type(self).__name__} is immutable")

    # -- protocol ---------------------------------------------------------
    def symbols(self) -> FrozenSet[str]:
        """The set of symbol names occurring in this expression (cached)."""
        return self._symbols

    def substitute(self, mapping: Mapping[str, "ExprLike"]) -> "SymExpr":
        """Return a copy with symbols replaced according to ``mapping``."""
        raise NotImplementedError

    def is_infinite(self) -> bool:
        """True for ``+inf``/``-inf`` (never true for finite expressions)."""
        return False

    def is_constant(self) -> bool:
        """True when the expression is a plain integer constant."""
        return False

    def constant_value(self) -> Optional[int]:
        """The integer value when :meth:`is_constant`, else ``None``."""
        return None

    def sort_key(self) -> Tuple:
        """A total ordering key used only for canonical printing/hashing."""
        return self._sort_key

    def complexity(self) -> int:
        """Number of nodes; used to bound simplification work."""
        return self._complexity

    # -- identity semantics -----------------------------------------------
    # Interning makes structural equality coincide with identity: the
    # comparisons below are O(1) however deep the expressions are.
    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    def __hash__(self) -> int:
        return self._hash

    # -- operator sugar ---------------------------------------------------
    def __add__(self, other: "ExprLike") -> "SymExpr":
        return sym_add(self, other)

    def __radd__(self, other: "ExprLike") -> "SymExpr":
        return sym_add(other, self)

    def __sub__(self, other: "ExprLike") -> "SymExpr":
        return sym_sub(self, other)

    def __rsub__(self, other: "ExprLike") -> "SymExpr":
        return sym_sub(other, self)

    def __mul__(self, other: "ExprLike") -> "SymExpr":
        return sym_mul(self, other)

    def __rmul__(self, other: "ExprLike") -> "SymExpr":
        return sym_mul(other, self)

    def __neg__(self) -> "SymExpr":
        return sym_neg(self)

    def __floordiv__(self, other: "ExprLike") -> "SymExpr":
        return sym_div(self, other)

    def __mod__(self, other: "ExprLike") -> "SymExpr":
        return sym_mod(self, other)


ExprLike = Union[SymExpr, int]

_set = object.__setattr__


class Constant(SymExpr):
    """An integer literal."""

    __slots__ = ("value",)

    def __new__(cls, value: int):
        value = int(value)
        key = ("n", value)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set(self, "value", value)
        _set(self, "_symbols", _EMPTY_SYMBOLS)
        _set(self, "_sort_key", (0, value))
        _set(self, "_complexity", 1)
        _set(self, "_hash", hash(key))
        _INTERN[key] = self
        return self

    def __reduce__(self):
        return (Constant, (self.value,))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return self

    def is_constant(self) -> bool:
        return True

    def constant_value(self) -> Optional[int]:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


class Symbol(SymExpr):
    """A member of the symbolic kernel: a name treated as an opaque value."""

    __slots__ = ("name",)

    def __new__(cls, name: str):
        if not name:
            raise ValueError("symbol name must be non-empty")
        key = ("s", name)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "_symbols", frozenset((name,)))
        _set(self, "_sort_key", (1, name))
        _set(self, "_complexity", 1)
        _set(self, "_hash", hash(key))
        _INTERN[key] = self
        return self

    def __reduce__(self):
        return (Symbol, (self.name,))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        if self.name in mapping:
            return as_expr(mapping[self.name])
        return self

    def __repr__(self) -> str:
        return self.name


class Infinity(SymExpr):
    """``+inf`` or ``-inf``; only valid at the ends of symbolic intervals.

    The two instances are the interned singletons :data:`POS_INF` and
    :data:`NEG_INF` — ``Infinity(sign)`` always returns one of them, so
    ``is`` comparisons against the singletons are valid everywhere.
    """

    __slots__ = ("sign",)

    def __new__(cls, sign: int):
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        key = ("inf", sign)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set(self, "sign", sign)
        _set(self, "_symbols", _EMPTY_SYMBOLS)
        _set(self, "_sort_key", (9, sign))
        _set(self, "_complexity", 1)
        _set(self, "_hash", hash(key))
        _INTERN[key] = self
        return self

    def __reduce__(self):
        return (Infinity, (self.sign,))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return self

    def is_infinite(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "+inf" if self.sign > 0 else "-inf"

    def __neg__(self) -> "SymExpr":
        return NEG_INF if self.sign > 0 else POS_INF


POS_INF = Infinity(1)
NEG_INF = Infinity(-1)
ZERO = Constant(0)
ONE = Constant(1)


def _freeze_terms(terms: Mapping[SymExpr, int]) -> Tuple[Tuple[SymExpr, int], ...]:
    items = [(t, c) for t, c in terms.items() if c != 0]
    items.sort(key=lambda tc: tc[0]._sort_key)
    return tuple(items)


class SumExpr(SymExpr):
    """Canonical linear combination ``offset + sum(coeff * atom)``.

    Atoms are symbols or opaque non-linear expressions.  ``SumExpr`` is never
    constructed with zero or one trivial term — the builder functions collapse
    those cases to :class:`Constant` / the atom itself.
    """

    __slots__ = ("offset", "terms")

    def __new__(cls, offset: int, terms: Tuple[Tuple[SymExpr, int], ...]):
        offset = int(offset)
        key = ("+", offset, terms)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set(self, "offset", offset)
        _set(self, "terms", terms)
        symbols = _EMPTY_SYMBOLS
        complexity = 1
        for atom, _ in terms:
            symbols = symbols | atom._symbols
            complexity += atom._complexity
        _set(self, "_symbols", symbols)
        _set(self, "_sort_key",
             (5, offset, tuple((a._sort_key, c) for a, c in terms)))
        _set(self, "_complexity", complexity)
        _set(self, "_hash", hash(key))
        _INTERN[key] = self
        return self

    def __reduce__(self):
        return (SumExpr, (self.offset, self.terms))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        result: SymExpr = Constant(self.offset)
        for atom, coeff in self.terms:
            result = sym_add(result, sym_mul(atom.substitute(mapping), coeff))
        return result

    def __repr__(self) -> str:
        parts = []
        for atom, coeff in self.terms:
            if coeff == 1:
                parts.append(f"{atom!r}")
            elif coeff == -1:
                parts.append(f"-{atom!r}")
            else:
                parts.append(f"{coeff}*{atom!r}")
        if self.offset or not parts:
            parts.append(str(self.offset))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


class _BinaryAtom(SymExpr):
    """Common machinery for opaque binary nodes (min, max, div, mod, mul)."""

    __slots__ = ("lhs", "rhs")
    _tag = "?"
    _rank = 6

    def __new__(cls, lhs: SymExpr, rhs: SymExpr):
        key = (cls._tag, lhs, rhs)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set(self, "lhs", lhs)
        _set(self, "rhs", rhs)
        _set(self, "_symbols", lhs._symbols | rhs._symbols)
        _set(self, "_sort_key", (cls._rank, cls._tag, lhs._sort_key, rhs._sort_key))
        _set(self, "_complexity", 1 + lhs._complexity + rhs._complexity)
        _set(self, "_hash", hash(key))
        _INTERN[key] = self
        return self

    def __reduce__(self):
        return (type(self), (self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"{self._tag}({self.lhs!r}, {self.rhs!r})"


class MinExpr(_BinaryAtom):
    """``min(lhs, rhs)``; commutative — operands stored in canonical order."""

    __slots__ = ()
    _tag = "min"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_min(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class MaxExpr(_BinaryAtom):
    """``max(lhs, rhs)``; commutative — operands stored in canonical order."""

    __slots__ = ()
    _tag = "max"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_max(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class DivExpr(_BinaryAtom):
    """Integer division ``lhs / rhs`` kept opaque unless both are constants."""

    __slots__ = ()
    _tag = "div"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_div(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class ModExpr(_BinaryAtom):
    """``lhs mod rhs`` kept opaque unless both are constants."""

    __slots__ = ()
    _tag = "mod"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_mod(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


class ProductExpr(_BinaryAtom):
    """A product of two non-constant expressions (non-linear atom)."""

    __slots__ = ()
    _tag = "mul"

    def substitute(self, mapping: Mapping[str, ExprLike]) -> SymExpr:
        return sym_mul(self.lhs.substitute(mapping), self.rhs.substitute(mapping))


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def as_expr(value: ExprLike) -> SymExpr:
    """Coerce an ``int`` or :class:`SymExpr` into a :class:`SymExpr`."""
    if isinstance(value, SymExpr):
        return value
    if isinstance(value, bool):  # guard against accidental booleans
        return Constant(int(value))
    if isinstance(value, int):
        return Constant(value)
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


def sym(name: str) -> Symbol:
    """Create a kernel symbol."""
    return Symbol(name)


def const(value: int) -> Constant:
    """Create an integer constant."""
    return Constant(value)


def _decompose(expr: SymExpr) -> Tuple[int, Dict[SymExpr, int]]:
    """Split a finite expression into ``(constant offset, {atom: coeff})``."""
    if type(expr) is Constant:
        return expr.value, {}
    if type(expr) is SumExpr:
        return expr.offset, dict(expr.terms)
    return 0, {expr: 1}


def _recompose(offset: int, terms: Dict[SymExpr, int]) -> SymExpr:
    terms = {a: c for a, c in terms.items() if c != 0}
    if not terms:
        return Constant(offset)
    if offset == 0 and len(terms) == 1:
        (atom, coeff), = terms.items()
        if coeff == 1:
            return atom
    return SumExpr(offset, _freeze_terms(terms))


def sym_add(a: ExprLike, b: ExprLike) -> SymExpr:
    """Saturating symbolic addition with linear canonicalisation."""
    a, b = as_expr(a), as_expr(b)
    type_a, type_b = type(a), type(b)
    if type_a is Constant and type_b is Constant:
        return Constant(a.value + b.value)
    if a.is_infinite() and b.is_infinite():
        if a is b:
            return a
        raise ArithmeticError("cannot add +inf and -inf")
    if a.is_infinite():
        return a
    if b.is_infinite():
        return b
    if type_a is Constant and a.value == 0:
        return b
    if type_b is Constant and b.value == 0:
        return a
    off_a, terms_a = _decompose(a)
    off_b, terms_b = _decompose(b)
    terms = dict(terms_a)
    for atom, coeff in terms_b.items():
        terms[atom] = terms.get(atom, 0) + coeff
    return _recompose(off_a + off_b, terms)


def sym_neg(a: ExprLike) -> SymExpr:
    """Negation; flips infinities."""
    a = as_expr(a)
    if type(a) is Constant:
        return Constant(-a.value)
    if a.is_infinite():
        return NEG_INF if a is POS_INF else POS_INF
    off, terms = _decompose(a)
    return _recompose(-off, {atom: -coeff for atom, coeff in terms.items()})


def sym_sub(a: ExprLike, b: ExprLike) -> SymExpr:
    """Saturating symbolic subtraction."""
    a, b = as_expr(a), as_expr(b)
    if a.is_infinite() and b.is_infinite():
        if a is not b:
            return a
        raise ArithmeticError("cannot subtract equal infinities")
    if a is b:
        # Identical finite expressions cancel exactly (interning makes this
        # an O(1) test rather than a structural walk).
        return ZERO
    return sym_add(a, sym_neg(b))


def sym_mul(a: ExprLike, b: ExprLike) -> SymExpr:
    """Symbolic multiplication.

    Multiplication by a constant distributes over the linear form; a product
    of two non-constant expressions becomes an opaque :class:`ProductExpr`
    atom.  Multiplying an infinity by a constant keeps the usual sign rules;
    multiplying an infinity by a non-constant expression is rejected because
    the sign of the result is unknowable.
    """
    a, b = as_expr(a), as_expr(b)
    if a.is_infinite() or b.is_infinite():
        inf, other = (a, b) if a.is_infinite() else (b, a)
        if other.is_constant():
            value = other.constant_value()
            if value == 0:
                return ZERO
            assert isinstance(inf, Infinity)
            return inf if value > 0 else -inf
        if other.is_infinite():
            assert isinstance(inf, Infinity) and isinstance(other, Infinity)
            return POS_INF if inf.sign == other.sign else NEG_INF
        raise ArithmeticError("cannot multiply infinity by a symbolic expression")
    if a.is_constant():
        a, b = b, a
    if b.is_constant():
        factor = b.constant_value()
        assert factor is not None
        if factor == 0:
            return ZERO
        if factor == 1:
            return a
        off, terms = _decompose(a)
        return _recompose(off * factor, {atom: coeff * factor for atom, coeff in terms.items()})
    lhs, rhs = sorted((a, b), key=lambda e: e._sort_key)
    return ProductExpr(lhs, rhs)


def sym_div(a: ExprLike, b: ExprLike) -> SymExpr:
    """Integer (floor) division; folded only when both sides are constants."""
    a, b = as_expr(a), as_expr(b)
    if b.is_constant() and b.constant_value() == 0:
        raise ZeroDivisionError("symbolic division by constant zero")
    if b.is_constant() and b.constant_value() == 1:
        return a
    if a.is_constant() and b.is_constant():
        av, bv = a.constant_value(), b.constant_value()
        assert av is not None and bv is not None
        quotient = abs(av) // abs(bv)
        if (av < 0) != (bv < 0):
            quotient = -quotient
        return Constant(quotient)  # C-style truncating division
    if a.is_constant() and a.constant_value() == 0:
        return ZERO
    if a.is_infinite() or b.is_infinite():
        raise ArithmeticError("cannot divide with infinite operands")
    return DivExpr(a, b)


def sym_mod(a: ExprLike, b: ExprLike) -> SymExpr:
    """Modulo; folded only when both sides are constants."""
    a, b = as_expr(a), as_expr(b)
    if b.is_constant() and b.constant_value() == 0:
        raise ZeroDivisionError("symbolic modulo by constant zero")
    if a.is_constant() and b.is_constant():
        av, bv = a.constant_value(), b.constant_value()
        assert av is not None and bv is not None
        remainder = abs(av) % abs(bv)
        return Constant(-remainder if av < 0 else remainder)
    if a.is_infinite() or b.is_infinite():
        raise ArithmeticError("cannot take modulo with infinite operands")
    return ModExpr(a, b)


def _fold_minmax(a: SymExpr, b: SymExpr, want_min: bool) -> Optional[SymExpr]:
    """Resolve ``min``/``max`` when the operands are comparable."""
    from .order import compare, Ordering  # local import to avoid a cycle

    ordering = compare(a, b)
    if ordering is Ordering.EQUAL:
        # Provably equal but possibly syntactically different (e.g.
        # ``max(0, N)`` vs ``max(0, max(-1, N))``): pick a canonical
        # representative so folding is order-independent.
        return min(a, b, key=lambda e: (e._complexity, e._sort_key))
    if ordering is Ordering.LESS or ordering is Ordering.LESS_EQUAL:
        return a if want_min else b
    if ordering is Ordering.GREATER or ordering is Ordering.GREATER_EQUAL:
        return b if want_min else a
    return None


def sym_min(a: ExprLike, b: ExprLike) -> SymExpr:
    """``min`` over ``S``; resolved eagerly when operands are comparable."""
    a, b = as_expr(a), as_expr(b)
    if a is b:
        return a
    if a is NEG_INF or b is NEG_INF:
        return NEG_INF
    if a is POS_INF:
        return b
    if b is POS_INF:
        return a
    if type(a) is Constant and type(b) is Constant:
        return a if a.value <= b.value else b
    folded = _fold_minmax(a, b, want_min=True)
    if folded is not None:
        return folded
    lhs, rhs = sorted((a, b), key=lambda e: e._sort_key)
    return MinExpr(lhs, rhs)


def sym_max(a: ExprLike, b: ExprLike) -> SymExpr:
    """``max`` over ``S``; resolved eagerly when operands are comparable."""
    a, b = as_expr(a), as_expr(b)
    if a is b:
        return a
    if a is POS_INF or b is POS_INF:
        return POS_INF
    if a is NEG_INF:
        return b
    if b is NEG_INF:
        return a
    if type(a) is Constant and type(b) is Constant:
        return a if a.value >= b.value else b
    folded = _fold_minmax(a, b, want_min=False)
    if folded is not None:
        return folded
    lhs, rhs = sorted((a, b), key=lambda e: e._sort_key)
    return MaxExpr(lhs, rhs)
