"""Partial-order comparison of symbolic expressions.

The paper orders ``S = SE ∪ {-inf, +inf}`` partially: integers are ordered
as usual, ``N < N + 1`` for any symbol ``N``, but two distinct kernel symbols
(``N`` and ``M``) are incomparable.  Comparisons drive interval emptiness
checks (the disambiguation criteria) and ``min``/``max`` folding, so they are
deliberately *conservative*: the answer :data:`Ordering.UNKNOWN` is always
sound.

Two complementary decision procedures are combined:

* a **difference test** on the canonical linear form — ``a ≤ b`` when
  ``b - a`` simplifies to a non-negative constant (this is what proves
  ``N < N + 1``);
* **structural rules** for ``min``/``max`` — e.g. ``min(x, y) ≤ b`` whenever
  one arm is ``≤ b``, and ``a ≤ max(x, y)`` whenever ``a`` is ``≤`` one arm
  (this is what proves ``min(N - 1, …) < max(N, …)``).

Because expressions are hash-consed (structural equality is identity and
instances are immortal per process), both :func:`compare` and the inner
difference test memoize on ``(id(a), id(b))`` through bounded LRU caches —
the same operand pair recurs thousands of times per fixpoint, and a cache
hit replaces the whole recursive decision procedure with one dict probe.
The caches are transparent: a memoized answer is exactly what the uncached
procedure would return.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from .cache import BoundedMemo
from .expr import (
    Constant,
    ExprLike,
    MaxExpr,
    MinExpr,
    NEG_INF,
    POS_INF,
    SymExpr,
    as_expr,
    sym_sub,
)

__all__ = [
    "Ordering",
    "compare",
    "compare_uncached",
    "definitely_lt",
    "definitely_le",
    "definitely_gt",
    "definitely_ge",
    "definitely_eq",
    "definitely_ne",
    "compare_memo_stats",
    "resize_compare_memo",
]

#: Maximum recursion depth of the structural min/max rules.
_MAX_DEPTH = 6


class Ordering(enum.Enum):
    """Result of comparing two symbolic expressions."""

    LESS = "<"
    LESS_EQUAL = "<="
    EQUAL = "=="
    GREATER_EQUAL = ">="
    GREATER = ">"
    UNKNOWN = "?"


#: ``compare(b, a)`` is the mirror of ``compare(a, b)``: one decision
#: procedure run fills both cache directions.
_MIRROR: Dict[Ordering, Ordering] = {
    Ordering.LESS: Ordering.GREATER,
    Ordering.LESS_EQUAL: Ordering.GREATER_EQUAL,
    Ordering.EQUAL: Ordering.EQUAL,
    Ordering.GREATER_EQUAL: Ordering.LESS_EQUAL,
    Ordering.GREATER: Ordering.LESS,
    Ordering.UNKNOWN: Ordering.UNKNOWN,
}

#: Memoized orderings keyed by ``(id(a), id(b))``; safe because interned
#: expressions are immortal, bounded because a long-lived daemon is not.
_COMPARE_MEMO = BoundedMemo(maxsize=1 << 17)

#: Memoized difference bounds keyed the same way (``None`` results included).
_DIFFERENCE_MEMO = BoundedMemo(maxsize=1 << 17)

_MISS = object()


def compare_memo_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction counters of the order-layer memo caches."""
    return {"compare": _COMPARE_MEMO.stats(),
            "difference": _DIFFERENCE_MEMO.stats()}


def resize_compare_memo(maxsize: int) -> None:
    """The size knob: rebound both order-layer memo caches."""
    _COMPARE_MEMO.resize(maxsize)
    _DIFFERENCE_MEMO.resize(maxsize)


def _difference_lower_bound(a: SymExpr, b: SymExpr) -> Optional[int]:
    """A constant ``c`` with ``b - a >= c``, when one is syntactically evident."""
    key = (id(a), id(b))
    cached = _DIFFERENCE_MEMO.get(key, _MISS)
    if cached is not _MISS:
        return cached
    bound = _difference_lower_bound_uncached(a, b)
    _DIFFERENCE_MEMO.put(key, bound)
    return bound


def _difference_lower_bound_uncached(a: SymExpr, b: SymExpr) -> Optional[int]:
    try:
        diff = sym_sub(b, a)
    except ArithmeticError:
        return None
    if isinstance(diff, Constant):
        return diff.value
    if isinstance(diff, MaxExpr):
        # max(x, y) >= x: any constant arm is a lower bound of the difference.
        bounds = [arm.value for arm in (diff.lhs, diff.rhs) if isinstance(arm, Constant)]
        if bounds:
            return max(bounds)
    if isinstance(diff, MinExpr):
        # min(x, y) >= c only when both arms are >= c.
        if isinstance(diff.lhs, Constant) and isinstance(diff.rhs, Constant):
            return min(diff.lhs.value, diff.rhs.value)
    return None


def _le(a: SymExpr, b: SymExpr, depth: int, *, strict: bool) -> bool:
    """Provable ``a <= b`` (or ``a < b`` when ``strict``)."""
    if a is NEG_INF or b is POS_INF:
        # -inf <= anything and anything <= +inf; strictness holds unless equal.
        return not (strict and a is b)
    if a is POS_INF or b is NEG_INF:
        return False
    if not strict and a is b:
        return True
    bound = _difference_lower_bound(a, b)
    if bound is not None and (bound > 0 if strict else bound >= 0):
        return True
    if depth <= 0:
        return False
    # min(x, y) <= b when either arm already is (min is below both arms).
    if isinstance(a, MinExpr):
        if any(_le(arm, b, depth - 1, strict=strict) for arm in (a.lhs, a.rhs)):
            return True
        # ...and also when both arms are (needed when b itself is a min).
        if all(_le(arm, b, depth - 1, strict=strict) for arm in (a.lhs, a.rhs)):
            return True
    # max(x, y) <= b only when both arms are.
    if isinstance(a, MaxExpr):
        if all(_le(arm, b, depth - 1, strict=strict) for arm in (a.lhs, a.rhs)):
            return True
    # a <= max(x, y) when a is below either arm.
    if isinstance(b, MaxExpr):
        if any(_le(a, arm, depth - 1, strict=strict) for arm in (b.lhs, b.rhs)):
            return True
    # a <= min(x, y) only when a is below both arms.
    if isinstance(b, MinExpr):
        if all(_le(a, arm, depth - 1, strict=strict) for arm in (b.lhs, b.rhs)):
            return True
    return False


def compare(a: ExprLike, b: ExprLike) -> Ordering:
    """Compare ``a`` and ``b`` under the symbolic partial order.

    Returns :data:`Ordering.UNKNOWN` whenever the relation cannot be proven
    purely syntactically (after linear canonicalisation).  Answers are
    memoized per identity pair (hash-consing makes that sound) together
    with the mirrored pair.
    """
    a, b = as_expr(a), as_expr(b)
    if a is b:
        return Ordering.EQUAL
    key = (id(a), id(b))
    cached = _COMPARE_MEMO.get(key)
    if cached is not None:
        return cached
    ordering = compare_uncached(a, b)
    _COMPARE_MEMO.put(key, ordering)
    _COMPARE_MEMO.put((id(b), id(a)), _MIRROR[ordering])
    return ordering


def compare_uncached(a: ExprLike, b: ExprLike) -> Ordering:
    """The raw decision procedure behind :func:`compare` (no memo).

    Exposed so tests can check the memoized path against this oracle.
    """
    a, b = as_expr(a), as_expr(b)
    if a is b:
        return Ordering.EQUAL
    if a is NEG_INF or b is POS_INF:
        return Ordering.LESS
    if a is POS_INF or b is NEG_INF:
        return Ordering.GREATER
    if _le(a, b, _MAX_DEPTH, strict=True):
        return Ordering.LESS
    if _le(b, a, _MAX_DEPTH, strict=True):
        return Ordering.GREATER
    a_le_b = _le(a, b, _MAX_DEPTH, strict=False)
    b_le_a = _le(b, a, _MAX_DEPTH, strict=False)
    if a_le_b and b_le_a:
        return Ordering.EQUAL
    if a_le_b:
        return Ordering.LESS_EQUAL
    if b_le_a:
        return Ordering.GREATER_EQUAL
    return Ordering.UNKNOWN


def definitely_lt(a: ExprLike, b: ExprLike) -> bool:
    """True only when ``a < b`` is provable."""
    return compare(a, b) is Ordering.LESS


def definitely_le(a: ExprLike, b: ExprLike) -> bool:
    """True only when ``a <= b`` is provable."""
    return compare(a, b) in (Ordering.LESS, Ordering.LESS_EQUAL, Ordering.EQUAL)


def definitely_gt(a: ExprLike, b: ExprLike) -> bool:
    """True only when ``a > b`` is provable."""
    return compare(a, b) is Ordering.GREATER


def definitely_ge(a: ExprLike, b: ExprLike) -> bool:
    """True only when ``a >= b`` is provable."""
    return compare(a, b) in (Ordering.GREATER, Ordering.GREATER_EQUAL, Ordering.EQUAL)


def definitely_eq(a: ExprLike, b: ExprLike) -> bool:
    """True only when ``a == b`` is provable."""
    return compare(a, b) is Ordering.EQUAL


def definitely_ne(a: ExprLike, b: ExprLike) -> bool:
    """True only when ``a != b`` is provable."""
    return compare(a, b) in (Ordering.LESS, Ordering.GREATER)
