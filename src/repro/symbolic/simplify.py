"""Utilities for evaluating and bounding symbolic expressions.

Besides construction-time canonicalisation (:mod:`repro.symbolic.expr`), the
analyses need two services:

* **concrete evaluation** — replacing every kernel symbol by an integer and
  computing the resulting value.  This is how the test-suite checks that the
  abstract ranges really enclose the concrete offsets (the Galois-connection
  property), and how the benchmark harness concretises symbolic reports.
* **complexity limiting** — Section 3.8 of the paper argues the analysis
  stays ``O(|V|)`` because abstract values never develop long chains of
  ``min``/``max``.  :func:`limit_expr` and :func:`limit_interval` enforce a
  node budget by conservatively flattening over-sized bounds to infinity.
"""

from __future__ import annotations

import math
from typing import Mapping, Union

from .expr import (
    Constant,
    DivExpr,
    ExprLike,
    Infinity,
    MaxExpr,
    MinExpr,
    ModExpr,
    NEG_INF,
    POS_INF,
    ProductExpr,
    SumExpr,
    Symbol,
    SymExpr,
    as_expr,
)
from .interval import SymbolicInterval

__all__ = ["evaluate", "limit_expr", "limit_interval", "DEFAULT_EXPR_BUDGET"]

#: Maximum number of expression nodes a bound may have before it is widened.
DEFAULT_EXPR_BUDGET = 24

Number = Union[int, float]


def evaluate(expr: ExprLike, env: Mapping[str, int]) -> Number:
    """Evaluate ``expr`` with the concrete symbol assignment ``env``.

    Infinities evaluate to ``math.inf`` / ``-math.inf``.  Division and modulo
    follow C semantics (truncation towards zero), matching
    :func:`repro.symbolic.expr.sym_div`.

    Raises:
        KeyError: if a symbol in ``expr`` is missing from ``env``.
        ZeroDivisionError: on division/modulo by zero.
    """
    expr = as_expr(expr)
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Infinity):
        return math.inf if expr.sign > 0 else -math.inf
    if isinstance(expr, Symbol):
        return env[expr.name]
    if isinstance(expr, SumExpr):
        total: Number = expr.offset
        for atom, coeff in expr.terms:
            total += coeff * evaluate(atom, env)
        return total
    if isinstance(expr, MinExpr):
        return min(evaluate(expr.lhs, env), evaluate(expr.rhs, env))
    if isinstance(expr, MaxExpr):
        return max(evaluate(expr.lhs, env), evaluate(expr.rhs, env))
    if isinstance(expr, ProductExpr):
        return evaluate(expr.lhs, env) * evaluate(expr.rhs, env)
    if isinstance(expr, DivExpr):
        lhs, rhs = evaluate(expr.lhs, env), evaluate(expr.rhs, env)
        if rhs == 0:
            raise ZeroDivisionError("evaluated symbolic division by zero")
        quotient = abs(lhs) // abs(rhs)
        return -quotient if (lhs < 0) != (rhs < 0) else quotient
    if isinstance(expr, ModExpr):
        lhs, rhs = evaluate(expr.lhs, env), evaluate(expr.rhs, env)
        if rhs == 0:
            raise ZeroDivisionError("evaluated symbolic modulo by zero")
        remainder = abs(lhs) % abs(rhs)
        return -remainder if lhs < 0 else remainder
    raise TypeError(f"cannot evaluate {expr!r}")


def limit_expr(expr: SymExpr, *, budget: int = DEFAULT_EXPR_BUDGET,
               toward_upper: bool) -> SymExpr:
    """Replace ``expr`` by an infinity when it exceeds the node ``budget``.

    ``toward_upper`` selects the direction of over-approximation: upper
    bounds grow to ``+inf`` and lower bounds shrink to ``-inf``, so the
    enclosing interval only ever gets larger (sound).
    """
    if expr.complexity() <= budget:
        return expr
    return POS_INF if toward_upper else NEG_INF


def limit_interval(interval: SymbolicInterval,
                   *, budget: int = DEFAULT_EXPR_BUDGET) -> SymbolicInterval:
    """Apply :func:`limit_expr` to both bounds of ``interval``."""
    if interval.is_empty:
        return interval
    lower = limit_expr(interval.lower, budget=budget, toward_upper=False)
    upper = limit_expr(interval.upper, budget=budget, toward_upper=True)
    if lower is interval.lower and upper is interval.upper:
        return interval
    return SymbolicInterval(lower, upper)
