"""The ``SymbRanges`` lattice: symbolic intervals (Section 3.3 of the paper).

A symbolic interval is a pair ``R = [l, u]`` of symbolic expressions (or
infinities).  The semi-lattice is ``(S², ⊑, ⊔, ∅, [-inf, +inf])`` where::

    [l0, u0] ⊑ [l1, u1]   iff  l1 <= l0 and u1 >= u0
    [a1, a2] ⊔ [b1, b2]   =   [min(a1, b1), max(a2, b2)]
    [a1, a2] ⊓ [b1, b2]   =   ∅ if a2 < b1 or b2 < a1, else [max(a1,b1), min(a2,b2)]

and the widening of the paper::

    [l, u] ∇ [l', u'] = [l,    u   ]  if l = l' and u = u'
                        [l,    +inf]  if l = l' and u' > u
                        [-inf, u   ]  if l' < l and u' = u
                        [-inf, +inf]  otherwise

Because the bounds are symbolic, equality and the comparisons above are only
semi-decidable; everything here errs on the side of the *larger* (more
conservative) result.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from .expr import (
    ExprLike,
    NEG_INF,
    POS_INF,
    SymExpr,
    as_expr,
    sym_add,
    sym_max,
    sym_min,
    sym_mul,
    sym_neg,
    sym_sub,
)
from .order import definitely_le, definitely_lt

__all__ = ["SymbolicInterval", "EMPTY_INTERVAL", "TOP_INTERVAL"]


class SymbolicInterval:
    """An element of ``SymbRanges``: ``∅`` or a pair ``[lower, upper]``.

    Bounds are hash-consed expressions, so bound comparisons inside the
    lattice operations are identity tests and the interval's hash is a cheap
    pair-hash memoized on first use.
    """

    __slots__ = ("_lower", "_upper", "_empty", "_hash")

    def __init__(self, lower: Optional[ExprLike] = None, upper: Optional[ExprLike] = None,
                 *, empty: bool = False):
        object.__setattr__(self, "_hash", None)
        if empty:
            object.__setattr__(self, "_empty", True)
            object.__setattr__(self, "_lower", None)
            object.__setattr__(self, "_upper", None)
            return
        if lower is None or upper is None:
            raise ValueError("a non-empty interval needs both bounds")
        object.__setattr__(self, "_empty", False)
        object.__setattr__(self, "_lower", as_expr(lower))
        object.__setattr__(self, "_upper", as_expr(upper))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("SymbolicInterval is immutable")

    # -- constructors ------------------------------------------------------
    @classmethod
    def empty(cls) -> "SymbolicInterval":
        """The least element ``∅``."""
        return EMPTY_INTERVAL

    @classmethod
    def top(cls) -> "SymbolicInterval":
        """The greatest element ``[-inf, +inf]``."""
        return TOP_INTERVAL

    @classmethod
    def point(cls, value: ExprLike) -> "SymbolicInterval":
        """The singleton interval ``[value, value]`` (cached per expression).

        Point intervals are minted constantly — every integer constant and
        kernel symbol becomes one — and their bounds are interned, so a
        capped cache keyed on the bound expression cuts the allocation churn
        without changing any observable value.
        """
        expr = as_expr(value)
        cached = _POINT_CACHE.get(expr)
        if cached is None:
            cached = cls(expr, expr)
            if len(_POINT_CACHE) < _POINT_CACHE_CAP:
                _POINT_CACHE[expr] = cached
        return cached

    @classmethod
    def from_bounds(cls, lower: ExprLike, upper: ExprLike) -> "SymbolicInterval":
        """Build ``[lower, upper]`` (no emptiness check is attempted)."""
        return cls(lower, upper)

    # -- accessors ---------------------------------------------------------
    @property
    def lower(self) -> SymExpr:
        """The lower bound ``R↓`` (raises on ``∅``)."""
        if self._empty:
            raise ValueError("the empty interval has no lower bound")
        return self._lower

    @property
    def upper(self) -> SymExpr:
        """The upper bound ``R↑`` (raises on ``∅``)."""
        if self._empty:
            raise ValueError("the empty interval has no upper bound")
        return self._upper

    @property
    def is_empty(self) -> bool:
        """True for the distinguished least element ``∅``."""
        return self._empty

    @property
    def is_top(self) -> bool:
        """True for ``[-inf, +inf]``."""
        return not self._empty and self._lower is NEG_INF and self._upper is POS_INF

    def is_constant(self) -> bool:
        """True when both bounds are (finite) integer constants."""
        return (not self._empty and self._lower.is_constant() and self._upper.is_constant())

    def is_symbolic(self) -> bool:
        """True when at least one finite bound mentions a kernel symbol."""
        if self._empty:
            return False
        return bool(self._lower.symbols() or self._upper.symbols())

    def symbols(self) -> frozenset:
        """Union of kernel symbols appearing in the bounds."""
        if self._empty:
            return frozenset()
        return self._lower.symbols() | self._upper.symbols()

    # -- lattice operations ------------------------------------------------
    def join(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """The ``⊔`` operator (least upper bound up to symbolic precision)."""
        if self._empty:
            return other
        if other._empty:
            return self
        if self._lower is other._lower and self._upper is other._upper:
            # Identical endpoints (the overwhelmingly common fixpoint case):
            # the join is this interval itself, no min/max folding needed.
            return self
        return SymbolicInterval(
            sym_min(self._lower, other._lower), sym_max(self._upper, other._upper)
        )

    def meet(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """The ``⊓`` operator; ``∅`` when the intervals are provably disjoint."""
        if self._empty or other._empty:
            return EMPTY_INTERVAL
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.definitely_disjoint(other):
            return EMPTY_INTERVAL
        return SymbolicInterval(
            sym_max(self._lower, other._lower), sym_min(self._upper, other._upper)
        )

    def contains_interval(self, other: "SymbolicInterval") -> bool:
        """``other ⊑ self``, i.e. the bounds of ``self`` enclose ``other``'s."""
        if other._empty:
            return True
        if self._empty:
            return False
        return definitely_le(self._lower, other._lower) and definitely_le(
            other._upper, self._upper
        )

    def widen(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """The ``∇`` operator of the paper (applied as ``old ∇ new``)."""
        if self._empty:
            return other
        if other._empty:
            return self
        if self._lower is other._lower and self._upper is other._upper:
            return self
        lower_stable = self._lower is other._lower or definitely_le(
            self._lower, other._lower
        )
        upper_stable = self._upper is other._upper or definitely_le(
            other._upper, self._upper
        )
        lower = self._lower if lower_stable else NEG_INF
        upper = self._upper if upper_stable else POS_INF
        return SymbolicInterval(lower, upper)

    def narrow(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """Descending-sequence refinement: replace infinite bounds of ``self``
        by the corresponding bounds of ``other``.

        ``∅`` is the least element, so a state that stabilised at ``∅`` must
        stay there: narrowing may never enlarge (``self.narrow(other) ⊑ self``).
        """
        if self._empty:
            return self
        if other._empty:
            return other
        lower = other._lower if self._lower is NEG_INF else self._lower
        upper = other._upper if self._upper is POS_INF else self._upper
        if lower is self._lower and upper is self._upper:
            return self
        return SymbolicInterval(lower, upper)

    # -- arithmetic ---------------------------------------------------------
    def shift(self, delta: ExprLike) -> "SymbolicInterval":
        """Add the single expression ``delta`` to both bounds."""
        if self._empty:
            return self
        delta = as_expr(delta)
        lower = sym_add(self._lower, delta)
        upper = sym_add(self._upper, delta)
        if lower is self._lower and upper is self._upper:
            return self  # shift by zero: interning proves nothing changed
        return SymbolicInterval(lower, upper)

    def add(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """Interval addition ``[a+c, b+d]``."""
        if self._empty or other._empty:
            return EMPTY_INTERVAL
        lower = sym_add(self._lower, other._lower)
        upper = sym_add(self._upper, other._upper)
        if lower is self._lower and upper is self._upper:
            return self
        return SymbolicInterval(lower, upper)

    def sub(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """Interval subtraction ``[a-d, b-c]``."""
        if self._empty or other._empty:
            return EMPTY_INTERVAL
        return SymbolicInterval(
            sym_sub(self._lower, other._upper), sym_sub(self._upper, other._lower)
        )

    def negate(self) -> "SymbolicInterval":
        """``[-u, -l]``."""
        if self._empty:
            return self
        return SymbolicInterval(sym_neg(self._upper), sym_neg(self._lower))

    def scale(self, factor: int) -> "SymbolicInterval":
        """Multiply both bounds by an integer constant."""
        if self._empty:
            return self
        if factor == 0:
            return SymbolicInterval(0, 0)
        if factor > 0:
            return SymbolicInterval(sym_mul(self._lower, factor), sym_mul(self._upper, factor))
        return SymbolicInterval(sym_mul(self._upper, factor), sym_mul(self._lower, factor))

    def mul(self, other: "SymbolicInterval") -> "SymbolicInterval":
        """Interval multiplication.

        Precise only when one operand is a constant point or a constant
        interval with bounds of one sign; otherwise returns top, which is
        always sound.
        """
        if self._empty or other._empty:
            return EMPTY_INTERVAL
        for first, second in ((self, other), (other, self)):
            if second.is_constant() and second._lower == second._upper:
                factor = second._lower.constant_value()
                assert factor is not None
                return first.scale(factor)
        return TOP_INTERVAL

    def clamp_upper(self, bound: ExprLike) -> "SymbolicInterval":
        """Meet with ``[-inf, bound]`` (the ``∩ [-inf, E]`` of e-SSA)."""
        return self.meet(SymbolicInterval(NEG_INF, bound))

    def clamp_lower(self, bound: ExprLike) -> "SymbolicInterval":
        """Meet with ``[bound, +inf]`` (the ``∩ [E, +inf]`` of e-SSA)."""
        return self.meet(SymbolicInterval(bound, POS_INF))

    # -- predicates ---------------------------------------------------------
    def definitely_disjoint(self, other: "SymbolicInterval") -> bool:
        """True only when the two intervals can be proven not to overlap."""
        if self._empty or other._empty:
            return True
        return definitely_lt(self._upper, other._lower) or definitely_lt(
            other._upper, self._lower
        )

    def contains_value(self, value: ExprLike) -> bool:
        """True only when ``lower <= value <= upper`` is provable."""
        if self._empty:
            return False
        value = as_expr(value)
        return definitely_le(self._lower, value) and definitely_le(value, self._upper)

    def substitute(self, mapping: Mapping[str, ExprLike]) -> "SymbolicInterval":
        """Substitute kernel symbols in both bounds."""
        if self._empty:
            return self
        return SymbolicInterval(
            self._lower.substitute(mapping), self._upper.substitute(mapping)
        )

    # -- dunder -------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, SymbolicInterval):
            return NotImplemented
        if self._empty or other._empty:
            return self._empty and other._empty
        # Bounds are interned: structural equality is identity.
        return self._lower is other._lower and self._upper is other._upper

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            if self._empty:
                cached = hash("SymbolicInterval.EMPTY")
            else:
                cached = hash(("SymbolicInterval", self._lower, self._upper))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        if self._empty:
            return "∅"
        return f"[{self._lower!r}, {self._upper!r}]"

    @staticmethod
    def join_all(intervals: Iterable["SymbolicInterval"]) -> "SymbolicInterval":
        """Fold :meth:`join` over an iterable (``∅`` for the empty iterable)."""
        result = EMPTY_INTERVAL
        for interval in intervals:
            result = result.join(interval)
        return result


EMPTY_INTERVAL = SymbolicInterval(empty=True)
TOP_INTERVAL = SymbolicInterval(NEG_INF, POS_INF)

#: Cache of point intervals keyed on their (interned, immortal) bound.
#: Capped: once full, further points are constructed uncached.
_POINT_CACHE: Dict[SymExpr, SymbolicInterval] = {}
_POINT_CACHE_CAP = 1 << 16
