"""A concrete small-step interpreter for the repro IR.

The interpreter executes analysis-ready modules — the exact IR (post
mem2reg / simplify / e-SSA) the alias and range analyses consume — under
an idealised-but-deterministic semantics:

* **integers are unbounded** (no wrap-around), matching the mathematical
  integer model of the symbolic range analysis;
* **pointers carry provenance** (:class:`~repro.interp.memory.Pointer`),
  so address-overlap questions are exact even for accesses that run past
  an object's nominal size;
* **σ is a copy** — the e-SSA bound intersection holds by construction on
  the edge that created it;
* external calls use the deterministic libc models of
  :mod:`repro.interp.externals`.

Every SSA assignment and every load/store address is logged into an
:class:`~repro.interp.trace.ExecutionTrace`, which is what the soundness
oracle (:mod:`repro.evaluation.soundness`) consumes.  Execution is
bounded by a step budget and a call-depth cap, so the interpreter
terminates on any input program; a budgeted-out run is reported as
incomplete rather than raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreeInst,
    ICmpInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Module
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    NullPointer,
    UndefValue,
    Value,
)
from .externals import ProgramExit, call_external
from .memory import Heap, MemoryError_, Pointer, coerce_int
from .trace import (
    AccessEvent,
    ExecutionTrace,
    FrameTrace,
    access_width,
    memory_access_table,
)

__all__ = ["InterpreterLimits", "InterpreterError", "StepBudgetExceeded", "Interpreter"]


class InterpreterError(Exception):
    """A runtime condition the concrete semantics cannot continue past."""


class StepBudgetExceeded(InterpreterError):
    """The run consumed its step budget (reported, not propagated)."""


@dataclass(frozen=True)
class InterpreterLimits:
    """Resource bounds making every interpretation terminate."""

    max_steps: int = 500_000
    max_call_depth: int = 64


def _c_div(a: int, b: int) -> int:
    """C-style truncating division (matches ``repro.symbolic`` semantics)."""
    if b == 0:
        raise InterpreterError("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_rem(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer remainder by zero")
    remainder = abs(a) % abs(b)
    return -remainder if a < 0 else remainder


class _Frame:
    """One activation: SSA environment plus its trace record."""

    __slots__ = ("function", "env", "trace")

    def __init__(self, function: Function, trace: FrameTrace):
        self.function = function
        self.env: Dict[Value, object] = {}
        self.trace = trace


class Interpreter:
    """Executes one module; reusable only for a single run."""

    def __init__(self, module: Module, limits: Optional[InterpreterLimits] = None):
        self.module = module
        self.limits = limits or InterpreterLimits()
        self.heap = Heap()
        self.trace = ExecutionTrace(module_name=module.name)
        self.steps = 0
        self.unknown_external_calls = 0
        self._globals: Dict[GlobalVariable, Pointer] = {}
        self._frame_count = 0
        #: function -> {load/store instruction -> stable access index}.
        self._access_indices: Dict[Function, Dict[Instruction, int]] = {}
        for variable in module.globals:
            size = variable.value_type.size_in_bytes()
            self._globals[variable] = self.heap.allocate(size, "global", variable.name)

    # -- entry points -------------------------------------------------------
    def run_main(self, argv: Sequence[str]) -> ExecutionTrace:
        """Execute ``main(argc, argv)`` with the given C-style argv strings.

        The argv array and its strings become interpreter-provided objects,
        so input-derived pointers have full provenance like every other
        pointer.  Returns the trace; an aborted run sets ``stop_reason``.
        """
        main = self.module.get_function("main")
        if main is None or main.is_declaration():
            raise InterpreterError("module has no defined main function")
        argv_array = self.heap.allocate(8 * (len(argv) + 1), "input", "argv")
        for index, text in enumerate(argv):
            string = self.heap.allocate(len(text) + 1, "input", f"argv[{index}]")
            self.heap.store_c_string(string, text)
            self.heap.store(argv_array.add(8 * index), string, 8)
        args: List[object] = []
        for argument in main.args:
            if argument.type.is_pointer():
                args.append(argv_array)
            else:
                args.append(len(argv))
        try:
            self._call(main, args)
            self.trace.completed = True
        except ProgramExit:
            self.trace.completed = True
            self.trace.stop_reason = "exit"
        except StepBudgetExceeded:
            self.trace.stop_reason = "step-budget"
        except (InterpreterError, MemoryError_, OverflowError,
                ValueError, ZeroDivisionError) as error:
            # OverflowError/ValueError cover unbounded ints escaping into
            # float conversions (sitofp of a huge int, fptosi of ±inf):
            # report the run as incomplete instead of raising, as the
            # module contract promises.
            self.trace.stop_reason = f"runtime-error: {error}"
        self.trace.steps = self.steps
        return self.trace

    def call_function(self, function: Function, args: Sequence[object]) -> object:
        """Directly invoke one function (test hook); propagates errors."""
        result = self._call(function, list(args))
        self.trace.steps = self.steps
        self.trace.completed = True
        return result

    # -- execution core -----------------------------------------------------
    def _call(self, function: Function, args: List[object]) -> object:
        if self._frame_count >= self.limits.max_call_depth:
            raise InterpreterError(f"call depth exceeds {self.limits.max_call_depth}")
        self._frame_count += 1
        frame_trace = FrameTrace(function=function, frame_id=len(self.trace.frames),
                                 start_step=self.steps, arguments=tuple(args))
        self.trace.frames.append(frame_trace)
        frame = _Frame(function, frame_trace)
        for argument, value in zip(function.args, args):
            frame.env[argument] = value
            self._record(frame, argument, value)
        try:
            return self._run_frame(frame)
        finally:
            frame_trace.end_step = self.steps
            self._frame_count -= 1

    def _run_frame(self, frame: _Frame) -> object:
        block = frame.function.entry_block
        predecessor: Optional[BasicBlock] = None
        while True:
            frame.trace.record_block(self.steps, block.label())
            self._enter_block(frame, block, predecessor)
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    continue  # evaluated atomically by _enter_block
                self._tick()
                if isinstance(inst, BranchInst):
                    predecessor, block = block, self._branch_target(frame, inst)
                    break
                if isinstance(inst, ReturnInst):
                    if inst.value is None:
                        return None
                    return self._value(frame, inst.value)
                if isinstance(inst, UnreachableInst):
                    raise InterpreterError(
                        f"reached unreachable in @{frame.function.name}")
                self._execute(frame, inst)
            else:
                raise InterpreterError(
                    f"block {block.label()} in @{frame.function.name} fell through")

    def _enter_block(self, frame: _Frame, block: BasicBlock,
                     predecessor: Optional[BasicBlock]) -> None:
        phis = block.phis()
        if not phis:
            return
        # All φs read the predecessor environment simultaneously.
        staged: List[Tuple[PhiInst, object]] = []
        for phi in phis:
            self._tick()
            incoming = phi.incoming_value_for(predecessor) if predecessor else None
            if incoming is None:
                raise InterpreterError(
                    f"phi {phi.short_name()} has no incoming value for "
                    f"{predecessor.label() if predecessor else '<entry>'}")
            staged.append((phi, self._value(frame, incoming)))
        for phi, value in staged:
            self._assign(frame, phi, value)

    def _branch_target(self, frame: _Frame, inst: BranchInst) -> BasicBlock:
        if not inst.is_conditional():
            return inst.true_target
        condition = self._value(frame, inst.condition)
        taken = condition.address if isinstance(condition, Pointer) else condition
        return inst.true_target if taken else inst.false_target

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.limits.max_steps:
            raise StepBudgetExceeded(f"exceeded {self.limits.max_steps} steps")

    # -- values -------------------------------------------------------------
    def _value(self, frame: _Frame, value: Value) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, NullPointer):
            return self.heap.null
        if isinstance(value, UndefValue):
            return self._zero_of(value)
        if isinstance(value, GlobalVariable):
            return self._globals[value]
        found = frame.env.get(value)
        if found is None and value not in frame.env:
            raise InterpreterError(
                f"use of undefined value {value.short_name()} in "
                f"@{frame.function.name}")
        return found

    def _zero_of(self, value: Value) -> object:
        if value.type.is_pointer():
            return self.heap.null
        if value.type.is_float():
            return 0.0
        return 0

    def _assign(self, frame: _Frame, target: Value, value: object) -> None:
        frame.env[target] = value
        self._record(frame, target, value)

    def _record(self, frame: _Frame, target: Value, value: object) -> None:
        if isinstance(value, Pointer) or \
                (isinstance(value, int) and target.type.is_integer()):
            frame.trace.record(target, self.steps, value)

    # -- instruction dispatch ----------------------------------------------
    def _execute(self, frame: _Frame, inst: Instruction) -> None:
        value = self._evaluate(frame, inst)
        if not isinstance(inst, StoreInst):
            self._assign(frame, inst, value)

    def _evaluate(self, frame: _Frame, inst: Instruction) -> object:
        if isinstance(inst, BinaryInst):
            return self._binary(frame, inst)
        if isinstance(inst, ICmpInst):
            return self._icmp(frame, inst)
        if isinstance(inst, CastInst):
            return self._cast(frame, inst)
        if isinstance(inst, AllocaInst):
            count = self._value(frame, inst.count)
            size = inst.allocated_type.size_in_bytes() * max(0, self._int(count))
            return self.heap.allocate(size, "stack",
                                      f"{frame.function.name}.{inst.name or 'alloca'}")
        if isinstance(inst, MallocInst):
            size = self._int(self._value(frame, inst.size))
            return self.heap.allocate(size, "heap",
                                      f"{frame.function.name}.{inst.name or 'malloc'}")
        if isinstance(inst, FreeInst):
            pointer = self._value(frame, inst.pointer)
            if isinstance(pointer, Pointer):
                self.heap.free(pointer, self.steps)
                return pointer
            return self.heap.null
        if isinstance(inst, PtrAddInst):
            base = self._value(frame, inst.base)
            if not isinstance(base, Pointer):
                base = self.heap.pointer_for_address(self._int(base))
            delta = inst.offset
            if inst.index is not None:
                delta += self._int(self._value(frame, inst.index)) * inst.scale
            return base.add(delta)
        if isinstance(inst, LoadInst):
            return self._load(frame, inst)
        if isinstance(inst, StoreInst):
            self._store(frame, inst)
            return None
        if isinstance(inst, SigmaInst):
            return self._value(frame, inst.source)
        if isinstance(inst, SelectInst):
            condition = self._value(frame, inst.condition)
            chosen = inst.true_value if self._int(condition) else inst.false_value
            return self._value(frame, chosen)
        if isinstance(inst, CallInst):
            return self._call_inst(frame, inst)
        raise InterpreterError(f"cannot interpret opcode {inst.opcode!r}")

    # -- arithmetic ----------------------------------------------------------
    def _int(self, value: object) -> int:
        return coerce_int(value)

    def _binary(self, frame: _Frame, inst: BinaryInst) -> object:
        lhs = self._value(frame, inst.lhs)
        rhs = self._value(frame, inst.rhs)
        opcode = inst.opcode
        if opcode.startswith("f"):
            a = float(self._int(lhs)) if not isinstance(lhs, float) else lhs
            b = float(self._int(rhs)) if not isinstance(rhs, float) else rhs
            return {"fadd": a + b, "fsub": a - b, "fmul": a * b,
                    "fdiv": a / b if b else 0.0}[opcode]
        a, b = self._int(lhs), self._int(rhs)
        if opcode == "add":
            return a + b
        if opcode == "sub":
            return a - b
        if opcode == "mul":
            return a * b
        if opcode == "sdiv":
            return _c_div(a, b)
        if opcode == "srem":
            return _c_rem(a, b)
        if opcode == "and":
            return a & b
        if opcode == "or":
            return a | b
        if opcode == "xor":
            return a ^ b
        if opcode == "shl":
            return a << b if 0 <= b < 512 else 0
        if opcode == "ashr":
            return a >> b if 0 <= b < 512 else (0 if a >= 0 else -1)
        raise InterpreterError(f"unknown binary opcode {opcode!r}")

    def _icmp(self, frame: _Frame, inst: ICmpInst) -> int:
        lhs = self._value(frame, inst.lhs)
        rhs = self._value(frame, inst.rhs)
        if isinstance(lhs, float) or isinstance(rhs, float):
            a: object = lhs if isinstance(lhs, float) else float(self._int(lhs))
            b: object = rhs if isinstance(rhs, float) else float(self._int(rhs))
        else:
            a, b = self._int(lhs), self._int(rhs)
        table = {"eq": a == b, "ne": a != b, "slt": a < b,
                 "sle": a <= b, "sgt": a > b, "sge": a >= b}
        return 1 if table[inst.predicate] else 0

    def _cast(self, frame: _Frame, inst: CastInst) -> object:
        value = self._value(frame, inst.value)
        kind = inst.kind
        if kind in ("trunc", "sext", "zext"):
            # Unbounded-integer semantics: width changes are value-preserving,
            # mirroring the range analysis' mathematical-integer model.
            return self._int(value)
        if kind == "bitcast":
            return value
        if kind == "ptrtoint":
            return value.address if isinstance(value, Pointer) else self._int(value)
        if kind == "inttoptr":
            if isinstance(value, Pointer):
                return value
            return self.heap.pointer_for_address(self._int(value))
        if kind == "sitofp":
            return float(self._int(value))
        if kind == "fptosi":
            return int(value) if isinstance(value, float) else self._int(value)
        raise InterpreterError(f"unknown cast kind {kind!r}")

    # -- memory ---------------------------------------------------------------
    def _pointer_operand(self, frame: _Frame, value: Value) -> Pointer:
        concrete = self._value(frame, value)
        if isinstance(concrete, Pointer):
            return concrete
        return self.heap.pointer_for_address(self._int(concrete))

    def _access_index(self, frame: _Frame, inst: Instruction) -> int:
        table = self._access_indices.get(frame.function)
        if table is None:
            table = {access: index for index, access
                     in enumerate(memory_access_table(frame.function))}
            self._access_indices[frame.function] = table
        return table.get(inst, -1)

    def _record_memory_access(self, frame: _Frame, inst: Instruction,
                              pointer: Pointer, width: int,
                              opcode: str) -> None:
        in_extent = 0 <= pointer.offset and \
            pointer.offset + width <= pointer.obj.size
        self.trace.record_access(AccessEvent(
            step=self.steps, function=frame.function.name, opcode=opcode,
            object_uid=pointer.obj.uid, object_label=pointer.obj.label,
            offset=pointer.offset, width=width,
            frame_id=frame.trace.frame_id,
            access_index=self._access_index(frame, inst),
            in_extent=in_extent))

    def _load(self, frame: _Frame, inst: LoadInst) -> object:
        pointer = self._pointer_operand(frame, inst.pointer)
        width = access_width(inst)
        self._record_memory_access(frame, inst, pointer, width, "load")
        cell = self.heap.load(pointer)
        if cell is None:
            return self._zero_of(inst)
        if inst.type.is_pointer():
            if isinstance(cell, Pointer):
                return cell
            return self.heap.pointer_for_address(self._int(cell))
        if inst.type.is_float():
            return cell if isinstance(cell, float) else float(self._int(cell))
        return self._int(cell)

    def _store(self, frame: _Frame, inst: StoreInst) -> None:
        pointer = self._pointer_operand(frame, inst.pointer)
        value = self._value(frame, inst.value)
        width = access_width(inst)
        self._record_memory_access(frame, inst, pointer, width, "store")
        self.heap.store(pointer, value, width)

    # -- calls ------------------------------------------------------------------
    def _call_inst(self, frame: _Frame, inst: CallInst) -> object:
        args = [self._value(frame, argument) for argument in inst.args]
        callee = inst.callee
        if not isinstance(callee, str):
            target = callee
            if target.is_declaration():
                return self._external(target.name, args, inst)
            return self._call(target, args)
        target = self.module.get_function(callee)
        if target is not None and not target.is_declaration():
            return self._call(target, args)
        return self._external(callee, args, inst)

    def _external(self, name: str, args: List[object], inst: CallInst) -> object:
        result = call_external(name, args, self.heap)
        if result is NotImplemented:
            self.unknown_external_calls += 1
            return self._zero_of(inst)
        return result
