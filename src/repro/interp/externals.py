"""Concrete models of the external (libc) functions the corpus calls.

The mini-C programs the generator emits only ever call a small set of
library routines (``atoi`` on ``argv``, ``strlen`` on string inputs); the
remaining known names get deterministic no-op models so that interpreting
any frontend-compilable program never depends on ambient state.  Unknown
externals return a type-appropriate zero and are tallied on the
interpreter so callers can see when a run leaned on the default model.
"""

from __future__ import annotations

from typing import List, Optional

from .memory import Heap, Pointer, coerce_int as _as_int

__all__ = ["ProgramExit", "call_external", "MODELED_EXTERNALS"]


class ProgramExit(Exception):
    """Raised by the ``exit`` model to unwind the interpreter cleanly."""

    def __init__(self, status: int):
        super().__init__(f"exit({status})")
        self.status = status


def _atoi(heap: Heap, pointer: Pointer) -> int:
    text = heap.read_c_string(pointer).strip()
    sign = 1
    if text[:1] in ("+", "-"):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    for char in text:
        if not char.isdigit():
            break
        digits += char
    return sign * int(digits) if digits else 0


#: Externals with a real model (the interpreter substitutes a
#: type-appropriate zero, and tallies the call, for everything else).
MODELED_EXTERNALS = frozenset({
    "atoi", "strlen", "abs", "labs", "exit", "printf", "puts", "putchar",
    "rand", "getchar", "isdigit", "isalpha", "isspace", "toupper", "tolower",
})


def call_external(name: str, args: List, heap: Heap) -> Optional[object]:
    """Evaluate one modeled external call.

    Returns ``NotImplemented`` for names outside
    :data:`MODELED_EXTERNALS`; the interpreter maps that to a
    type-appropriate zero (its one zero-of-type rule) and counts the call.
    """
    if name == "exit":
        raise ProgramExit(_as_int(args[0]) if args else 0)
    if name == "atoi" and args and isinstance(args[0], Pointer):
        return _atoi(heap, args[0])
    if name == "strlen" and args and isinstance(args[0], Pointer):
        return len(heap.read_c_string(args[0]))
    if name in ("abs", "labs") and args:
        return abs(_as_int(args[0]))
    if name in ("isdigit", "isalpha", "isspace"):
        char = chr(_as_int(args[0]) & 0xFF) if args else "\0"
        table = {"isdigit": char.isdigit(), "isalpha": char.isalpha(),
                 "isspace": char.isspace()}
        return 1 if table[name] else 0
    if name in ("toupper", "tolower") and args:
        char = chr(_as_int(args[0]) & 0xFF)
        return ord(char.upper() if name == "toupper" else char.lower())
    if name in ("printf", "puts", "putchar"):
        return 0
    if name in ("rand", "getchar"):
        return 0  # deterministic by design
    return NotImplemented
