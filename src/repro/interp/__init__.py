"""Concrete execution of the repro IR: interpreter, memory model, traces.

This layer turns the deterministic benchmark corpus into a *ground-truth
generator*: the interpreter runs the exact analysis-ready IR the alias
and range analyses consume, logging every pointer value, integer value
and memory access.  The soundness oracle
(:mod:`repro.evaluation.soundness`) then cross-checks analysis claims
against those observations.
"""

from .externals import MODELED_EXTERNALS, ProgramExit, call_external
from .interpreter import (
    Interpreter,
    InterpreterError,
    InterpreterLimits,
    StepBudgetExceeded,
)
from .memory import Heap, MemObject, MemoryError_, Pointer
from .trace import AccessEvent, ExecutionTrace, FrameTrace, windows_overlap

__all__ = [
    "AccessEvent",
    "ExecutionTrace",
    "FrameTrace",
    "Heap",
    "Interpreter",
    "InterpreterError",
    "InterpreterLimits",
    "MemObject",
    "MemoryError_",
    "MODELED_EXTERNALS",
    "Pointer",
    "ProgramExit",
    "StepBudgetExceeded",
    "call_external",
    "windows_overlap",
]
