"""Concrete memory model of the IR interpreter.

Pointers carry *provenance*: a runtime pointer value is a
:class:`Pointer` — an allocated :class:`MemObject` plus a byte offset —
never a bare integer.  Two accesses overlap exactly when they reference
the same object and their byte ranges intersect, which is the ground
truth the soundness oracle compares analysis verdicts against.

Each object also receives a disjoint *absolute* address range (base
addresses are spaced by a large guard gap) so that ``ptrtoint``,
``inttoptr`` and pointer comparisons have the obvious C semantics even
for moderately out-of-bounds offsets, while provenance keeps overlap
checks exact.

Object payloads are sparse: a dictionary from byte offset to the cell
written there (a Python int, float or :class:`Pointer`).  Reads of bytes
never written yield a type-appropriate zero, mirroring zero-initialised
memory; the interpreter does not model bit-level representations, so a
cell read back has whatever width it was written with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Pointer", "MemObject", "Heap", "MemoryError_", "CellValue", "coerce_int"]

#: What one memory cell can hold.
CellValue = Union[int, float, "Pointer"]

#: Guard gap between consecutive objects' absolute address ranges, large
#: enough that bounded out-of-bounds offsets never collide with a
#: neighbouring object's absolute range.
_GUARD_BYTES = 1 << 20

#: Base of the very first object (kept well away from address 0 so null
#: comparisons are unambiguous).
_FIRST_BASE = 1 << 16


class MemoryError_(Exception):
    """Raised for operations the concrete memory model cannot express."""


def coerce_int(value) -> int:
    """The one integer-coercion rule of the concrete semantics.

    Pointers coerce to their absolute address, floats truncate, ``None``
    (a void result) is zero.  Shared by the instruction interpreter and
    the libc models so the two paths cannot drift apart.
    """
    if isinstance(value, Pointer):
        return value.address
    if isinstance(value, float):
        return int(value)
    return int(value) if value is not None else 0


@dataclass(eq=False)
class MemObject:
    """One allocated object (heap, stack, global or interpreter-provided).

    Equality and hashing are by identity: every allocation is its own
    object, even when two share a size and allocation site.
    """

    uid: int
    base: int
    size: int
    kind: str                 # "heap" | "stack" | "global" | "input" | "null"
    label: str                # allocation-site name, for reports
    alive: bool = True
    #: Global step at which the object was freed (None while alive).
    freed_at: Optional[int] = None
    cells: Dict[int, Tuple[CellValue, int]] = field(default_factory=dict)

    def store(self, offset: int, value: CellValue, width: int) -> None:
        existing = self.cells.get(offset)
        if existing is None or existing[1] != width:
            # Drop cells the new write (partially) covers so stale bytes
            # never shadow a newer overlapping store.  Cells are kept
            # mutually disjoint, so the exact-overwrite fast path above is
            # the only case that can skip the scan.
            overlapping = [o for o, (_, w) in self.cells.items()
                           if offset < o + w and o < offset + width and o != offset]
            for other in overlapping:
                del self.cells[other]
        self.cells[offset] = (value, width)

    def load(self, offset: int) -> Optional[CellValue]:
        cell = self.cells.get(offset)
        return cell[0] if cell is not None else None

    def __repr__(self) -> str:
        return f"<MemObject #{self.uid} {self.kind} {self.label!r} size={self.size}>"


@dataclass(frozen=True)
class Pointer:
    """A provenance-carrying pointer value: object + byte offset."""

    obj: MemObject
    offset: int

    @property
    def address(self) -> int:
        """Absolute address (used for ptrtoint and pointer comparisons)."""
        return self.obj.base + self.offset

    def add(self, delta: int) -> "Pointer":
        return Pointer(self.obj, self.offset + delta)

    def is_null(self) -> bool:
        return self.obj.kind == "null"

    def __repr__(self) -> str:
        if self.is_null():
            return "<null>"
        return f"<&{self.obj.label}+{self.offset}>"


class Heap:
    """The interpreter's address space: allocation and byte access."""

    def __init__(self) -> None:
        self._objects: List[MemObject] = []
        self._next_base = _FIRST_BASE
        self.null_object = MemObject(uid=0, base=0, size=0, kind="null", label="null")
        self.null = Pointer(self.null_object, 0)

    # -- allocation ---------------------------------------------------------
    def allocate(self, size: int, kind: str, label: str) -> Pointer:
        size = max(0, int(size))
        obj = MemObject(uid=len(self._objects) + 1, base=self._next_base,
                        size=size, kind=kind, label=label)
        self._next_base += ((size + _GUARD_BYTES - 1) // _GUARD_BYTES + 1) * _GUARD_BYTES
        self._objects.append(obj)
        return Pointer(obj, 0)

    def free(self, pointer: Pointer, step: int = 0) -> None:
        if not pointer.is_null():
            pointer.obj.alive = False
            if pointer.obj.freed_at is None:
                pointer.obj.freed_at = step

    def objects(self) -> List[MemObject]:
        return list(self._objects)

    # -- access -------------------------------------------------------------
    def store(self, pointer: Pointer, value: CellValue, width: int) -> None:
        if pointer.is_null():
            raise MemoryError_("store through a null pointer")
        pointer.obj.store(pointer.offset, value, max(1, width))

    def load(self, pointer: Pointer) -> Optional[CellValue]:
        """The cell at ``pointer``, or ``None`` for never-written bytes."""
        if pointer.is_null():
            raise MemoryError_("load through a null pointer")
        return pointer.obj.load(pointer.offset)

    # -- integer <-> pointer ------------------------------------------------
    def pointer_for_address(self, address: int) -> Pointer:
        """Reconstruct a pointer from an absolute address (``inttoptr``)."""
        if address == 0:
            return self.null
        for obj in self._objects:
            span = max(obj.size, 1)
            if obj.base <= address < obj.base + max(span, _GUARD_BYTES):
                return Pointer(obj, address - obj.base)
        # An address nothing was allocated at: provenance-free dangling
        # pointer, modelled as an offset from the null object so any access
        # through it raises.
        return Pointer(self.null_object, address)

    # -- string helpers (for interpreter inputs and libc models) ------------
    def store_c_string(self, pointer: Pointer, text: str) -> None:
        for index, char in enumerate(text.encode("ascii", "replace")):
            self.store(pointer.add(index), int(char), 1)
        self.store(pointer.add(len(text)), 0, 1)

    def read_c_string(self, pointer: Pointer, limit: int = 1 << 16) -> str:
        chars: List[str] = []
        cursor = pointer
        for _ in range(limit):
            cell = self.load(cursor)
            value = cell if isinstance(cell, int) else 0
            if value == 0:
                break
            chars.append(chr(value & 0xFF))
            cursor = cursor.add(1)
        return "".join(chars)
