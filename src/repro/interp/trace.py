"""Execution traces: everything the soundness oracle needs to replay a run.

The interpreter logs, per function *invocation* (frame), every SSA
assignment — pointer values (as provenance-carrying
:class:`~repro.interp.memory.Pointer` objects) and integer values alike —
timestamped with the global step counter, plus the address and width of
every executed load and store.

Timestamps give each observed value a *hold window*: from its assignment
to the value's next assignment in the same frame (or the frame's end).
The oracle uses windows to ask "did pointers ``a`` and ``b``
simultaneously reference overlapping memory?" — the statement a no-alias
verdict denies — and to pair values with the dynamic instance of the
base / kernel symbol a claim is relative to.

Traces record values per invocation because alias and range claims are
scoped to one activation of the enclosing function: the same SSA name may
legitimately hold unrelated values in two different calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.values import Value

__all__ = [
    "AccessEvent",
    "FrameTrace",
    "ExecutionTrace",
    "windows_overlap",
    "memory_access_table",
    "access_width",
]

#: Safety valve: events recorded per SSA value per frame before truncation.
MAX_EVENTS_PER_VALUE = 4096

#: Safety valve: block-entry events recorded per frame before truncation.
MAX_BLOCK_EVENTS = 1 << 16

#: Sentinel end step for a window still open when the trace stopped.
OPEN_END = 1 << 62


def memory_access_table(function: Function) -> List[Instruction]:
    """The function's loads and stores in block/instruction order.

    The list index is the access's stable *access index* — the contract
    shared between the interpreter (which stamps it on every
    :class:`AccessEvent`) and the static bounds/parallelization clients
    (which report verdicts per access index).  Both sides must enumerate
    identically, so they both call this.
    """
    return [inst for inst in function.instructions()
            if isinstance(inst, (LoadInst, StoreInst))]


def access_width(inst: Instruction) -> int:
    """Byte width of a load/store, matching the interpreter's semantics."""
    if isinstance(inst, StoreInst):
        return max(1, inst.value.type.size_in_bytes())
    return max(1, inst.type.size_in_bytes())


@dataclass(frozen=True)
class AccessEvent:
    """One executed load or store, with its bounds observation.

    ``in_extent`` is the ground truth the out-of-bounds validator replays:
    whether the accessed byte range ``[offset, offset + width)`` fell
    inside the object's nominal extent.  The interpreter executes
    in-guard-gap accesses either way (provenance pointers make overlap
    questions exact regardless), but it no longer tolerates them
    *silently* — every access carries the flag.
    """

    step: int
    function: str
    opcode: str               # "load" | "store"
    object_uid: int
    object_label: str
    offset: int
    width: int
    #: Index of the frame (in ``ExecutionTrace.frames``) that executed this.
    frame_id: int = -1
    #: Stable index of the load/store in :func:`memory_access_table`.
    access_index: int = -1
    #: ``[offset, offset + width)`` within the object's nominal size.
    in_extent: bool = True


@dataclass
class FrameTrace:
    """Observations from one invocation of one function."""

    function: Function
    frame_id: int
    start_step: int
    end_step: int = -1
    #: Concrete arguments of the invocation (ints / floats / Pointers).
    arguments: Tuple = ()
    #: SSA value -> [(assignment step, concrete value)] in step order.
    events: Dict[Value, List[Tuple[int, object]]] = field(default_factory=dict)
    truncated: bool = False
    #: ``(step, block label)`` per basic-block entry, in execution order.
    #: This is the frame's control path — the loop validator segments it
    #: into loop executions and iterations.
    block_events: List[Tuple[int, str]] = field(default_factory=list)
    block_events_truncated: bool = False

    def record(self, value: Value, step: int, concrete: object) -> None:
        events = self.events.setdefault(value, [])
        if len(events) >= MAX_EVENTS_PER_VALUE:
            self.truncated = True
            return
        events.append((step, concrete))

    def record_block(self, step: int, label: str) -> None:
        if len(self.block_events) >= MAX_BLOCK_EVENTS:
            self.block_events_truncated = True
            return
        self.block_events.append((step, label))

    def observed(self, value: Value) -> List[object]:
        """All concrete values ``value`` held during this invocation."""
        return [concrete for _, concrete in self.events.get(value, [])]

    def distinct_count(self, value: Value) -> int:
        """Number of distinct concrete values ``value`` held (0 = never set)."""
        seen = set()
        for _, concrete in self.events.get(value, []):
            seen.add(concrete if not isinstance(concrete, float) else ("f", concrete))
        return len(seen)

    def windows(self, value: Value) -> List[Tuple[int, int, object]]:
        """``(start, end, concrete)`` hold-intervals of ``value``, half-open.

        The last window closes at the frame's end step; a frame cut short
        by a resource limit leaves it open (:data:`OPEN_END`).
        """
        events = self.events.get(value, [])
        close = self.end_step if self.end_step >= 0 else OPEN_END
        out: List[Tuple[int, int, object]] = []
        for index, (start, concrete) in enumerate(events):
            end = events[index + 1][0] if index + 1 < len(events) else close
            out.append((start, end, concrete))
        return out

    def window_index_at(self, value: Value, step: int) -> int:
        """Index of the instance of ``value`` current at ``step`` (-1: none).

        Used to pair claim operands with the dynamic instance of an anchor
        value: two events belong to the same anchor instance when this
        index agrees.
        """
        events = self.events.get(value, [])
        current = -1
        for index, (start, _) in enumerate(events):
            if start <= step:
                current = index
            else:
                break
        return current


def windows_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """Half-open step intervals ``[start, end)`` intersect."""
    return a[0] < b[1] and b[0] < a[1]


@dataclass
class ExecutionTrace:
    """The full observable behaviour of one interpreted program run."""

    module_name: str
    frames: List[FrameTrace] = field(default_factory=list)
    accesses: List[AccessEvent] = field(default_factory=list)
    steps: int = 0
    completed: bool = False
    #: Why the run stopped early (step budget, runtime error), if it did.
    stop_reason: Optional[str] = None

    def frames_of(self, function: Function) -> Iterator[FrameTrace]:
        for frame in self.frames:
            if frame.function is function:
                yield frame

    def record_access(self, event: AccessEvent) -> None:
        if len(self.accesses) < (1 << 20):
            self.accesses.append(event)
