"""Abstract memory locations (the ``Loc`` set of Section 3.2).

The paper's ``Loc = {loc_0 … loc_{n-1}}`` contains one element per memory
allocation site.  A realistic whole-program analysis needs a few more kinds
of abstract objects, all represented by :class:`MemoryLocation`:

* ``HEAP`` — a ``malloc`` site (the paper's canonical case);
* ``STACK`` — an ``alloca`` (local arrays, structs and address-taken slots);
* ``GLOBAL`` — a global variable;
* ``PARAMETER`` — the unknown object a pointer formal parameter refers to
  when the caller is not visible (the "loc₀ of parameter p" in Section 2);
* ``UNKNOWN`` — an object created outside the analysed code (results of
  external calls such as ``argv`` or ``getenv``);
* ``SYNTHETIC`` — a fresh base created by the *local* analysis
  (``NewLocs()`` in Figure 11).

Only ``HEAP``/``STACK``/``GLOBAL`` locations denote objects that are
guaranteed distinct from every other location; ``PARAMETER`` and ``UNKNOWN``
objects may overlap anything except provably distinct concrete objects that
they cannot reach — the query engine in :mod:`repro.core.queries` encodes
exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.instructions import AllocaInst, MallocInst
from ..ir.module import Module
from ..ir.values import Argument, Value

__all__ = ["LocationKind", "MemoryLocation", "LocationTable"]


class LocationKind(enum.Enum):
    """What kind of object an abstract location stands for."""

    HEAP = "heap"
    STACK = "stack"
    GLOBAL = "global"
    PARAMETER = "parameter"
    UNKNOWN = "unknown"
    SYNTHETIC = "synthetic"

    def is_concrete_object(self) -> bool:
        """Locations that are guaranteed distinct objects from one another."""
        return self in (LocationKind.HEAP, LocationKind.STACK, LocationKind.GLOBAL)


@dataclass(frozen=True)
class MemoryLocation:
    """One abstract location ``loc_i``."""

    index: int
    kind: LocationKind
    name: str
    site: Optional[Value] = field(default=None, compare=False, hash=False)

    def is_concrete_object(self) -> bool:
        return self.kind.is_concrete_object()

    def __repr__(self) -> str:
        return f"loc{self.index}<{self.name}>"


class LocationTable:
    """Creates and indexes the abstract locations of one module.

    The table is shared by the global analysis, the local analysis and the
    query engine so that location identity is stable across them.
    """

    def __init__(self, module: Module):
        self.module = module
        self._locations: List[MemoryLocation] = []
        self._by_site: Dict[Value, MemoryLocation] = {}
        self._discover()

    # -- construction -----------------------------------------------------------
    def _new_location(self, kind: LocationKind, name: str,
                      site: Optional[Value] = None) -> MemoryLocation:
        location = MemoryLocation(len(self._locations), kind, name, site)
        self._locations.append(location)
        if site is not None:
            self._by_site[site] = location
        return location

    def _discover(self) -> None:
        """Pre-create locations for every static allocation site and global."""
        for variable in self.module.globals:
            self._new_location(LocationKind.GLOBAL, f"@{variable.name}", variable)
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, MallocInst):
                    self._new_location(LocationKind.HEAP,
                                       f"{function.name}.{inst.name or 'malloc'}", inst)
                elif isinstance(inst, AllocaInst):
                    self._new_location(LocationKind.STACK,
                                       f"{function.name}.{inst.name or 'alloca'}", inst)

    def refresh_function(self, old_function, new_function) -> None:
        """Function-granular incremental update (manager edit hook).

        The table is append-only, so locations of the retired body's sites
        simply become unreferenced once the analyses that pointed at them
        are refreshed; only the site index must forget the old values (their
        ids may be recycled) and register the new body's allocation sites.
        """
        for value in list(old_function.args):
            self._by_site.pop(value, None)
        for inst in old_function.instructions():
            self._by_site.pop(inst, None)
        for inst in new_function.instructions():
            if inst in self._by_site:
                continue
            if isinstance(inst, MallocInst):
                self._new_location(LocationKind.HEAP,
                                   f"{new_function.name}.{inst.name or 'malloc'}", inst)
            elif isinstance(inst, AllocaInst):
                self._new_location(LocationKind.STACK,
                                   f"{new_function.name}.{inst.name or 'alloca'}", inst)

    # -- lookup / creation -------------------------------------------------------
    def location_for_site(self, site: Value) -> Optional[MemoryLocation]:
        """The location of an allocation site, global or previously registered value."""
        return self._by_site.get(site)

    def ensure_parameter_location(self, argument: Argument) -> MemoryLocation:
        """The pseudo-location of a pointer formal parameter (created on demand)."""
        existing = self._by_site.get(argument)
        if existing is not None:
            return existing
        function_name = argument.parent.name if argument.parent is not None else "?"
        return self._new_location(LocationKind.PARAMETER,
                                  f"{function_name}.param.{argument.name}", argument)

    def ensure_unknown_location(self, site: Value, hint: str) -> MemoryLocation:
        """The pseudo-location of an externally created object (created on demand)."""
        existing = self._by_site.get(site)
        if existing is not None:
            return existing
        return self._new_location(LocationKind.UNKNOWN, hint, site)

    def new_synthetic_location(self, hint: str) -> MemoryLocation:
        """A fresh base for the local analysis (``NewLocs()`` in Figure 11)."""
        return self._new_location(LocationKind.SYNTHETIC, hint)

    # -- aggregates ------------------------------------------------------------------
    def all_locations(self) -> List[MemoryLocation]:
        return list(self._locations)

    def allocation_sites(self) -> List[MemoryLocation]:
        """The paper's ``Loc``: heap, stack and global allocation sites."""
        return [location for location in self._locations if location.is_concrete_object()]

    def __len__(self) -> int:
        return len(self._locations)

    def __getitem__(self, index: int) -> MemoryLocation:
        return self._locations[index]
