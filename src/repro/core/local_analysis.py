"""The local range analysis of pointers (``LR``, Section 3.6).

The global analysis is not path-sensitive, so it cannot separate ``p[i]``
from ``p[i + 1]`` inside a loop even though the two addresses never coincide
*at the same moment*.  The local analysis fixes this by giving pointers new
base locations at the program points where their runtime value becomes a
single unknown-but-fixed quantity: φ-functions, loads, ``malloc``s — the
``NewLocs()`` of Figure 11 — and, equivalently to the renaming of Figure 4,
one shared base per ``(base pointer, varying index, scale)`` triple of
pointer arithmetic.

Because every abstract value is ``location + interval`` with a *single*
location, the analysis converges in one sweep (the lattice is finite; no
widening is needed), exactly as described in the paper.  The sweep is
scheduled by the shared sparse solver in dominance preorder; fresh base
locations are memoized per instruction so the transfer function is
idempotent under re-evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.dominance import DominatorTree
from ..engine.solver import SparseProblem, SparseSolver
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    SelectInst,
    SigmaInst,
)
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, NullPointer, UndefValue, Value
from ..rangeanalysis.symbolic_ra import SymbolicRangeAnalysis
from ..symbolic import SymbolicInterval
from .locations import LocationTable, MemoryLocation

__all__ = ["LocalAbstractValue", "LocalRangeAnalysis"]

#: External routines whose pointer result is their first argument.
_RETURNS_FIRST_ARGUMENT = frozenset({
    "strcpy", "strncpy", "strcat", "strncat", "memcpy", "memmove", "memset",
})


@dataclass(frozen=True)
class LocalAbstractValue:
    """``LR(p) = loc + [l, u]`` — one base location plus a symbolic interval."""

    location: MemoryLocation
    interval: SymbolicInterval

    def shifted(self, delta: SymbolicInterval) -> "LocalAbstractValue":
        return LocalAbstractValue(self.location, self.interval.add(delta))

    def __repr__(self) -> str:
        return f"{self.location!r} + {self.interval!r}"


class _LocalRangeProblem(SparseProblem):
    """Adapter presenting the LR analysis to the sparse solver.

    Only the transfer functions that forward an operand's state (σ, bitcast,
    ``strcpy``-style calls, pointer arithmetic) declare dependencies; the
    location-defining instructions of Figure 11 (φ, loads, allocations) are
    sources.  The dependence graph is therefore acyclic — every SSA cycle
    passes through a φ — and one topological sweep reaches the fixed point.
    """

    name = "local-ranges"

    def __init__(self, analysis: "LocalRangeAnalysis", nodes: List[Instruction]):
        self._analysis = analysis
        self._nodes = nodes

    def nodes(self) -> List[Instruction]:
        return self._nodes

    def dependencies(self, inst: Instruction):
        if isinstance(inst, SigmaInst):
            return (inst.source,)
        if isinstance(inst, CastInst) and inst.kind == "bitcast":
            return (inst.value,)
        if isinstance(inst, CallInst):
            if inst.callee_name() in _RETURNS_FIRST_ARGUMENT and inst.args:
                return (inst.args[0],)
            return ()
        if isinstance(inst, PtrAddInst):
            return (inst.base,)
        return ()

    def transfer(self, inst: Instruction) -> LocalAbstractValue:
        return self._analysis._evaluate(inst)

    def read(self, inst: Instruction) -> Optional[LocalAbstractValue]:
        return self._analysis._lr.get(inst)

    def write(self, inst: Instruction, value: LocalAbstractValue) -> None:
        self._analysis._lr[inst] = value


class LocalRangeAnalysis:
    """Whole-module LR analysis (one dominance-order sweep)."""

    def __init__(self, module: Module,
                 ranges: Optional[SymbolicRangeAnalysis] = None,
                 locations: Optional[LocationTable] = None):
        self.module = module
        self.ranges = ranges if ranges is not None else SymbolicRangeAnalysis(module)
        self.locations = locations if locations is not None else LocationTable(module)
        self._lr: Dict[Value, LocalAbstractValue] = {}
        # Shared fresh bases for pointer arithmetic with a varying index
        # (the renaming of Figure 4): keyed by (base, index, scale).
        self._arithmetic_bases: Dict[Tuple[Value, Value, int], MemoryLocation] = {}
        # Fresh states memoized per instruction so re-evaluation by the
        # solver is idempotent (NewLocs() must mint one location per site).
        self._fresh_by_site: Dict[Value, LocalAbstractValue] = {}
        self._location_anchor_cache: Optional[Dict[int, FrozenSet[Value]]] = None
        self.solver_statistics = None
        self._run()

    # -- public API -----------------------------------------------------------
    @classmethod
    def run(cls, module: Module, **kwargs) -> "LocalRangeAnalysis":
        return cls(module, **kwargs)

    def value_of(self, value: Value) -> Optional[LocalAbstractValue]:
        """``LR(value)``, or ``None`` for values the analysis has no state for."""
        cached = self._lr.get(value)
        if cached is not None:
            return cached
        if isinstance(value, GlobalVariable):
            return self._remember(value, self._fresh(f"@{value.name}"))
        if isinstance(value, Argument) and value.type.is_pointer():
            owner = value.parent.name if value.parent is not None else "?"
            return self._remember(value, self._fresh(f"{owner}.{value.name}"))
        return None

    def location_anchors(self) -> Dict[int, FrozenSet[Value]]:
        """Location index → IR values a synthetic base is *relative to*.

        A synthetic location minted by ``NewLocs()`` stands for "wherever
        its defining site pointed when it executed": the φ/load/select/call
        instruction for fresh bases, the root ``(base, index)`` values for
        shared pointer-arithmetic bases, the argument/global for seeded
        bases.  The soundness oracle uses these anchors to restrict a
        local-test claim to executions of a single dynamic instance of the
        base (query extraction hook; see ``NoAliasClaim``).

        The analysis is immutable once built, so the map is computed once
        and memoized.
        """
        if self._location_anchor_cache is not None:
            return self._location_anchor_cache
        anchors: Dict[int, Set[Value]] = {}
        for site, state in self._fresh_by_site.items():
            anchors.setdefault(state.location.index, set()).add(site)
        for (base, index, _scale), location in self._arithmetic_bases.items():
            bucket = anchors.setdefault(location.index, set())
            bucket.add(base)
            if isinstance(index, Value):
                bucket.add(index)
        for value, state in self._lr.items():
            if isinstance(value, (Argument, GlobalVariable)):
                anchors.setdefault(state.location.index, set()).add(value)
        frozen = {index: frozenset(values) for index, values in anchors.items()}
        self._location_anchor_cache = frozen
        return frozen

    def refresh_function(self, old_function, new_function) -> None:
        """Function-granular incremental re-run (manager edit hook).

        LR is strictly per-function (bases never cross function boundaries),
        so an edit purges the old body's state — per-value LR entries, fresh
        bases minted at its sites, shared arithmetic bases rooted in its
        values — and re-solves only the new body in dominance preorder.
        Solver statistics accumulate across refreshes.
        """
        stale = set(old_function.args)
        stale.update(old_function.instructions())
        for value in [value for value in self._lr if value in stale]:
            del self._lr[value]
        for site in [site for site in self._fresh_by_site if site in stale]:
            del self._fresh_by_site[site]
        for key in [key for key in self._arithmetic_bases
                    if key[0] in stale or key[1] in stale]:
            del self._arithmetic_bases[key]
        self._location_anchor_cache = None
        nodes: List[Instruction] = []
        for block in DominatorTree.compute(new_function).preorder():
            nodes.extend(inst for inst in block.instructions
                         if inst.type.is_pointer())
        solver = SparseSolver(_LocalRangeProblem(self, nodes))
        self.solver_statistics.accumulate(solver.solve())

    # -- helpers -------------------------------------------------------------------
    def _fresh(self, hint: str) -> LocalAbstractValue:
        location = self.locations.new_synthetic_location(hint)
        return LocalAbstractValue(location, SymbolicInterval.point(0))

    def _remember(self, value: Value, abstract: LocalAbstractValue) -> LocalAbstractValue:
        self._lr[value] = abstract
        return abstract

    def _scalar_range(self, value: Value) -> SymbolicInterval:
        return self.ranges.range_of(value)

    def _fresh_for(self, site: Value, hint: str) -> LocalAbstractValue:
        """The (memoized) fresh base state of a location-defining site."""
        state = self._fresh_by_site.get(site)
        if state is None:
            state = self._fresh(hint)
            self._fresh_by_site[site] = state
        return state

    # -- driver --------------------------------------------------------------------
    def _run(self) -> None:
        nodes: List[Instruction] = []
        for function in self.module.defined_functions():
            dom_tree = DominatorTree.compute(function)
            for block in dom_tree.preorder():
                for inst in block.instructions:
                    if inst.type.is_pointer():
                        nodes.append(inst)
        solver = SparseSolver(_LocalRangeProblem(self, nodes))
        self.solver_statistics = solver.solve()

    # -- transfer functions (Figure 11) ------------------------------------------------
    def _operand(self, value: Value) -> Optional[LocalAbstractValue]:
        result = self.value_of(value)
        if result is not None:
            return result
        if isinstance(value, (NullPointer, UndefValue)):
            return None
        if isinstance(value, Instruction) and value.type.is_pointer():
            # Use before dominance-order definition (only possible through
            # irreducible flow): treat as an unknown fresh base.
            return self._remember(value, self._fresh(f"{value.name or 'ptr'}.fwd"))
        return None

    def _evaluate(self, inst: Instruction) -> LocalAbstractValue:
        function_name = inst.function.name if inst.function is not None else "?"
        label = f"{function_name}.{inst.name or inst.opcode}"
        if isinstance(inst, (MallocInst, AllocaInst)):
            return self._fresh_for(inst, label)
        if isinstance(inst, (PhiInst, LoadInst)):
            # Figure 11: φs and loads define new locations.
            return self._fresh_for(inst, label)
        if isinstance(inst, FreeInst):
            return self._fresh_for(inst, label)
        if isinstance(inst, SigmaInst):
            source = self._operand(inst.source)
            return source if source is not None else self._fresh_for(inst, label)
        if isinstance(inst, CastInst):
            if inst.kind == "bitcast":
                source = self._operand(inst.value)
                if source is not None:
                    return source
            return self._fresh_for(inst, label)
        if isinstance(inst, SelectInst):
            # A select is a value chosen at runtime; it acts as its own base.
            return self._fresh_for(inst, label)
        if isinstance(inst, CallInst):
            if inst.callee_name() in _RETURNS_FIRST_ARGUMENT and inst.args:
                source = self._operand(inst.args[0])
                if source is not None:
                    return source
            return self._fresh_for(inst, label)
        if isinstance(inst, PtrAddInst):
            return self._evaluate_ptradd(inst, label)
        return self._fresh_for(inst, label)

    @staticmethod
    def _decompose_index(index: Value) -> Tuple[Value, int]:
        """Split an index into ``(root value, constant addend)``.

        ``p[i]`` and ``p[i + 1]`` lower to pointer arithmetic over the SSA
        values ``i`` and ``i + 1``; peeling constant additions off the index
        lets both share the root ``i`` — the renaming of Figure 4.
        """
        from ..ir.instructions import BinaryInst, CastInst
        from ..ir.values import ConstantInt

        addend = 0
        current = index
        for _ in range(16):
            if isinstance(current, CastInst) and current.kind in ("sext", "zext", "trunc"):
                current = current.value
                continue
            if isinstance(current, SigmaInst):
                current = current.source
                continue
            if isinstance(current, BinaryInst) and current.opcode in ("add", "sub"):
                if isinstance(current.rhs, ConstantInt):
                    delta = current.rhs.value
                    addend += delta if current.opcode == "add" else -delta
                    current = current.lhs
                    continue
                if current.opcode == "add" and isinstance(current.lhs, ConstantInt):
                    addend += current.lhs.value
                    current = current.rhs
                    continue
            break
        return current, addend

    def _evaluate_ptradd(self, inst: PtrAddInst, label: str) -> LocalAbstractValue:
        base = self._operand(inst.base)
        constant_offset = inst.constant_byte_offset()
        if base is not None and constant_offset is not None:
            return base.shifted(SymbolicInterval.point(constant_offset))
        if base is not None and inst.index is not None:
            index_range = self._scalar_range(inst.index)
            if index_range.is_constant() and index_range.lower is index_range.upper:
                delta = index_range.scale(inst.scale).shift(inst.offset)
                return base.shifted(delta)
            # Varying index: all computations sharing (base, root index, scale)
            # spring from the same runtime address, so they share one fresh
            # base location and differ only by their constant offsets — this
            # is the pointer renaming of Section 2 / Figure 4.
            root_index, addend = self._decompose_index(inst.index)
            key = (inst.base, root_index, inst.scale)
            location = self._arithmetic_bases.get(key)
            if location is None:
                location = self.locations.new_synthetic_location(f"{label}.base")
                self._arithmetic_bases[key] = location
            byte_offset = inst.offset + addend * inst.scale
            return LocalAbstractValue(location, SymbolicInterval.point(byte_offset))
        return self._fresh_for(inst, label)
