"""Alias queries over the GR and LR abstract states (Sections 3.5 and 3.7).

Two complementary disambiguation criteria:

* **Global test** (Proposition 2): two pointers do not alias when their
  abstract address sets cannot overlap — every allocation site they share
  binds provably disjoint offset intervals, and sites they do not share are
  provably distinct objects.
* **Local test** (Proposition 3): two pointers do not alias when they are
  offsets of the *same* local base location with provably disjoint offset
  intervals.

Both tests account for the byte size of the accesses being compared: an
access of ``s`` bytes starting at offset ``o`` touches ``[o, o + s - 1]``.

The module also provides the per-pair memoization used by the batched
:meth:`~repro.aliases.base.AliasAnalysis.query_many` API: alias queries are
symmetric and analyses are immutable once built, so one ``(pointer, size)``
pair never needs to run the tests twice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from ..aliases.results import MemoryAccess
from ..symbolic import POS_INF, SymbolicInterval
from ..symbolic.cache import BoundedMemo
from .domain import PointerAbstractValue
from .local_analysis import LocalAbstractValue
from .locations import MemoryLocation

__all__ = ["QueryOutcome", "DisambiguationReason", "global_test", "local_test",
           "extend_for_access", "pair_key", "QueryPairMemo",
           "DEFAULT_MEMO_PAYLOADS"]


class DisambiguationReason(enum.Enum):
    """Which criterion produced a no-alias answer (drives Figure 14)."""

    GLOBAL_DISJOINT_RANGES = "global-disjoint-ranges"
    GLOBAL_DISTINCT_OBJECTS = "global-distinct-objects"
    LOCAL_DISJOINT_RANGES = "local-disjoint-ranges"
    NOT_DISAMBIGUATED = "not-disambiguated"

    def is_global(self) -> bool:
        return self in (DisambiguationReason.GLOBAL_DISJOINT_RANGES,
                        DisambiguationReason.GLOBAL_DISTINCT_OBJECTS)

    def is_local(self) -> bool:
        return self is DisambiguationReason.LOCAL_DISJOINT_RANGES


@dataclass(frozen=True)
class QueryOutcome:
    """The answer of one test plus the reason it fired."""

    no_alias: bool
    reason: DisambiguationReason

    @classmethod
    def may_alias(cls) -> "QueryOutcome":
        return cls(False, DisambiguationReason.NOT_DISAMBIGUATED)


def extend_for_access(interval: SymbolicInterval,
                      size: Optional[int]) -> SymbolicInterval:
    """Extend an offset interval by the access size: ``[l, u] → [l, u + size - 1]``.

    An *unknown* size (``None``) means the access may touch any suffix of
    the object starting at its offset, so the interval extends to ``+inf``.
    Treating unknown as one byte would let the disjointness tests prove
    "no alias" for accesses whose true extent overlaps — an unsound claim
    the soundness oracle can falsify.
    """
    if interval.is_empty:
        return interval
    if size is None:
        return SymbolicInterval(interval.lower, POS_INF)
    if size <= 1:
        return interval
    return SymbolicInterval(interval.lower, interval.upper + (size - 1))


def _objects_certainly_distinct(a: MemoryLocation, b: MemoryLocation) -> bool:
    """True when two *different* abstract locations denote disjoint objects.

    Heap, stack and global allocation sites are all distinct objects.  A
    parameter or unknown pseudo-location may designate any object, so it is
    never provably distinct from anything else.
    """
    if a is b or a.index == b.index:
        return False
    return a.kind.is_concrete_object() and b.kind.is_concrete_object()


def global_test(gr_a: PointerAbstractValue, gr_b: PointerAbstractValue,
                size_a: Optional[int] = 1, size_b: Optional[int] = 1) -> QueryOutcome:
    """Proposition 2, refined with object-distinctness and access sizes."""
    if gr_a.is_top or gr_b.is_top:
        return QueryOutcome.may_alias()
    if gr_a.is_bottom or gr_b.is_bottom:
        # A pointer with no abstract location (null / freed / unreachable)
        # cannot overlap a valid access in a well-defined execution.
        return QueryOutcome(True, DisambiguationReason.GLOBAL_DISTINCT_OBJECTS)

    shared_any = False
    for location_a, interval_a in gr_a.items():
        for location_b, interval_b in gr_b.items():
            if location_a.index == location_b.index:
                shared_any = True
                extended_a = extend_for_access(interval_a, size_a)
                extended_b = extend_for_access(interval_b, size_b)
                if not extended_a.definitely_disjoint(extended_b):
                    return QueryOutcome.may_alias()
            else:
                if not _objects_certainly_distinct(location_a, location_b):
                    return QueryOutcome.may_alias()
    reason = (DisambiguationReason.GLOBAL_DISJOINT_RANGES if shared_any
              else DisambiguationReason.GLOBAL_DISTINCT_OBJECTS)
    return QueryOutcome(True, reason)


def local_test(lr_a: Optional[LocalAbstractValue], lr_b: Optional[LocalAbstractValue],
               size_a: Optional[int] = 1, size_b: Optional[int] = 1) -> QueryOutcome:
    """Proposition 3: same local base, provably disjoint offset intervals."""
    if lr_a is None or lr_b is None:
        return QueryOutcome.may_alias()
    if lr_a.location.index != lr_b.location.index:
        return QueryOutcome.may_alias()
    extended_a = extend_for_access(lr_a.interval, size_a)
    extended_b = extend_for_access(lr_b.interval, size_b)
    if extended_a.definitely_disjoint(extended_b):
        return QueryOutcome(True, DisambiguationReason.LOCAL_DISJOINT_RANGES)
    return QueryOutcome.may_alias()


# -- per-pair memoization -------------------------------------------------------


def pair_key(a: MemoryAccess, b: MemoryAccess) -> Hashable:
    """Canonical unordered key of one query pair.

    Alias queries are symmetric, so ``(a, b)`` and ``(b, a)`` share a key.
    Pointers are keyed by identity: SSA values are unique objects kept alive
    by the module they belong to.  An unknown access size (``None``) maps to
    ``-1``, a value no real access can have, so mixed known/unknown pairs
    stay orderable.
    """
    first = (id(a.pointer), -1 if a.size is None else a.size)
    second = (id(b.pointer), -1 if b.size is None else b.size)
    return (first, second) if first <= second else (second, first)


#: Distinguishes "nothing remembered" from a remembered ``None`` payload.
_MISS = object()

#: Default bound on remembered payloads per memo — the size knob.  Large
#: enough that a batch over the biggest corpus program never evicts, small
#: enough that a long-lived daemon's per-analysis memos stay bounded.
DEFAULT_MEMO_PAYLOADS = 1 << 20


class QueryPairMemo:
    """Memoizes per-pair query payloads for one (immutable) analysis.

    The payload is whatever the analysis wants to replay on a repeat query —
    RBAA stores the full :class:`QueryOutcome` so its Figure-14 counters can
    be updated even when the tests themselves are skipped.

    The payload table is a :class:`~repro.symbolic.cache.BoundedMemo` LRU
    bounded by ``max_payloads`` (evictions are counted and surfaced through
    the service's ``stats`` op), so a memo held by a long-lived
    :class:`~repro.service.session.AnalysisSession` cannot grow without
    bound.  Eviction only ever forces a recompute — query answers are pure
    functions of the analysis — so the bound is invisible to results (RBAA's
    statistics replay re-runs the tests on an evicted pair rather than
    skipping the accounting).
    """

    __slots__ = ("_memo",)

    def __init__(self, max_payloads: int = DEFAULT_MEMO_PAYLOADS):
        self._memo = BoundedMemo(maxsize=max(1, int(max_payloads)))

    @property
    def max_payloads(self) -> int:
        return self._memo.maxsize

    @property
    def hits(self) -> int:
        return self._memo.hits

    @property
    def misses(self) -> int:
        return self._memo.misses

    @property
    def evictions(self) -> int:
        return self._memo.evictions

    def lookup(self, key: Hashable) -> Optional[Any]:
        payload = self._memo.get(key, _MISS)
        return None if payload is _MISS else payload

    def remember(self, key: Hashable, payload: Any) -> None:
        self._memo.put(key, payload)

    def resize(self, max_payloads: int) -> None:
        """Change the bound, evicting least-recent payloads that overflow."""
        self._memo.resize(max(1, int(max_payloads)))

    def release(self) -> None:
        """Drop the payloads, keeping the hit/miss/eviction counters.

        Batch-scoped memos call this once the batch is answered so an
        uncapped quadratic pair sweep does not stay pinned in memory."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)
