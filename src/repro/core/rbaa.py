"""The range-based alias analysis (RBAA): the paper's end product.

``RBAAAliasAnalysis`` wires together the whole pipeline of Figure 5 — the
integer symbolic range analysis bootstrap, the global GR analysis, the local
LR analysis — behind the common :class:`~repro.aliases.base.AliasAnalysis`
interface, so it can be compared against and combined with the baseline
analyses.  The pieces are requested from an
:class:`~repro.engine.manager.AnalysisManager`, so two consumers sharing a
manager (say, ``rbaa`` and the chained ``rbaa + basic``) share one range
bootstrap and one GR/LR fixed point.  Every query runs the global test first
and falls back to the local test, and the analysis keeps counters of which
criterion answered each query (the data behind Figure 14); queries are
memoized per pair, and a memoized replay still updates the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..aliases.base import AliasAnalysis
from ..aliases.results import AliasResult, MemoryAccess, NoAliasClaim
from ..engine import keys
from ..engine.manager import AnalysisManager
from ..ir.module import Module
from ..rangeanalysis.symbolic_ra import RangeAnalysisOptions
from .domain import PointerAbstractValue
from .global_analysis import GlobalAnalysisOptions
from .local_analysis import LocalAbstractValue
from .queries import (
    DEFAULT_MEMO_PAYLOADS,
    DisambiguationReason,
    QueryOutcome,
    QueryPairMemo,
    global_test,
    local_test,
    pair_key,
)

__all__ = ["RBAAOptions", "RBAAStatistics", "RBAAAliasAnalysis"]


@dataclass
class RBAAOptions:
    """Configuration of the full range-based alias analysis."""

    global_options: GlobalAnalysisOptions = field(default_factory=GlobalAnalysisOptions)
    range_options: RangeAnalysisOptions = field(default_factory=RangeAnalysisOptions)
    #: Run the global test (Section 3.4/3.5).
    enable_global_test: bool = True
    #: Run the local test (Section 3.6/3.7).
    enable_local_test: bool = True
    #: LRU bound (size knob) of the per-pair outcome memo; evictions only
    #: force recomputes, never different answers.
    outcome_memo_payloads: int = DEFAULT_MEMO_PAYLOADS


@dataclass
class RBAAStatistics:
    """Per-analysis query counters (the raw data of Figure 14).

    Following the paper's accounting, ``answered_by_global`` counts only the
    queries resolved by *range disjointness on a shared location* (the global
    test proper); queries resolved because the two pointers reference
    provably distinct allocation sites are tallied separately in
    ``answered_by_distinct_objects`` ("comparing offsets from different
    locations" in Section 4).
    """

    queries: int = 0
    no_alias: int = 0
    answered_by_global: int = 0
    answered_by_local: int = 0
    answered_by_distinct_objects: int = 0

    def record(self, outcome: QueryOutcome) -> None:
        self.queries += 1
        if not outcome.no_alias:
            return
        self.no_alias += 1
        if outcome.reason is DisambiguationReason.GLOBAL_DISJOINT_RANGES:
            self.answered_by_global += 1
        elif outcome.reason is DisambiguationReason.GLOBAL_DISTINCT_OBJECTS:
            self.answered_by_distinct_objects += 1
        elif outcome.reason.is_local():
            self.answered_by_local += 1


class RBAAAliasAnalysis(AliasAnalysis):
    """The paper's analysis, usable wherever a baseline analysis is."""

    name = "rbaa"

    def __init__(self, module: Module, options: Optional[RBAAOptions] = None,
                 manager: Optional[AnalysisManager] = None):
        super().__init__(module)
        self.options = options or RBAAOptions()
        self.manager = manager if manager is not None else AnalysisManager(module)
        self.ranges = self.manager.get(keys.RANGES, options=self.options.range_options)
        self.locations = self.manager.get(keys.LOCATIONS)
        self.global_analysis = self.manager.get(
            keys.GLOBAL_RANGES,
            options=self.options.global_options,
            range_options=self.options.range_options)
        self.local_analysis = self.manager.get(
            keys.LOCAL_RANGES, range_options=self.options.range_options)
        self.statistics = RBAAStatistics()
        self._outcomes = QueryPairMemo(
            max_payloads=self.options.outcome_memo_payloads)

    def refresh_function(self, old_function, new_function) -> None:
        """Function-granular incremental refresh (manager edit hook).

        The function-scoped inputs (ranges, locations, LR) and the
        callgraph-scoped GR fixed point were all refreshed in place by the
        manager before this hook runs (dependencies-first), so every
        re-request below is a cache hit on the same objects — GR re-seeded
        its own fixed point from the edit cone rather than rebuilding from
        scratch.  The per-pair
        outcome memo is released: its keys are pointer identities, and the
        retired body's ids may be recycled, while surviving pairs may sit in
        the edit's interprocedural cone — but the cumulative Figure-14
        counters survive, so a memoized-then-recomputed query is still
        counted exactly once per ask.
        """
        self.ranges = self.manager.get(keys.RANGES,
                                       options=self.options.range_options)
        self.locations = self.manager.get(keys.LOCATIONS)
        self.global_analysis = self.manager.get(
            keys.GLOBAL_RANGES,
            options=self.options.global_options,
            range_options=self.options.range_options)
        self.local_analysis = self.manager.get(
            keys.LOCAL_RANGES, range_options=self.options.range_options)
        self._outcomes.release()

    # -- introspection helpers ----------------------------------------------------
    def global_state(self, pointer) -> PointerAbstractValue:
        """``GR(pointer)`` — exposed for tests, examples and the census."""
        return self.global_analysis.value_of(pointer)

    def local_state(self, pointer) -> Optional[LocalAbstractValue]:
        """``LR(pointer)`` — exposed for tests and examples."""
        return self.local_analysis.value_of(pointer)

    # -- query API ------------------------------------------------------------------
    def query(self, a: MemoryAccess, b: MemoryAccess) -> QueryOutcome:
        """Run the global then the local test; record which one answered.

        Outcomes are memoized per ``(pointer, size)`` pair.  A memoized
        replay still goes through :meth:`RBAAStatistics.record`: the
        Figure-14 counters tally *queries answered*, so skipping the tests
        must not skip the accounting.
        """
        key = pair_key(a, b)
        outcome = self._outcomes.lookup(key)
        if outcome is None:
            outcome = self._run_tests(a, b)
            self._outcomes.remember(key, outcome)
        self.statistics.record(outcome)
        return outcome

    def _run_tests(self, a: MemoryAccess, b: MemoryAccess) -> QueryOutcome:
        # Unknown sizes stay ``None``: the tests extend the offset interval
        # to +inf rather than pretending the access spans one byte.
        size_a = a.size
        size_b = b.size
        outcome = QueryOutcome.may_alias()
        if self.options.enable_global_test:
            outcome = global_test(
                self.global_state(a.pointer), self.global_state(b.pointer), size_a, size_b)
        if not outcome.no_alias and self.options.enable_local_test:
            outcome = local_test(
                self.local_state(a.pointer), self.local_state(b.pointer), size_a, size_b)
        return outcome

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        outcome = self.query(a, b)
        return AliasResult.NO_ALIAS if outcome.no_alias else AliasResult.MAY_ALIAS

    def no_alias_context(self, a: MemoryAccess, b: MemoryAccess) -> NoAliasClaim:
        """Validity scope of a no-alias verdict (soundness-oracle hook).

        Range-based claims are universally quantified over one valuation of
        the kernel symbols their intervals mention, and — for non-concrete
        base locations — over one dynamic instance of the location's
        defining site.  Both contexts are reported so the oracle compares
        the verdict against exactly the executions it speaks about.
        """
        key = pair_key(a, b)
        outcome = self._outcomes.lookup(key)
        if outcome is None:
            outcome = self._run_tests(a, b)
            self._outcomes.remember(key, outcome)
        if not outcome.no_alias:
            return NoAliasClaim()
        if outcome.reason is DisambiguationReason.GLOBAL_DISJOINT_RANGES:
            symbols: set = set()
            anchors: set = set()
            anchored = True
            for access in (a, b):
                state = self.global_state(access.pointer)
                for location, interval in state.items():
                    symbols |= interval.symbols()
                    if not location.is_concrete_object():
                        if location.site is not None:
                            anchors.add(location.site)
                        else:
                            anchored = False
            return NoAliasClaim(scope="invocation" if anchored else "unchecked",
                                anchors=tuple(anchors), symbols=frozenset(symbols))
        if outcome.reason is DisambiguationReason.LOCAL_DISJOINT_RANGES:
            lr_a = self.local_state(a.pointer)
            lr_b = self.local_state(b.pointer)
            if lr_a is None or lr_b is None:  # pragma: no cover - defensive
                return NoAliasClaim(scope="unchecked")
            symbols = set(lr_a.interval.symbols()) | set(lr_b.interval.symbols())
            location = lr_a.location
            if location.is_concrete_object():
                return NoAliasClaim(symbols=frozenset(symbols))
            anchor_values: set = set()
            if location.site is not None:
                anchor_values.add(location.site)
            anchor_values |= set(
                self.local_analysis.location_anchors().get(location.index, frozenset()))
            if not anchor_values:
                return NoAliasClaim(scope="unchecked", symbols=frozenset(symbols))
            return NoAliasClaim(scope="same-base", anchors=tuple(anchor_values),
                                symbols=frozenset(symbols))
        # Distinct-objects reasoning: a plain invocation-set claim.
        return NoAliasClaim()

    def on_memoized_query(self, a: MemoryAccess, b: MemoryAccess,
                          result: AliasResult) -> None:
        """Batched-path statistics fix: replay the memoized outcome.

        ``query_many`` answers repeat pairs from its own memo without calling
        :meth:`alias`; without this hook those queries would vanish from the
        Figure-14 counters.  The outcome memo is a bounded LRU, so a pair
        the outer memo still remembers may have been evicted here — in that
        case the tests are re-run (deterministically) rather than skipping
        the accounting, keeping warm counters equal to summed cold ones
        whatever the eviction history."""
        if a.pointer is b.pointer:
            return
        key = pair_key(a, b)
        outcome = self._outcomes.lookup(key)
        if outcome is None:
            outcome = self._run_tests(a, b)
            self._outcomes.remember(key, outcome)
        self.statistics.record(outcome)
