"""The range-based alias analysis (RBAA): the paper's end product.

``RBAAAliasAnalysis`` wires together the whole pipeline of Figure 5 — the
integer symbolic range analysis bootstrap, the global GR analysis, the local
LR analysis — behind the common :class:`~repro.aliases.base.AliasAnalysis`
interface, so it can be compared against and combined with the baseline
analyses.  Every query runs the global test first and falls back to the
local test, and the analysis keeps counters of which criterion answered each
query (the data behind Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..aliases.base import AliasAnalysis
from ..aliases.results import AliasResult, MemoryAccess
from ..ir.module import Module
from ..rangeanalysis.symbolic_ra import RangeAnalysisOptions, SymbolicRangeAnalysis
from .domain import PointerAbstractValue
from .global_analysis import GlobalAnalysisOptions, GlobalRangeAnalysis
from .local_analysis import LocalAbstractValue, LocalRangeAnalysis
from .locations import LocationTable
from .queries import DisambiguationReason, QueryOutcome, global_test, local_test

__all__ = ["RBAAOptions", "RBAAStatistics", "RBAAAliasAnalysis"]


@dataclass
class RBAAOptions:
    """Configuration of the full range-based alias analysis."""

    global_options: GlobalAnalysisOptions = field(default_factory=GlobalAnalysisOptions)
    range_options: RangeAnalysisOptions = field(default_factory=RangeAnalysisOptions)
    #: Run the global test (Section 3.4/3.5).
    enable_global_test: bool = True
    #: Run the local test (Section 3.6/3.7).
    enable_local_test: bool = True


@dataclass
class RBAAStatistics:
    """Per-analysis query counters (the raw data of Figure 14).

    Following the paper's accounting, ``answered_by_global`` counts only the
    queries resolved by *range disjointness on a shared location* (the global
    test proper); queries resolved because the two pointers reference
    provably distinct allocation sites are tallied separately in
    ``answered_by_distinct_objects`` ("comparing offsets from different
    locations" in Section 4).
    """

    queries: int = 0
    no_alias: int = 0
    answered_by_global: int = 0
    answered_by_local: int = 0
    answered_by_distinct_objects: int = 0

    def record(self, outcome: QueryOutcome) -> None:
        self.queries += 1
        if not outcome.no_alias:
            return
        self.no_alias += 1
        if outcome.reason is DisambiguationReason.GLOBAL_DISJOINT_RANGES:
            self.answered_by_global += 1
        elif outcome.reason is DisambiguationReason.GLOBAL_DISTINCT_OBJECTS:
            self.answered_by_distinct_objects += 1
        elif outcome.reason.is_local():
            self.answered_by_local += 1


class RBAAAliasAnalysis(AliasAnalysis):
    """The paper's analysis, usable wherever a baseline analysis is."""

    name = "rbaa"

    def __init__(self, module: Module, options: Optional[RBAAOptions] = None):
        super().__init__(module)
        self.options = options or RBAAOptions()
        self.ranges = SymbolicRangeAnalysis(module, self.options.range_options)
        self.locations = LocationTable(module)
        self.global_analysis = GlobalRangeAnalysis(
            module, ranges=self.ranges, locations=self.locations,
            options=self.options.global_options)
        self.local_analysis = LocalRangeAnalysis(
            module, ranges=self.ranges, locations=self.locations)
        self.statistics = RBAAStatistics()

    # -- introspection helpers ----------------------------------------------------
    def global_state(self, pointer) -> PointerAbstractValue:
        """``GR(pointer)`` — exposed for tests, examples and the census."""
        return self.global_analysis.value_of(pointer)

    def local_state(self, pointer) -> Optional[LocalAbstractValue]:
        """``LR(pointer)`` — exposed for tests and examples."""
        return self.local_analysis.value_of(pointer)

    # -- query API ------------------------------------------------------------------
    def query(self, a: MemoryAccess, b: MemoryAccess) -> QueryOutcome:
        """Run the global then the local test; record which one answered."""
        size_a = a.bounded_size()
        size_b = b.bounded_size()
        outcome = QueryOutcome.may_alias()
        if self.options.enable_global_test:
            outcome = global_test(
                self.global_state(a.pointer), self.global_state(b.pointer), size_a, size_b)
        if not outcome.no_alias and self.options.enable_local_test:
            outcome = local_test(
                self.local_state(a.pointer), self.local_state(b.pointer), size_a, size_b)
        self.statistics.record(outcome)
        return outcome

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        outcome = self.query(a, b)
        return AliasResult.NO_ALIAS if outcome.no_alias else AliasResult.MAY_ALIAS
