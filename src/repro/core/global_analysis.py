"""The global symbolic range analysis of pointers (``GR``, Section 3.4).

For every pointer-typed SSA value the analysis computes an element of the
``MemLocs`` lattice: which allocation sites the pointer may reference and,
for each site, a symbolic interval of byte offsets.  The abstract transfer
functions follow Figure 9 of the paper; the fixed point is computed with one
ascending phase (widening at join points after the first complete pass)
followed by a descending sequence of length two — the schedule traced in
Figure 12.

Interprocedurality is context-insensitive: pointer formal parameters are
treated as φ-functions over the actual arguments of the visible call sites
(Section 3.1).  Parameters of functions that may be called from outside the
module get a *parameter pseudo-location*, and results of external calls get
an *unknown pseudo-location*; the query engine treats those object kinds
conservatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.cfg import reverse_post_order
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, NullPointer, UndefValue, Value
from ..rangeanalysis.symbolic_ra import SymbolicRangeAnalysis
from ..symbolic import SymbolicInterval
from .domain import BOTTOM, TOP, PointerAbstractValue
from .locations import LocationTable

__all__ = ["GlobalAnalysisOptions", "GlobalRangeAnalysis"]

#: External routines whose pointer result is their first argument.
_RETURNS_FIRST_ARGUMENT = frozenset({
    "strcpy", "strncpy", "strcat", "strncat", "memcpy", "memmove", "memset",
})


@dataclass
class GlobalAnalysisOptions:
    """Configuration of the global pointer analysis."""

    #: Bind pointer formal parameters to the actual arguments of internal
    #: call sites (the paper's interprocedural, context-insensitive mode).
    interprocedural: bool = True
    #: Give pointer parameters of internally-called functions *only* the
    #: join of their actuals.  When False, every pointer parameter also keeps
    #: its own pseudo-location (maximally conservative).
    closed_world: bool = True
    #: Maximum number of ascending passes (widening makes few necessary).
    max_ascending_passes: int = 6
    #: Length of the descending (narrowing) sequence.
    descending_passes: int = 2
    #: Record per-phase snapshots of the abstract state (Figure 12 traces).
    track_trace: bool = False


@dataclass
class AnalysisStatistics:
    """Bookkeeping reported by the evaluation harness."""

    functions: int = 0
    pointer_values: int = 0
    ascending_passes: int = 0
    elapsed_seconds: float = 0.0


class GlobalRangeAnalysis:
    """Whole-module GR analysis."""

    def __init__(self, module: Module,
                 ranges: Optional[SymbolicRangeAnalysis] = None,
                 locations: Optional[LocationTable] = None,
                 options: Optional[GlobalAnalysisOptions] = None):
        self.module = module
        self.options = options or GlobalAnalysisOptions()
        self.ranges = ranges if ranges is not None else SymbolicRangeAnalysis(module)
        self.locations = locations if locations is not None else LocationTable(module)
        self.callgraph = CallGraph.compute(module)
        self.statistics = AnalysisStatistics()
        self._gr: Dict[Value, PointerAbstractValue] = {}
        self._trace: List[Tuple[str, Dict[Value, PointerAbstractValue]]] = []
        self._run()

    # -- public API --------------------------------------------------------------
    @classmethod
    def run(cls, module: Module, **kwargs) -> "GlobalRangeAnalysis":
        return cls(module, **kwargs)

    def value_of(self, value: Value) -> PointerAbstractValue:
        """``GR(value)``: the abstract address set of a pointer value."""
        return self._abstract_of(value)

    def trace(self) -> List[Tuple[str, Dict[Value, PointerAbstractValue]]]:
        """Per-phase snapshots (only populated with ``track_trace=True``)."""
        return list(self._trace)

    def pointer_values(self) -> List[Value]:
        """Every pointer value the analysis assigned an abstract state to."""
        return list(self._gr.keys())

    # -- operand evaluation ---------------------------------------------------------
    def _abstract_of(self, value: Value) -> PointerAbstractValue:
        cached = self._gr.get(value)
        if cached is not None:
            return cached
        if isinstance(value, GlobalVariable):
            location = self.locations.location_for_site(value)
            result = PointerAbstractValue.at_location(location) if location else TOP
            self._gr[value] = result
            return result
        if isinstance(value, (NullPointer, UndefValue)):
            return BOTTOM
        if isinstance(value, Constant):
            return BOTTOM
        if isinstance(value, Function):
            return BOTTOM
        # Instructions / arguments not yet visited in this pass.
        return BOTTOM

    def _scalar_range(self, value: Value) -> SymbolicInterval:
        return self.ranges.range_of(value)

    # -- seeding -------------------------------------------------------------------
    def _is_externally_visible(self, function: Function) -> bool:
        if function.name == "main":
            return True
        if self.callgraph.is_address_taken(function):
            return True
        return not self.callgraph.sites_calling(function)

    def _argument_state(self, function: Function, argument: Argument) -> PointerAbstractValue:
        state = BOTTOM
        needs_pseudo = (not self.options.interprocedural
                        or not self.options.closed_world
                        or self._is_externally_visible(function))
        if needs_pseudo:
            location = self.locations.ensure_parameter_location(argument)
            state = state.join(PointerAbstractValue.at_location(location))
        if self.options.interprocedural:
            for site in self.callgraph.sites_calling(function):
                actuals = site.instruction.args
                if argument.index < len(actuals):
                    state = state.join(self._abstract_of(actuals[argument.index]))
        return state

    # -- fixed point -----------------------------------------------------------------
    def _run(self) -> None:
        start = time.perf_counter()
        functions = self.module.defined_functions()
        self.statistics.functions = len(functions)
        block_orders = {function: reverse_post_order(function) for function in functions}

        def one_pass(pass_index: int, *, widen: bool, narrow: bool) -> bool:
            changed = False
            for function in functions:
                for argument in function.args:
                    if not argument.type.is_pointer():
                        continue
                    old = self._gr.get(argument, BOTTOM)
                    new = self._argument_state(function, argument)
                    new = self._combine(old, new, widen=widen, narrow=narrow)
                    if new != old:
                        self._gr[argument] = new
                        changed = True
                for block in block_orders[function]:
                    for inst in block.instructions:
                        if not inst.type.is_pointer():
                            continue
                        old = self._gr.get(inst, BOTTOM)
                        new = self._evaluate(inst)
                        if isinstance(inst, (PhiInst, CallInst)):
                            new = self._combine(old, new, widen=widen, narrow=narrow)
                        if new != old:
                            self._gr[inst] = new
                            changed = True
            return changed

        # Ascending phase: plain pass first, then widening passes.
        for pass_index in range(self.options.max_ascending_passes):
            widen = pass_index > 0
            changed = one_pass(pass_index, widen=widen, narrow=False)
            self.statistics.ascending_passes += 1
            if self.options.track_trace and pass_index == 0:
                self._snapshot("starting state")
            if not changed:
                break
        if self.options.track_trace:
            self._snapshot("after widening")
        # Descending sequence.
        for descent in range(self.options.descending_passes):
            one_pass(descent, widen=False, narrow=True)
            if self.options.track_trace:
                self._snapshot(f"descending step {descent + 1}")

        self.statistics.pointer_values = len(self._gr)
        self.statistics.elapsed_seconds = time.perf_counter() - start

    def _combine(self, old: PointerAbstractValue, new: PointerAbstractValue, *,
                 widen: bool, narrow: bool) -> PointerAbstractValue:
        if narrow:
            return old.narrow(new) if not old.is_bottom else new
        if widen and not old.is_bottom:
            return old.widen(new)
        return new

    def _snapshot(self, label: str) -> None:
        self._trace.append((label, dict(self._gr)))

    # -- transfer functions --------------------------------------------------------------
    def _evaluate(self, inst: Instruction) -> PointerAbstractValue:
        if isinstance(inst, (MallocInst, AllocaInst)):
            location = self.locations.location_for_site(inst)
            return PointerAbstractValue.at_location(location) if location else TOP
        if isinstance(inst, FreeInst):
            return BOTTOM
        if isinstance(inst, PtrAddInst):
            return self._evaluate_ptradd(inst)
        if isinstance(inst, PhiInst):
            state = BOTTOM
            for value, _ in inst.incoming():
                state = state.join(self._abstract_of(value))
            return state
        if isinstance(inst, SigmaInst):
            return self._evaluate_sigma(inst)
        if isinstance(inst, LoadInst):
            # Figure 9: q = *p gets the top of the lattice — memory contents
            # are deliberately not tracked.
            return TOP
        if isinstance(inst, CastInst):
            if inst.kind == "bitcast":
                return self._abstract_of(inst.value)
            if inst.kind == "inttoptr":
                location = self.locations.ensure_unknown_location(
                    inst, f"{inst.function.name}.inttoptr.{inst.name or 'cast'}")
                return PointerAbstractValue.at_location(location)
            return TOP
        if isinstance(inst, SelectInst):
            return self._abstract_of(inst.true_value).join(self._abstract_of(inst.false_value))
        if isinstance(inst, CallInst):
            return self._evaluate_call(inst)
        return TOP

    def _evaluate_ptradd(self, inst: PtrAddInst) -> PointerAbstractValue:
        base = self._abstract_of(inst.base)
        if base.is_bottom or base.is_top:
            return base
        if inst.index is None:
            delta = SymbolicInterval.point(inst.offset)
        else:
            delta = self._scalar_range(inst.index).scale(inst.scale)
            if inst.offset:
                delta = delta.shift(inst.offset)
        return base.shift(delta)

    def _evaluate_sigma(self, inst: SigmaInst) -> PointerAbstractValue:
        state = self._abstract_of(inst.source)
        if state.is_bottom:
            return state
        # Bounds that are pointers constrain slot-wise (Figure 9); integer
        # bounds on a pointer σ cannot arise from the e-SSA construction.
        if inst.upper is not None and inst.upper.type.is_pointer():
            bound = self._abstract_of(inst.upper)
            if not bound.is_bottom:
                state = state.meet_ranges(bound, use_upper=True, adjust=inst.upper_adjust)
        if inst.lower is not None and inst.lower.type.is_pointer():
            bound = self._abstract_of(inst.lower)
            if not bound.is_bottom:
                state = state.meet_ranges(bound, use_upper=False, adjust=inst.lower_adjust)
        if state.is_bottom:
            # The meet removed every slot (infeasible path approximation);
            # fall back to the unconstrained source, which is always sound.
            return self._abstract_of(inst.source)
        return state

    def _evaluate_call(self, inst: CallInst) -> PointerAbstractValue:
        callee_name = inst.callee_name()
        if callee_name in _RETURNS_FIRST_ARGUMENT and inst.args:
            return self._abstract_of(inst.args[0])
        callee = None
        if isinstance(inst.callee, Function):
            callee = inst.callee
        else:
            callee = self.module.get_function(callee_name)
        if callee is not None and not callee.is_declaration():
            if self.options.interprocedural:
                state = BOTTOM
                for block in callee.blocks:
                    terminator = block.terminator
                    if isinstance(terminator, ReturnInst) and terminator.value is not None \
                            and terminator.value.type.is_pointer():
                        state = state.join(self._abstract_of(terminator.value))
                return state
            return TOP
        # External call returning a pointer: a fresh unknown object.
        location = self.locations.ensure_unknown_location(
            inst, f"{inst.function.name}.{callee_name}.{inst.name or 'ret'}")
        return PointerAbstractValue.at_location(location)
